"""E3 — fitted for speedup on ARM (paper slide 8): L2 and NNLS."""

from repro.costmodel import SpeedupModel, measured_speedups, predict_all
from repro.experiments.drivers import run_e3
from repro.fitting import LeastSquares, NonNegativeLeastSquares
from repro.validation import evaluate

from conftest import print_once


def test_bench_e3(benchmark, arm_dataset):
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def figure():
        out = {}
        for reg in (LeastSquares(), NonNegativeLeastSquares()):
            model = SpeedupModel(reg).fit(samples)
            out[model.name] = evaluate(
                model.name, predict_all(model, samples), measured
            )
        return out

    reports = benchmark(figure)
    print_once("e3", run_e3().to_text(include_scatter=False))
    # Speedup targets live in (0, VF]: the fits must land far closer
    # in RMSE than the baseline's wide-interval mispredictions.
    assert reports["speedup-L2"].rmse < 1.6
    assert reports["speedup-L2"].pearson > 0.3
