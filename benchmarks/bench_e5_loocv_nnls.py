"""E5 — leave-one-out cross validation with NNLS (paper slide 11)."""

import numpy as np

from repro.costmodel import RatedSpeedupModel
from repro.experiments.drivers import run_e5
from repro.fitting import NonNegativeLeastSquares
from repro.validation import evaluate, loocv_predictions, pearson

from conftest import print_once


def test_bench_e5(benchmark, arm_dataset):
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def figure():
        return loocv_predictions(
            lambda: RatedSpeedupModel(NonNegativeLeastSquares()), samples
        )

    preds = benchmark(figure)
    print_once("e5", run_e5().to_text(include_scatter=False))
    loocv_r = pearson(preds, measured)
    fit_model = RatedSpeedupModel(NonNegativeLeastSquares()).fit(samples)
    from repro.costmodel import predict_all

    fit_r = pearson(predict_all(fit_model, samples), measured)
    # LOOCV generalizes: close to (and no better than ~noise above)
    # the fit-on-everything correlation.
    assert loocv_r > fit_r - 0.25
    assert loocv_r > 0.45
