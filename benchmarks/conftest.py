"""Shared fixtures for the benchmark harness.

Each ``bench_e*.py`` regenerates one paper figure (see DESIGN.md §4):
the benchmarked callable recomputes the figure's modelling work, and
the bench prints the figure's table once so running

    pytest benchmarks/ --benchmark-only -s

reproduces every row/series the paper reports alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.experiments import ARM_LLV, X86_SLP, build_dataset


@pytest.fixture(scope="session")
def arm_dataset():
    """TSVC × ARMv8-NEON measurement sweep (LLV), cached per session."""
    return build_dataset(ARM_LLV)


@pytest.fixture(scope="session")
def x86_dataset():
    """TSVC × x86-AVX2 measurement sweep (unroll+SLP), cached per session."""
    return build_dataset(X86_SLP)


_printed: set[str] = set()


def print_once(key: str, text: str) -> None:
    """Print a figure's table a single time per session."""
    if key not in _printed:
        _printed.add(key)
        print(f"\n{text}\n")
