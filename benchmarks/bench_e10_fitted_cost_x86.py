"""E10 — fitted for cost on x86 (paper slide 18): L2, NNLS, SVR over
block-cost targets, exhibiting the wide-interval instability."""

import numpy as np

from repro.costmodel import LinearCostModel, predict_all
from repro.experiments.drivers import run_e10
from repro.fitting import LeastSquares, LinearSVR, NonNegativeLeastSquares
from repro.validation import evaluate

from conftest import print_once


def test_bench_e10(benchmark, x86_dataset):
    samples = x86_dataset.samples
    measured = x86_dataset.measured

    def figure():
        out = {}
        for reg in (LeastSquares(), NonNegativeLeastSquares(), LinearSVR()):
            model = LinearCostModel(reg).fit(samples)
            out[model.name] = evaluate(
                model.name, predict_all(model, samples), measured
            )
        return out

    reports = benchmark(figure)
    print_once("e10", run_e10().to_text(include_scatter=False))
    # Cost targets span decades -> fits are weak/unstable (slide 7's
    # complaint, motivating the speedup-target model).
    assert any(r.pearson < 0.4 or r.rmse > 2.0 for r in reports.values())
    # But the targets themselves are wide: verify the interval claim.
    model = LinearCostModel(LeastSquares())
    y = np.array([model.implied_vector_cost(s) for s in samples])
    assert y.max() / max(y.min(), 1e-9) > 20  # orders of magnitude
