"""Pipeline perf smoke: times the measurement pipeline end to end and
emits a ``BENCH_pipeline.json`` artifact for cross-PR trajectory
tracking.

    PYTHONPATH=src python benchmarks/smoke_pipeline.py [--out PATH]
        [--workers N] [--repeat K] [--pytest-bench]

Measured (best of ``--repeat`` runs, full ARM+x86 suite sweep):

* ``cold_serial_s``    — uncached build, one process;
* ``cold_parallel_s``  — uncached build, ``--workers`` processes;
* ``warm_cache_s``     — rebuild served from the persistent cache;
* ``static_prepass``   — warm rebuild with vs without the verify+lint
  pre-pass (must stay within 5% of each other);
* ``resilience``       — supervised pool vs the raw executor on the
  warm (fully cached) path — the supervision layer must cost <5%
  there — plus the cold serial comparison for reference;
* ``executor_compile`` — full-suite ``run_scalar`` sweep through the
  tree-walking interpreter vs the kernel compiler with the native tier
  pinned off (``REPRO_NATIVE=0``; cold: includes every build +
  self-check; warm: cached closures).  The cold compiled sweep must
  beat the interpreter by ≥5×;
* ``native``           — the same sweep through the native C tier.
  ``build_sweep_s`` pays every ``cc`` invocation + self-check into a
  fresh artifact cache; ``cold_s`` is the steady-state process-cold
  shape (artifacts on disk, every kernel re-attached via dlopen);
  ``warm_s`` keeps the attach memos.  Gated: the process-cold native
  sweep must beat the cold NumPy-tier sweep ≥5×, or the section is an
  explicit ``skipped`` entry on hosts without a C toolchain;
* ``ranges``           — bounds-check elision pricing: a warm native
  sweep at *full* trips over the kernels whose gather/scatter accesses
  the range analysis proved in bounds, with proofs consumed
  (``REPRO_RANGES=1``, unguarded fast body behind the runtime contract
  scan) vs disabled (``REPRO_RANGES=0``, per-element ``repro_idx``
  clamps).  Gated: elision must win ≥1.05× and both configurations
  must stay bit-identical; ``skipped`` without a toolchain;
* ``loocv_refit_s`` / ``loocv_fast_s`` — L2 LOOCV, refit loop vs
  hat-matrix fast path, on the ARM dataset;
* ``loocv_nnls``       — NNLS LOOCV, cold Lawson–Hanson refit loop vs
  the active-set warm-start path, on the ARM dataset;
* ``experiments``      — the E1–E12 suite through the experiment
  engine (shared matrix bundles + engine memo + warm SVR folds +
  parallel drivers) vs the per-driver seed path, written to its own
  ``BENCH_experiments.json``.  Gated: engine-cold ≥3× over seed,
  serial/parallel report tables bit-identical, seed/engine E1–E11
  tables bit-identical, and ≥80% of SVR LOOCV folds warm-certified
  on every suite dataset.

``--experiments-only`` runs just that last section (the CI
``experiments`` job uses it).  ``--pytest-bench`` additionally runs
the two pytest-benchmark files (``bench_pipeline_micro.py``,
``bench_dataset_build.py``) and embeds their stats under
``pytest_benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.costmodel import RatedSpeedupModel, SpeedupModel  # noqa: E402
from repro.experiments import ARM_LLV, X86_SLP, build_dataset  # noqa: E402
from repro.fitting import LeastSquares, NonNegativeLeastSquares  # noqa: E402
from repro.pipeline import (  # noqa: E402
    DatasetBuildStats,
    MeasurementCache,
    measure_suite,
)
from repro.sim import (  # noqa: E402
    clear_compile_cache,
    compile_summary,
    make_buffers,
    run_scalar_compiled,
    run_scalar_interpreted,
)
from repro.tsvc import all_kernels  # noqa: E402
from repro.validation import loocv_predictions  # noqa: E402

BOTH_SPECS = (ARM_LLV, X86_SLP)

#: Inner-trip truncation for the executor sweep — the hot-path shape
#: (guard-probability estimation runs the same truncated trips).
SWEEP_ITERS = 512


def best_of(repeat: int, fn) -> float:
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def sweep_both(
    workers: int,
    cache: MeasurementCache,
    prepass: bool | None = None,
    supervise: bool = True,
    stats: DatasetBuildStats | None = None,
) -> int:
    total = 0
    for spec in BOTH_SPECS:
        samples, failures = measure_suite(
            spec,
            workers=workers,
            cache=cache,
            prepass=prepass,
            supervise=supervise,
            stats=stats,
        )
        total += len(samples) + len(failures)
    return total


def executor_sweep(runner) -> None:
    """One full-suite scalar execution through ``runner``."""
    for kernel in all_kernels():
        bufs = make_buffers(kernel, seed=0)
        runner(kernel, bufs, None, SWEEP_ITERS)


def executor_compile_bench(repeat: int) -> tuple[float, dict, bool]:
    """Interpreter vs NumPy-tier compiler sweep (native pinned off)."""
    from repro.sim import reset_native_state

    os.environ["REPRO_NATIVE"] = "0"
    reset_native_state()
    try:
        interp_s = best_of(repeat, lambda: executor_sweep(run_scalar_interpreted))
        clear_compile_cache()
        t0 = time.perf_counter()
        executor_sweep(run_scalar_compiled)  # pays every build + self-check
        compile_cold_s = time.perf_counter() - t0
        compile_warm_s = best_of(
            repeat, lambda: executor_sweep(run_scalar_compiled)
        )
        csum = compile_summary()
    finally:
        os.environ.pop("REPRO_NATIVE", None)
        reset_native_state()
    section = {
        "sweep_iters": SWEEP_ITERS,
        "interpreted_s": round(interp_s, 4),
        "compiled_cold_s": round(compile_cold_s, 4),
        "compiled_warm_s": round(compile_warm_s, 4),
        "cold_speedup": round(interp_s / compile_cold_s, 2),
        "warm_speedup": round(interp_s / compile_warm_s, 2),
        "kernels_vector": csum["kernels_vector"],
        "kernels_scalar": csum["kernels_scalar"],
        "kernels_demoted": csum["kernels_demoted"],
        "kernels_refused": csum["kernels_refused"],
    }
    # The kernel compiler must beat the interpreter ≥5× even when it
    # pays every build and self-check (cold), with nothing refused.
    ok = section["cold_speedup"] >= 5.0 and section["kernels_refused"] == 0
    return interp_s, section, ok


def native_bench(repeat: int, interp_s: float, numpy_cold_s: float) -> tuple[dict, bool]:
    """Native C tier sweep: build pass, process-cold attach, warm memo.

    On hosts without a toolchain the section is an explicit ``skipped``
    entry and the gate passes — degradation is the contract there.
    """
    from repro.sim import native_available, reset_native_state
    from repro.sim.toolchain import toolchain_failure

    reset_native_state()
    if not native_available():
        reason = toolchain_failure() or "native tier disabled"
        return {"skipped": reason}, True
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_NATIVE_CACHE_DIR"] = tmp
        try:
            reset_native_state()
            clear_compile_cache()
            before = compile_summary()
            t0 = time.perf_counter()
            executor_sweep(run_scalar_compiled)  # every cc build + self-check
            build_sweep_s = time.perf_counter() - t0
            csum = compile_summary()

            def process_cold():
                # Artifacts stay on disk; in-process memos are dropped,
                # so every kernel re-attaches (dlopen + dlsym) and runs.
                clear_compile_cache()
                executor_sweep(run_scalar_compiled)

            cold_s = best_of(repeat, process_cold)
            warm_s = best_of(repeat, lambda: executor_sweep(run_scalar_compiled))
        finally:
            os.environ.pop("REPRO_NATIVE_CACHE_DIR", None)
            reset_native_state()
    section = {
        "sweep_iters": SWEEP_ITERS,
        "build_sweep_s": round(build_sweep_s, 4),
        "native_build_s": round(
            csum["native_build_s"] - before["native_build_s"], 4
        ),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cold_speedup_vs_numpy": round(numpy_cold_s / cold_s, 2),
        "warm_speedup_vs_interp": round(interp_s / warm_s, 2),
        "kernels_native": csum["kernels_native"] - before["kernels_native"],
        "kernels_demoted": csum["kernels_native_demoted"]
        - before["kernels_native_demoted"],
        "toolchain": csum["toolchain"],
    }
    # The process-cold native sweep (attach, don't compile) must beat
    # the cold NumPy-tier sweep ≥5× and leave no kernel unbuilt.
    ok = (
        section["cold_speedup_vs_numpy"] >= 5.0
        and section["kernels_native"] > 0
    )
    return section, ok


def ranges_bench(repeat: int) -> tuple[dict, bool]:
    """Price the range-analysis bounds elision on the native tier.

    Sweeps the kernels whose native artifact actually carries a
    contract dispatcher (the codegen's profitability gate keeps
    independent scatter streams on the plain guarded body) with range
    proofs consumed vs disabled.  Both configurations are compiled up
    front and kept resident — their cache fingerprints differ — and
    the sweep drives the native entry closures directly, so the clock
    sees marshalling + dispatch + kernel body and nothing tier-generic.
    Each kernel is timed *warm* — its two arms alternate back-to-back
    while its buffers stay cache-resident, and the median call per arm
    is kept — then the sweep totals are the sums of the per-kernel
    medians.  Interleaving the arms cancels slow drift of the host
    clock speed out of the ratio, and per-kernel pairing keeps the
    comparison out of the cache-cold regime a round-robin sweep of
    every working set would create.  Buffers are built once per kernel
    and reused across timed runs — the index arrays are never written,
    so the data contract keeps holding.
    """
    import statistics

    from repro.sim import native, native_available, reset_native_state
    from repro.sim import compile as simcompile
    from repro.sim.compile import bit_identical
    from repro.sim.executor import initial_scalars
    from repro.sim.toolchain import toolchain_failure

    reset_native_state()
    clear_compile_cache()
    if not native_available():
        reason = toolchain_failure() or "native tier disabled"
        return {"skipped": reason}, True

    tc = native.find_toolchain()
    kernels = []
    for k in all_kernels():
        fp = simcompile._cache_fp(k)
        mod = native._attach(k, fp, tc, native._native_fingerprint(fp, tc))
        if isinstance(mod, native._NativeModule) and mod.meta.get(
            "elided", {}
        ).get("gathers"):
            kernels.append(k)
    if not kernels:
        return {"skipped": "no contract-dispatching gather kernels"}, False
    # Several independent allocations per kernel: gather timings are
    # sensitive to page-offset aliasing between the arrays, so one
    # allocation draw per kernel leaves the aggregate hostage to
    # placement luck.  Each draw is timed warm and the medians summed.
    seeds = (0, 1, 2)
    buffers = {
        (k.name, s): make_buffers(k, seed=s) for k in kernels for s in seeds
    }
    envs = {k.name: initial_scalars(k) for k in kernels}
    trips = {k.name: simcompile._trips(k, None) for k in kernels}

    cks_elided = {k.name: simcompile.get_compiled(k) for k in kernels}
    os.environ["REPRO_RANGES"] = "0"
    try:
        cks_guarded = {k.name: simcompile.get_compiled(k) for k in kernels}
    finally:
        os.environ.pop("REPRO_RANGES", None)
    for cks in (cks_elided, cks_guarded):
        for name, ck in cks.items():
            if ck.mode != "native":
                return {"skipped": f"{name} not on the native tier"}, False

    rounds = max(40, repeat * 8)
    elided_s = guarded_s = 0.0
    for k in kernels:
        it, ot = trips[k.name]
        env = envs[k.name]
        fn_e = cks_elided[k.name].fn
        fn_g = cks_guarded[k.name].fn
        for s in seeds:
            bufs = buffers[(k.name, s)]
            fn_e(bufs, env, it, ot)  # warm: caches, branch state
            fn_g(bufs, env, it, ot)
            et, gt = [], []
            for _ in range(rounds):
                t0 = time.perf_counter()
                fn_e(bufs, env, it, ot)
                et.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                fn_g(bufs, env, it, ot)
                gt.append(time.perf_counter() - t0)
            elided_s += statistics.median(et)
            guarded_s += statistics.median(gt)

    # Bit-identity of the two configurations on fresh buffers.
    identical = True
    for k in kernels:
        b1 = make_buffers(k, seed=1)
        r1 = run_scalar_compiled(k, b1, None, None)
        os.environ["REPRO_RANGES"] = "0"
        try:
            b0 = make_buffers(k, seed=1)
            r0 = run_scalar_compiled(k, b0, None, None)
        finally:
            os.environ.pop("REPRO_RANGES", None)
        identical = identical and bit_identical(r1, b1, r0, b0)
    reset_native_state()
    clear_compile_cache()

    section = {
        "kernels": [k.name for k in kernels],
        "elided_warm_s": round(elided_s, 5),
        "guarded_warm_s": round(guarded_s, 5),
        "elision_speedup": round(guarded_s / elided_s, 3),
        "bit_identical": identical,
    }
    ok = section["elision_speedup"] >= 1.05 and identical
    return section, ok


def run_pytest_benchmarks() -> dict:
    """Run the two bench files and return pytest-benchmark's stats."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "pytest_bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}:{env.get('PYTHONPATH', '')}"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "benchmarks/bench_pipeline_micro.py",
                "benchmarks/bench_dataset_build.py",
                "--benchmark-only",
                f"--benchmark-json={out}",
                "-q",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not out.exists():
            return {"error": (proc.stdout + proc.stderr)[-2000:]}
        data = json.loads(out.read_text())
    return {
        b["name"]: {
            "mean_s": b["stats"]["mean"],
            "min_s": b["stats"]["min"],
            "rounds": b["stats"]["rounds"],
        }
        for b in data.get("benchmarks", [])
    }


def run_experiments_bench(out_path: Path) -> tuple[dict, bool]:
    """Benchmark the experiment engine (E1–E12 suite) against the
    per-driver seed path, write ``BENCH_experiments.json``, and
    evaluate the engine gates."""
    from repro.experiments import bench_suite

    bench = bench_suite()
    out_path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    print(f"\nwrote {out_path}")

    speedup_ok = bench["speedup_vs_seed"] >= 3.0
    parity_ok = bench["parallel_serial_tables_identical"]
    seed_parity_ok = bench["seed_engine_tables_identical_e1_e11"]
    svr_ok = bool(bench["svr_warm"]) and all(
        d["acceptance"] >= 0.8 for d in bench["svr_warm"].values()
    )
    ok = speedup_ok and parity_ok and seed_parity_ok and svr_ok
    if not ok:
        print(
            "EXPERIMENTS SMOKE FAILURE: "
            f"speedup_vs_seed={bench['speedup_vs_seed']} (need >=3), "
            f"parallel/serial parity={parity_ok}, "
            f"seed/engine E1-E11 parity={seed_parity_ok}, "
            f"svr warm acceptance ok={svr_ok}"
        )
    return bench, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_pipeline.json"))
    parser.add_argument(
        "--experiments-out",
        default=str(REPO_ROOT / "BENCH_experiments.json"),
        help="where the experiment-engine section writes its timings",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--experiments-only",
        action="store_true",
        help="run only the experiment-engine bench (the CI experiments "
        "job's entry point)",
    )
    parser.add_argument(
        "--native-only",
        action="store_true",
        help="run only the executor sweeps and the native-tier section "
        "(the CI native job's entry point)",
    )
    parser.add_argument(
        "--pytest-bench",
        action="store_true",
        help="also run the pytest-benchmark files (slower)",
    )
    args = parser.parse_args(argv)

    if args.experiments_only:
        _, experiments_ok = run_experiments_bench(Path(args.experiments_out))
        return 0 if experiments_ok else 1

    # Executor sweep: interpreter vs NumPy-tier compiler vs native tier.
    interp_s, compile_section, compile_ok = executor_compile_bench(args.repeat)
    native_section, native_ok = native_bench(
        args.repeat, interp_s, compile_section["compiled_cold_s"]
    )
    ranges_section, ranges_ok = ranges_bench(args.repeat)

    if args.native_only:
        report = {
            "schema": 1,
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
            },
            "config": {"workers": args.workers, "repeat": args.repeat},
            "executor_compile": compile_section,
            "native": native_section,
            "ranges": ranges_section,
        }
        print(json.dumps(report, indent=2))
        if not (compile_ok and native_ok and ranges_ok):
            print(
                "NATIVE SMOKE FAILURE: the kernel compiler missed its 5x "
                "cold-sweep bar, the native tier missed its 5x bar over "
                "the NumPy tier, or bounds-check elision missed its "
                "1.05x bar / broke bit-identity"
            )
            return 1
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        off = MeasurementCache(root=Path(tmp) / "off", enabled=False)
        build_stats = DatasetBuildStats()
        cold_serial = best_of(
            args.repeat, lambda: sweep_both(1, off, stats=build_stats)
        )
        parallel_stats = DatasetBuildStats()
        cold_parallel = best_of(
            args.repeat,
            lambda: sweep_both(args.workers, off, stats=parallel_stats),
        )

        warm = MeasurementCache(root=Path(tmp) / "warm")
        sweep_both(1, warm)  # prime (also pays the one-time prepass)
        warm_cache = best_of(args.repeat, lambda: sweep_both(1, warm))
        warm_nopre = best_of(
            args.repeat, lambda: sweep_both(1, warm, prepass=False)
        )
        warm_pre = best_of(
            args.repeat, lambda: sweep_both(1, warm, prepass=True)
        )

        # Supervision layer pricing: the fault-tolerant supervisor vs
        # the raw executor, on the warm (all-cached) hot path and on a
        # cold serial build for reference.
        warm_sup = best_of(
            args.repeat, lambda: sweep_both(1, warm, supervise=True)
        )
        warm_raw = best_of(
            args.repeat, lambda: sweep_both(1, warm, supervise=False)
        )
        cold_sup = best_of(
            args.repeat, lambda: sweep_both(1, off, supervise=True)
        )
        cold_raw = best_of(
            args.repeat, lambda: sweep_both(1, off, supervise=False)
        )

    samples = build_dataset(ARM_LLV).samples
    factory = lambda: RatedSpeedupModel(LeastSquares())  # noqa: E731
    loocv_predictions(factory, samples)  # numpy warmup
    fast_s = best_of(args.repeat, lambda: loocv_predictions(factory, samples))
    refit_s = best_of(
        args.repeat, lambda: loocv_predictions(factory, samples, fast=False)
    )
    agree = float(
        np.nanmax(
            np.abs(
                loocv_predictions(factory, samples)
                - loocv_predictions(factory, samples, fast=False)
            )
        )
    )

    # NNLS LOOCV: cold Lawson–Hanson refit loop vs the active-set
    # warm-start path.  Predictions may legitimately differ where the
    # rank-deficient optimum is non-unique; the fold *coverage* (which
    # folds produced a finite prediction) must be identical.
    nnls_factory = lambda: SpeedupModel(NonNegativeLeastSquares())  # noqa: E731
    nnls_warm = loocv_predictions(nnls_factory, samples)
    nnls_cold = loocv_predictions(nnls_factory, samples, fast=False)
    nnls_warm_s = best_of(
        args.repeat, lambda: loocv_predictions(nnls_factory, samples)
    )
    nnls_refit_s = best_of(
        args.repeat,
        lambda: loocv_predictions(nnls_factory, samples, fast=False),
    )
    nnls_coverage_equal = bool(
        np.array_equal(np.isfinite(nnls_warm), np.isfinite(nnls_cold))
    )

    report = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {"workers": args.workers, "repeat": args.repeat},
        "dataset_build": {
            "cold_serial_s": round(cold_serial, 4),
            "cold_parallel_s": round(cold_parallel, 4),
            "warm_cache_s": round(warm_cache, 4),
            "parallel_speedup": round(cold_serial / cold_parallel, 2),
            "warm_speedup": round(cold_serial / warm_cache, 2),
            # How the cost-aware scheduler ran the parallel sweep — a
            # deliberate serial fallback (1-CPU host, work below pool
            # overhead) is recorded, not hidden in a <1 "speedup".
            "parallel_strategy": parallel_stats.strategy,
            "parallel_reason": parallel_stats.reason,
            "estimated_work": round(parallel_stats.estimated_work, 1),
        },
        "executor_compile": compile_section,
        "native": native_section,
        "ranges": ranges_section,
        "static_prepass": {
            "warm_with_prepass_s": round(warm_pre, 4),
            "warm_without_prepass_s": round(warm_nopre, 4),
            "overhead_s": round(warm_pre - warm_nopre, 4),
            "overhead_pct": round(
                100.0 * (warm_pre - warm_nopre) / warm_nopre, 2
            ),
        },
        "resilience": {
            "warm_supervised_s": round(warm_sup, 4),
            "warm_raw_s": round(warm_raw, 4),
            "warm_overhead_pct": round(
                100.0 * (warm_sup - warm_raw) / warm_raw, 2
            ),
            "cold_serial_supervised_s": round(cold_sup, 4),
            "cold_serial_raw_s": round(cold_raw, 4),
            "cold_overhead_pct": round(
                100.0 * (cold_sup - cold_raw) / cold_raw, 2
            ),
        },
        "loocv_l2": {
            "refit_loop_s": round(refit_s, 5),
            "fast_path_s": round(fast_s, 5),
            "fast_speedup": round(refit_s / fast_s, 2),
            "max_abs_difference": agree,
        },
        "loocv_nnls": {
            "refit_loop_s": round(nnls_refit_s, 5),
            "warm_start_s": round(nnls_warm_s, 5),
            "warm_speedup": round(nnls_refit_s / nnls_warm_s, 2),
            "coverage_identical": nnls_coverage_equal,
        },
    }
    if args.pytest_bench:
        report["pytest_benchmarks"] = run_pytest_benchmarks()

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")

    experiments_bench, experiments_ok = run_experiments_bench(
        Path(args.experiments_out)
    )

    ok = report["loocv_l2"]["max_abs_difference"] < 1e-8
    warm_ok = report["dataset_build"]["warm_speedup"] >= 1.0
    # The verify+lint gate is memoized; a warm rebuild must not pay
    # more than 5% for it (timer-noise floor of 2 ms for tiny sweeps).
    prepass_ok = (warm_pre - warm_nopre) < max(0.05 * warm_nopre, 0.002)
    # The supervised pool's bookkeeping (retry queue, journal hooks,
    # deadline checks) must stay off the warm path: <5% over the raw
    # executor, with the same timer-noise floor.
    resilience_ok = (warm_sup - warm_raw) < max(0.05 * warm_raw, 0.002)
    # The parallel sweep is either a genuine win or a deliberate,
    # recorded serial fallback — never a silent slowdown.
    parallel_ok = (
        report["dataset_build"]["parallel_speedup"] >= 1.0
        or report["dataset_build"]["parallel_strategy"] == "serial"
    )
    # The matrix-cached refit loop narrowed the gap (both paths are
    # single-digit milliseconds now), so the warm path must win up to
    # a 2 ms timer-noise floor rather than by a strict ratio.
    nnls_ok = report["loocv_nnls"]["coverage_identical"] and (
        nnls_warm_s < nnls_refit_s + 0.002
    )
    if not (
        ok
        and warm_ok
        and prepass_ok
        and resilience_ok
        and parallel_ok
        and compile_ok
        and native_ok
        and ranges_ok
        and nnls_ok
        and experiments_ok
    ):
        print(
            "SMOKE FAILURE: fast LOOCV disagrees, warm build regressed, "
            "the static prepass costs >5% on a warm rebuild, the "
            "supervised pool costs >5% over the raw executor, the "
            "parallel sweep silently lost to serial, the kernel "
            "compiler missed its 5x cold-sweep bar, the native tier "
            "missed its 5x bar over the NumPy tier, bounds-check "
            "elision missed its 1.05x bar or broke bit-identity, "
            "warm-start NNLS LOOCV regressed, or the experiment engine "
            "missed its gates"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
