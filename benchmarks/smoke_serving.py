"""Serving perf smoke: prices the advisor service's request path and
emits a ``BENCH_serving.json`` artifact for cross-PR trajectory
tracking.

    PYTHONPATH=src python benchmarks/smoke_serving.py [--out PATH]
        [--kernels N] [--rounds K] [--workers W]

Measured, all through a real :class:`~repro.serve.workers.WorkerPool`
over a bootstrapped model registry:

* ``clean``    — end-to-end request latency (p50/p99) and throughput
  over ``--rounds`` passes of the request set, no faults;
* ``faulted``  — the same stream under a ~10% deterministic fault mix
  (worker crash, corrupted registry entry, toolchain loss — no slow
  handler, so retried latency stays bounded by work, not by hangs),
  each request retried through ``RetryPolicy`` to a final verdict;
* ``overload`` — a concurrent burst against a deliberately tiny pool
  whose one worker is wedged: the rejection rate at admission (429)
  and the guarantee that every answer, including the rejections,
  arrives within the deadline;
* ``breaker``  — time from the native-tier breaker tripping to the
  first fully healthy (undegraded) verdict after recovery.

Gates, evaluated at exit:

* ``faulted.p99_s <= 3.0 * max(clean.p99_s, 0.01)`` — the headline:
  fault handling may cost retries, never an unbounded tail;
* no request lost in the faulted pass (every one ends 200);
* faulted verdict cores bit-identical to the clean pass;
* the overload burst sheds load (>0 rejections) and answers every
  request within the deadline plus scheduling grace.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.pipeline.faultinject import FaultPlan  # noqa: E402
from repro.pipeline.resilience import RetryPolicy  # noqa: E402
from repro.serve import Advisor, ModelRegistry, WorkerPool, canonical_verdict  # noqa: E402
from repro.serve.chaos import DEADLINE_GRACE_S, bootstrap_registry, suite_payloads  # noqa: E402

#: ~10% total fault mass, split over the three fault kinds that cost
#: work rather than wall-clock waiting.  ``slow_handler`` is excluded
#: on purpose: it turns a request into a deadline-length hang, so its
#: retried latency measures the configured timeout, not the service.
FAULTED_MIX = {
    "worker_crash": 0.034,
    "corrupt_registry": 0.033,
    "toolchain_loss": 0.033,
}

#: The headline gate: the p99 under ~10% faults may pay retries but
#: must stay within 3x of the clean p99 (10 ms floor against noise on
#: sub-millisecond clean paths).
P99_RATIO_BAR = 3.0

#: The breaker bench needs a *guarded* kernel: guard-probability
#: estimation is the only request step that touches the native tier,
#: so an unguarded kernel would never exercise (or trip) the breaker.
GUARDED_KERNEL = """
kernel bench_guarded {
    f32 a[128], b[128];
    for (i = 0; i < 128; i++) {
        if (b[i] > 0.0) { a[i] = b[i]; } else { a[i] = 0.0 - b[i]; }
    }
}
"""


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def drive(
    pool: WorkerPool,
    requests: list[tuple[str, dict]],
    rounds: int,
    policy: RetryPolicy,
) -> dict:
    """Run ``rounds`` passes, timing each request end to end (retries
    included) and keeping its final body for the parity check."""
    latencies: list[float] = []
    finals: dict[str, dict] = {}
    statuses: list[int] = []
    retries = 0
    t_start = time.perf_counter()
    for rnd in range(rounds):
        for name, payload in requests:
            # Round-unique ids keep the deterministic fault schedule
            # drawing fresh decisions every pass instead of replaying
            # round 0's.
            request_id = f"{name}#r{rnd}"
            t0 = time.perf_counter()
            status, body = 500, {"error": "never attempted"}
            for attempt in range(policy.max_attempts):
                status, body = pool.submit(
                    dict(payload), request_id=request_id, attempt=attempt
                )
                if status not in (429, 503):
                    break
                retries += 1
                time.sleep(policy.delay(request_id, attempt))
            latencies.append(time.perf_counter() - t0)
            statuses.append(status)
            if rnd == 0:
                finals[name] = {"status": status, "body": body}
    wall_s = time.perf_counter() - t_start
    count = len(latencies)
    return {
        "requests": count,
        "lost": sum(1 for s in statuses if s != 200),
        "retries": retries,
        "p50_s": round(percentile(latencies, 0.50), 5),
        "p99_s": round(percentile(latencies, 0.99), 5),
        "mean_s": round(statistics.fmean(latencies), 5),
        "requests_per_s": round(count / wall_s, 2) if wall_s > 0 else 0.0,
        "finals": finals,
    }


def overload_bench(registry: ModelRegistry, payload: dict) -> dict:
    """Burst a tiny pool whose single worker is wedged by a hang fault:
    admission must shed the burst with 429s, and nothing — admitted or
    rejected — may outlive the deadline."""
    timeout = 0.5
    pool = WorkerPool(
        Advisor(registry),
        workers=1,
        queue_size=2,
        timeout=timeout,
        fault_plan=FaultPlan(
            rates={"slow_handler": 1.0}, seed=0, hang_seconds=60.0
        ),
        hang_s=60.0,
    ).start()
    outcomes: list[tuple[int, float]] = []
    lock = threading.Lock()

    def fire(i: int) -> None:
        t0 = time.perf_counter()
        status, _ = pool.submit(
            {**payload}, request_id=f"burst{i}", attempt=0
        )
        elapsed = time.perf_counter() - t0
        with lock:
            outcomes.append((status, elapsed))

    try:
        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(24)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
    finally:
        pool.stop(drain=False, timeout=1.0)
    statuses = [s for s, _ in outcomes]
    worst = max((e for _, e in outcomes), default=0.0)
    return {
        "burst": 24,
        "answered": len(outcomes),
        "rejected_429": statuses.count(429),
        "timed_out_503": statuses.count(503),
        "succeeded_200": statuses.count(200),
        "rejection_rate": round(statuses.count(429) / max(1, len(outcomes)), 3),
        "worst_answer_s": round(worst, 4),
        "deadline_s": timeout,
        "within_deadline": worst <= timeout + DEADLINE_GRACE_S,
    }


def breaker_recovery_bench(registry: ModelRegistry) -> dict:
    """Trip the native breaker with injected toolchain losses, then
    time how long the service stays demoted before the half-open probe
    restores the healthy (undegraded) path."""
    payload = {"kernel": GUARDED_KERNEL}
    recovery_time = 0.3
    advisor = Advisor(registry, failure_threshold=3, recovery_time=recovery_time)
    baseline = advisor.advise(dict(payload))  # warm every cache off the clock
    if any("native tier unavailable" in d for d in baseline["degraded"]):
        # No toolchain on this host: the breaker never engages, so
        # there is no trip-to-recovery interval to measure.
        return {"skipped": "native tier unavailable", "recovered": True}
    for _ in range(3):
        advisor.advise(dict(payload), inject={"toolchain_loss"})
    tripped_at = time.perf_counter()
    state_after_trip = advisor.native_breaker.state
    recovered_s = None
    deadline = time.perf_counter() + 10.0
    while time.perf_counter() < deadline:
        resp = advisor.advise(dict(payload))
        if not any("interpreter tier" in d for d in resp["degraded"]):
            recovered_s = time.perf_counter() - tripped_at
            break
        time.sleep(0.02)
    return {
        "configured_recovery_s": recovery_time,
        "state_after_trip": state_after_trip,
        "recovered": recovered_s is not None,
        "recovery_s": round(recovered_s, 4) if recovered_s else None,
        "state_after_recovery": advisor.native_breaker.state,
        "recoveries": advisor.native_breaker.stats()["recoveries"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serving.json"))
    parser.add_argument("--kernels", type=int, default=16)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    selected = suite_payloads(args.kernels)
    requests = [(name, payload) for name, payload, _ in selected]
    samples = [sample for _, _, sample in selected]
    policy = RetryPolicy(max_attempts=10, base_delay=0.02, cap=0.5)

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        entry = bootstrap_registry(
            registry, samples, target="armv8-neon", vectorizer="llv"
        )

        clean_pool = WorkerPool(
            Advisor(registry), workers=args.workers, timeout=args.timeout
        ).start()
        try:
            drive(clean_pool, requests, 1, policy)  # warm-up, off the clock
            clean = drive(clean_pool, requests, args.rounds, policy)
        finally:
            clean_pool.stop()

        plan = FaultPlan(
            rates=dict(FAULTED_MIX), seed=args.seed, hang_seconds=60.0
        )
        faulted_pool = WorkerPool(
            Advisor(registry),
            workers=args.workers,
            timeout=args.timeout,
            fault_plan=plan,
        ).start()
        try:
            faulted = drive(faulted_pool, requests, args.rounds, policy)
            faults_injected = faulted_pool.health().get("faults_injected", 0)
        finally:
            faulted_pool.stop()

        mismatches = [
            rid
            for rid, rec in faulted.pop("finals").items()
            if rec["status"] == 200
            and canonical_verdict(rec["body"])
            != canonical_verdict(clean["finals"][rid]["body"])
        ]
        clean.pop("finals")
        faulted["faults_injected"] = faults_injected

        overload = overload_bench(registry, requests[0][1])
        breaker = breaker_recovery_bench(registry)

    p99_bar = round(P99_RATIO_BAR * max(clean["p99_s"], 0.01), 5)
    gates = {
        "p99_ratio_ok": faulted["p99_s"] <= p99_bar,
        "no_lost_requests": faulted["lost"] == 0 and clean["lost"] == 0,
        "verdicts_bit_identical": not mismatches,
        "overload_shed_and_bounded": overload["rejected_429"] > 0
        and overload["answered"] == overload["burst"]
        and overload["within_deadline"],
        "breaker_recovered": breaker["recovered"],
    }
    report = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "kernels": len(requests),
            "rounds": args.rounds,
            "workers": args.workers,
            "timeout_s": args.timeout,
            "fault_mix": FAULTED_MIX,
            "model_version": entry.version,
        },
        "clean": clean,
        "faulted": faulted,
        "faulted_p99_bar_s": p99_bar,
        "verdict_mismatches": mismatches,
        "overload": overload,
        "breaker": breaker,
        "gates": gates,
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")

    if not all(gates.values()):
        failed = ", ".join(k for k, v in gates.items() if not v)
        print(f"SERVING SMOKE FAILURE: {failed}")
        return 1
    print(
        f"serving smoke PASSED: clean p99 {clean['p99_s']}s, faulted p99 "
        f"{faulted['p99_s']}s (bar {p99_bar}s), "
        f"{faulted['faults_injected']} faults injected, "
        f"{overload['rejected_429']} burst rejections"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
