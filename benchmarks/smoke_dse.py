"""DSE perf smoke: gates the plan-space search engine and emits
``BENCH_dse.json``.

    PYTHONPATH=src python benchmarks/smoke_dse.py [--out PATH]
        [--limit N] [--seed S]

Sections (all run on the TSVC suite, ``--limit`` takes a name-ordered
slice for the CI leg):

* ``regret`` — the E14 arms on the slice.  **Gated**: the deployable
  model-guided arm (``verified``: model prunes to a shortlist,
  measurement decides) must achieve ≥1.0× the natural-VF default's
  geomean speedup.  The pure-model (exhaustive) geomean is recorded
  but not gated — its regret against the oracle is the experiment's
  reported finding, not a regression.
* ``memo``   — the full slice searched cold (empty memo) and warm
  (everything memoized).  **Gated**: warm must be ≥10× faster.
* ``parity`` — serial vs thread-pool searches of the same slice from
  cold caches.  **Gated**: bit-identical ``SearchResult`` payloads.
* ``chaos``  — the slice searched under injected crash faults
  (drained by the engine's bounded retry loop).  **Gated**:
  bit-identical to the unfaulted results.

Exit status 1 when any gate fails, so CI can consume it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.costmodel.base import EPS  # noqa: E402
from repro.dse import clear_dse_cache, dse_cache_info, search_kernel  # noqa: E402
from repro.experiments.base import fit_cached, make_speedup_model  # noqa: E402
from repro.experiments.dataset import ARM_LLV, build_dataset  # noqa: E402
from repro.pipeline.faultinject import parse_faults  # noqa: E402
from repro.targets.registry import get_target  # noqa: E402
from repro.tsvc.suite import all_kernels  # noqa: E402


def _gm(values) -> float:
    v = np.maximum(np.asarray(values, dtype=np.float64), EPS)
    return float(np.exp(np.mean(np.log(v)))) if v.size else 1.0


def _setup(limit):
    target = get_target(ARM_LLV.target)
    dataset = build_dataset(ARM_LLV)
    model = fit_cached(make_speedup_model("nnls"), dataset.samples)
    kernels = list(all_kernels())
    if limit:
        kernels = kernels[:limit]
    return target, model, kernels


def bench_regret(limit: int, seed: int) -> dict:
    from repro.dse.experiment import run_e14

    names = None
    if limit:
        names = [k.name for k in all_kernels()][:limit]
    result = run_e14(names, seed=seed)
    default = _gm(result.series["default"])
    verified = _gm(result.series["verified"])
    model_gm = _gm(result.series["model"])
    oracle = _gm(result.series["oracle"])
    overall = result.rows[-1]
    return {
        "kernels": int(result.series["kernels"].size),
        "plan_points": int(result.series["n_points"].sum()),
        "default_geomean": round(default, 4),
        "model_geomean": round(model_gm, 4),
        "verified_geomean": round(verified, 4),
        "oracle_geomean": round(oracle, 4),
        "model_top1": overall["top1"],
        "model_top3": overall["top3"],
        # The deployment arm shortlists the default, so ≥ is by
        # construction; the gate guards that construction.
        "gate_model_guided_ge_default": bool(verified >= default - 1e-12),
    }


def bench_memo(target, model, kernels) -> dict:
    clear_dse_cache()
    t0 = time.perf_counter()
    cold = [search_kernel(k, target, model) for k in kernels]
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = [search_kernel(k, target, model) for k in kernels]
    warm_s = time.perf_counter() - t0
    info = dse_cache_info()
    speedup = cold_s / max(warm_s, 1e-9)
    identical = [a.to_dict() for a in cold] == [b.to_dict() for b in warm]
    return {
        "kernels": len(kernels),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(speedup, 1),
        "entries": info["entries"],
        "hits": info["hits"],
        "gate_warm_10x": bool(speedup >= 10.0),
        "gate_warm_identical": identical,
    }


def bench_parity(target, model, kernels) -> dict:
    clear_dse_cache()
    serial = [search_kernel(k, target, model).to_dict() for k in kernels]
    clear_dse_cache()
    with ThreadPoolExecutor(max_workers=4) as pool:
        parallel = list(
            pool.map(
                lambda k: search_kernel(k, target, model).to_dict(), kernels
            )
        )
    return {
        "kernels": len(kernels),
        "gate_serial_parallel_identical": serial == parallel,
    }


def bench_chaos(target, model, kernels) -> dict:
    clear_dse_cache()
    clean = [search_kernel(k, target, model).to_dict() for k in kernels]
    clear_dse_cache()
    # 0.2 keeps the worst per-site streak inside the engine's bounded
    # retry budget even at full-suite scale (0.2^5 per site).
    plan = parse_faults("crash:0.2", seed=7)
    faulted = [
        search_kernel(k, target, model, faults=plan).to_dict()
        for k in kernels
    ]
    return {
        "kernels": len(kernels),
        "fault_spec": "crash:0.2 (seed 7)",
        "gate_chaos_identical": clean == faulted,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_dse.json")
    parser.add_argument(
        "--limit",
        type=int,
        default=0,
        help="search only the first N suite kernels (0 = full suite)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    target, model, kernels = _setup(args.limit)
    payload = {
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "regret": bench_regret(args.limit, args.seed),
        "memo": bench_memo(target, model, kernels),
        "parity": bench_parity(target, model, kernels),
        "chaos": bench_chaos(target, model, kernels),
    }

    failures = []
    for section, results in payload.items():
        if not isinstance(results, dict) or "skipped" in results:
            continue
        for key, value in results.items():
            if key.startswith("gate_") and not value:
                failures.append(f"{section}.{key}")
    payload["gates_passed"] = not failures
    if failures:
        payload["gate_failures"] = failures

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"[bench written to {args.out}]")
    if failures:
        print(f"FAIL: {', '.join(failures)}")
        return 1
    print("[dse gates passed]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
