"""E8 — leave-one-out cross validation with L2 (paper slide 16)."""

from repro.costmodel import RatedSpeedupModel, SpeedupModel
from repro.experiments.drivers import run_e8
from repro.fitting import LeastSquares
from repro.validation import loocv_predictions, pearson

from conftest import print_once


def test_bench_e8(benchmark, arm_dataset):
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def figure():
        counts = loocv_predictions(lambda: SpeedupModel(LeastSquares()), samples)
        rated = loocv_predictions(
            lambda: RatedSpeedupModel(LeastSquares()), samples
        )
        return pearson(counts, measured), pearson(rated, measured)

    counts_r, rated_r = benchmark(figure)
    print_once("e8", run_e8().to_text(include_scatter=False))
    assert rated_r > counts_r  # the feature ranking survives LOOCV
    assert rated_r > 0.5
