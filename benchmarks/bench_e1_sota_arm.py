"""E1 — state-of-the-art analysis on ARM (paper slide 4).

Regenerates the static-cost-model-vs-measurement scatter for the TSVC
suite on the NEON model and benchmarks the evaluation.
"""

import pytest

from repro.costmodel import LLVMLikeCostModel, measured_speedups, predict_all
from repro.experiments.drivers import run_e1
from repro.validation import evaluate

from conftest import print_once


def test_bench_e1(benchmark, arm_dataset):
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def figure():
        model = LLVMLikeCostModel()
        preds = predict_all(model, samples)
        return evaluate(model.name, preds, measured)

    report = benchmark(figure)
    print_once("e1", run_e1().to_text())
    # The baseline must show the weak correlation the paper opens with.
    assert report.pearson < 0.8
    assert report.confusion.false_predictions >= 3
