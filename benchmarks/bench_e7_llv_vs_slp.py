"""E7 — LLV vs SLP on the same loop (paper slide 15)."""

from repro.experiments.drivers import run_e7
from repro.sim import measure_kernel
from repro.targets import ARMV8_NEON
from repro.tsvc import get_kernel

from conftest import print_once


def test_bench_e7(benchmark):
    kern = get_kernel("s273")

    def figure():
        llv = measure_kernel(kern, ARMV8_NEON, vectorizer="llv")
        slp = measure_kernel(kern, ARMV8_NEON, vectorizer="slp")
        return llv.speedup, slp.speedup

    llv_speedup, slp_speedup = benchmark(figure)
    print_once("e7", run_e7().to_text())
    # The two transformations genuinely differ on this loop (LLV
    # if-converts the guarded statement; SLP leaves it scalar).
    assert llv_speedup != slp_speedup
    assert llv_speedup > 1.0
