"""E4 — rated instruction count on ARM (paper slide 10)."""

from repro.costmodel import (
    LLVMLikeCostModel,
    RatedSpeedupModel,
    SpeedupModel,
    predict_all,
)
from repro.experiments.drivers import run_e4
from repro.fitting import NonNegativeLeastSquares
from repro.validation import evaluate

from conftest import print_once


def test_bench_e4(benchmark, arm_dataset):
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def figure():
        rated = RatedSpeedupModel(NonNegativeLeastSquares()).fit(samples)
        counts = SpeedupModel(NonNegativeLeastSquares()).fit(samples)
        return (
            evaluate("rated", predict_all(rated, samples), measured),
            evaluate("counts", predict_all(counts, samples), measured),
        )

    rated_rep, counts_rep = benchmark(figure)
    print_once("e4", run_e4().to_text(include_scatter=False))
    # Composition features beat raw counts — the slide-10 result.
    assert rated_rep.pearson > counts_rep.pearson
    assert rated_rep.pearson > 0.6
    baseline = evaluate(
        "base", predict_all(LLVMLikeCostModel(), samples), measured
    )
    assert rated_rep.pearson > baseline.pearson
