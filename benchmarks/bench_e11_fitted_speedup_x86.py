"""E11 — fitted for speedup on x86 (paper slide 19): all three methods
improve further; NNLS/SVR (rated) eliminate false negatives."""

from repro.costmodel import (
    LinearCostModel,
    RatedSpeedupModel,
    SpeedupModel,
    predict_all,
)
from repro.experiments.drivers import run_e11
from repro.fitting import LeastSquares, LinearSVR, NonNegativeLeastSquares
from repro.validation import evaluate

from conftest import print_once


def test_bench_e11(benchmark, x86_dataset):
    samples = x86_dataset.samples
    measured = x86_dataset.measured

    def figure():
        out = {}
        for reg_cls in (LeastSquares, NonNegativeLeastSquares, LinearSVR):
            m = SpeedupModel(reg_cls()).fit(samples)
            out[m.name] = evaluate(m.name, predict_all(m, samples), measured)
            r = RatedSpeedupModel(reg_cls()).fit(samples)
            out[r.name] = evaluate(r.name, predict_all(r, samples), measured)
        return out

    reports = benchmark(figure)
    print_once("e11", run_e11().to_text(include_scatter=False))

    # Slide 19's claims: for every fitting method, modelling speedup
    # (count or rated features) beats modelling cost…
    for reg_cls in (LeastSquares, NonNegativeLeastSquares, LinearSVR):
        cost_rep = evaluate(
            "c",
            predict_all(LinearCostModel(reg_cls()).fit(samples), samples),
            measured,
        )
        method = reg_cls().name
        best_speedup = max(
            reports[f"speedup-{method}"].pearson,
            reports[f"rated-{method}"].pearson,
        )
        assert best_speedup > cost_rep.pearson, f"{method} regressed"
    # …and the rated NNLS fit (nearly) eliminates false negatives.
    assert reports["rated-NNLS"].confusion.fn <= 1
