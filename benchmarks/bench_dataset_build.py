"""Dataset-build timing: the pipeline's cold/warm/parallel trajectory.

These benches track the acceptance surface of the measurement
pipeline: a cold serial sweep (the pre-pipeline baseline shape), a
cold parallel sweep, a warm rebuild served from the persistent cache,
and the fast-path vs refit-loop LOOCV.  ``smoke_pipeline.py`` runs the
same measurements standalone and emits ``BENCH_pipeline.json``.
"""

import pytest

from repro.costmodel import RatedSpeedupModel
from repro.experiments import ARM_LLV, X86_SLP, DatasetSpec
from repro.fitting import LeastSquares
from repro.pipeline import MeasurementCache, measure_suite
from repro.validation import loocv_predictions

from benchmarks.conftest import print_once


def _uncached(tmp_path_factory):
    return MeasurementCache(
        root=tmp_path_factory.mktemp("bench-cache-off"), enabled=False
    )


def test_bench_build_cold_serial(benchmark, tmp_path_factory):
    cache = _uncached(tmp_path_factory)

    def build():
        samples, failures = measure_suite(ARM_LLV, workers=1, cache=cache)
        return len(samples), len(failures)

    vectorized, excluded = benchmark(build)
    assert vectorized + excluded == 151


def test_bench_build_cold_parallel(benchmark, tmp_path_factory):
    cache = _uncached(tmp_path_factory)
    spec = DatasetSpec("armv8-neon", "llv", workers=4)

    def build():
        samples, _ = measure_suite(spec, cache=cache)
        return len(samples)

    assert benchmark(build) > 75


def test_bench_build_warm_cache(benchmark, tmp_path_factory):
    cache = MeasurementCache(root=tmp_path_factory.mktemp("bench-cache"))
    measure_suite(ARM_LLV, workers=1, cache=cache)  # prime

    def rebuild():
        samples, _ = measure_suite(ARM_LLV, workers=1, cache=cache)
        return len(samples)

    n = benchmark(rebuild)
    assert n > 75
    assert cache.stats.hits >= 151
    print_once("warm-cache", str(cache.stats))


def test_bench_build_both_targets_warm(benchmark, tmp_path_factory):
    """The full ARM+x86 sweep every experiment session pays at least once."""
    cache = MeasurementCache(root=tmp_path_factory.mktemp("bench-cache-2"))
    for spec in (ARM_LLV, X86_SLP):
        measure_suite(spec, workers=1, cache=cache)

    def rebuild():
        total = 0
        for spec in (ARM_LLV, X86_SLP):
            samples, failures = measure_suite(spec, workers=1, cache=cache)
            total += len(samples) + len(failures)
        return total

    assert benchmark(rebuild) == 302


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "refit-loop"])
def test_bench_loocv_l2(benchmark, arm_dataset, fast):
    samples = arm_dataset.samples

    def loocv():
        return loocv_predictions(
            lambda: RatedSpeedupModel(LeastSquares()), samples, fast=fast
        )

    preds = benchmark(loocv)
    assert len(preds) == len(samples)
