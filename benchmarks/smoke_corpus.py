"""Corpus perf smoke: gates the batched native translation units and
the sharded sweep orchestrator, and emits ``BENCH_corpus.json``.

    PYTHONPATH=src python benchmarks/smoke_corpus.py [--out PATH]
        [--size N] [--shards K] [--batch B]

Sections (all corpus kernels come from the property-based generator,
so the bench scales to any ``--size`` without touching the suite):

* ``batch_build``  — corpus-cold native compile throughput: every
  kernel built into a fresh artifact cache through the batched
  translation units (``prebuild_native``, B kernels per ``cc``) vs the
  one-TU-per-kernel path (one ``cc`` + self-check each).  **Gated**:
  the batched path must win ≥3×.  ``skipped`` without a C toolchain.
* ``batch_parity`` — a sweep with batching on vs off
  (``REPRO_NATIVE_BATCH``) must produce bit-identical samples; the
  batch members self-check against the interpreter at build time, so
  a divergence here would mean the dispatcher routed a wrong symbol.
  **Gated**.
* ``sharding``     — ``measure_corpus`` with ``--shards`` shards and a
  stream directory vs a serial single-shard sweep of the same names:
  bit-identical samples, identical failures, zero quarantines.
  **Gated**.

Exit status 1 when any gate fails, so CI can consume it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import ARM_LLV  # noqa: E402
from repro.experiments.corpus import corpus_kernel_names  # noqa: E402
from repro.gen import corpus_names, generate_kernel  # noqa: E402
from repro.pipeline import MeasurementCache, measure_corpus  # noqa: E402
from repro.pipeline.faultinject import _samples_equal  # noqa: E402
from repro.sim import native, prebuild_native  # noqa: E402
from repro.sim.compile import kernel_fingerprint  # noqa: E402


def nocache() -> MeasurementCache:
    return MeasurementCache(root="/nonexistent", enabled=False)


def _fresh_native_cache(tmp: str, batch: int) -> None:
    os.environ["REPRO_NATIVE_CACHE_DIR"] = tmp
    os.environ["REPRO_NATIVE_BATCH"] = str(batch)
    native.reset_native_state()


def bench_batch_build(size: int, batch: int) -> dict:
    """Corpus-cold compile throughput, batched vs one-TU-per-kernel."""
    tc = native.find_toolchain()
    if tc is None or not native.native_enabled():
        return {"skipped": "no usable C toolchain"}
    kernels = [generate_kernel(n) for n in corpus_names(size, seed=17)]

    with tempfile.TemporaryDirectory() as tmp:
        _fresh_native_cache(tmp, batch)
        t0 = time.perf_counter()
        statuses = prebuild_native(kernels)
        batched_s = time.perf_counter() - t0
        built = sum(
            1 for v in statuses.values() if v in ("exact", "tolerance")
        )

    with tempfile.TemporaryDirectory() as tmp:
        _fresh_native_cache(tmp, 1)
        tc = native.find_toolchain()
        t0 = time.perf_counter()
        solo_built = 0
        for k in kernels:
            fp = kernel_fingerprint(k)
            nfp = native._native_fingerprint(fp, tc)
            try:
                native._build_artifact(k, fp, tc, tmp, nfp)
                solo_built += 1
            except Exception:
                pass
        solo_s = time.perf_counter() - t0

    _fresh_native_cache(tempfile.mkdtemp(prefix="repro-bench-"), batch)
    ratio = solo_s / batched_s if batched_s > 0 else float("inf")
    return {
        "kernels": len(kernels),
        "batch_size": batch,
        "batched_s": round(batched_s, 3),
        "batched_built": built,
        "solo_s": round(solo_s, 3),
        "solo_built": solo_built,
        "speedup": round(ratio, 2),
        "gate_3x": ratio >= 3.0,
    }


def bench_batch_parity(size: int) -> dict:
    """Batching must never change a measured float."""
    names = corpus_kernel_names(size)

    def sweep(batch: int):
        os.environ["REPRO_NATIVE_BATCH"] = str(batch)
        native.reset_native_state()
        return measure_corpus(
            names, ARM_LLV, shards=1, workers=1,
            supervise=False, cache=nocache(),
        )

    t0 = time.perf_counter()
    batched = sweep(int(os.environ.get("REPRO_NATIVE_BATCH", "24") or 24))
    batched_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    unbatched = sweep(0)
    unbatched_s = time.perf_counter() - t0
    os.environ.pop("REPRO_NATIVE_BATCH", None)
    native.reset_native_state()
    identical = (
        _samples_equal(batched.samples, unbatched.samples)
        and batched.failures == unbatched.failures
    )
    return {
        "kernels": len(names),
        "batched_sweep_s": round(batched_s, 3),
        "unbatched_sweep_s": round(unbatched_s, 3),
        "samples": len(batched.samples),
        "gate_bit_identical": identical,
    }


def bench_sharding(size: int, shards: int) -> dict:
    """Sharded + streamed sweep ≡ serial sweep, bit for bit."""
    names = corpus_kernel_names(size)
    t0 = time.perf_counter()
    serial = measure_corpus(
        names, ARM_LLV, shards=1, workers=1,
        supervise=False, cache=nocache(),
    )
    serial_s = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as stream:
        t0 = time.perf_counter()
        sharded = measure_corpus(
            names, ARM_LLV, shards=shards,
            cache=nocache(), stream_dir=stream,
        )
        sharded_s = time.perf_counter() - t0
    identical = (
        _samples_equal(serial.samples, sharded.samples)
        and serial.failures == sharded.failures
    )
    return {
        "kernels": len(names),
        "shards": sharded.shards,
        "serial_s": round(serial_s, 3),
        "sharded_s": round(sharded_s, 3),
        "samples": len(sharded.samples),
        "quarantined": sharded.quarantined_names,
        "gate_bit_identical": identical,
        "gate_no_quarantine": not sharded.quarantined_names,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_corpus.json")
    parser.add_argument(
        "--size",
        type=int,
        default=500,
        help="corpus size for the throughput gate (default: 500)",
    )
    parser.add_argument(
        "--sweep-size",
        type=int,
        default=None,
        help="corpus size for the parity/sharding sweeps "
        "(default: min(--size, 200))",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--batch",
        type=int,
        default=int(os.environ.get("REPRO_NATIVE_BATCH", "24") or 24),
    )
    args = parser.parse_args(argv)
    sweep_size = args.sweep_size or min(args.size, 200)

    payload = {
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "batch_build": bench_batch_build(args.size, args.batch),
        "batch_parity": bench_batch_parity(sweep_size),
        "sharding": bench_sharding(sweep_size, args.shards),
    }

    failures = []
    for section, results in payload.items():
        if not isinstance(results, dict) or "skipped" in results:
            continue
        for key, value in results.items():
            if key.startswith("gate_") and not value:
                failures.append(f"{section}.{key}")
    payload["gates_passed"] = not failures
    if failures:
        payload["gate_failures"] = failures

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"[bench written to {args.out}]")
    if failures:
        print(f"FAIL: {', '.join(failures)}")
        return 1
    print("[corpus gates passed]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
