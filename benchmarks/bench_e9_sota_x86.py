"""E9 — state-of-the-art analysis on x86 (paper slide 17): SLP after
unrolling, AVX2."""

from repro.costmodel import LLVMLikeCostModel, predict_all
from repro.experiments.drivers import run_e9
from repro.validation import evaluate

from conftest import print_once


def test_bench_e9(benchmark, x86_dataset):
    samples = x86_dataset.samples
    measured = x86_dataset.measured

    def figure():
        return evaluate(
            "llvm-static", predict_all(LLVMLikeCostModel(), samples), measured
        )

    report = benchmark(figure)
    print_once("e9", run_e9().to_text())
    assert report.pearson < 0.5  # the x86 baseline correlates poorly
    assert len(samples) >= 40
