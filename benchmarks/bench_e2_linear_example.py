"""E2 — the slide-6 worked example: block equations and fitted costs."""

from repro.costmodel import LinearCostModel
from repro.experiments.drivers import run_e2
from repro.fitting import NonNegativeLeastSquares

from conftest import print_once


def test_bench_e2(benchmark, arm_dataset):
    samples = arm_dataset.samples

    def figure():
        model = LinearCostModel(NonNegativeLeastSquares()).fit(samples)
        s000 = arm_dataset.sample("s000")
        return model.vector_cost(s000), model.implied_vector_cost(s000)

    fitted, implied = benchmark(figure)
    print_once("e2", run_e2().to_text())
    # The fitted block cost approximates the measurement-implied cost,
    # which is the slide's whole point (2.76 fitted vs 2.89 measured).
    assert fitted > 0
    assert abs(fitted - implied) / implied < 0.6
