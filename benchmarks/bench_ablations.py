"""Ablation benches for the reproduction's design choices.

Each bench quantifies one decision DESIGN.md commits to:

* feature altitude — IR-level counts (where LLVM's cost model runs)
  vs machine-lowered counts (post-scalarization);
* feature sets — counts vs rated vs extended (the paper's "next
  steps" features: VF, intensity, block shares, scalar composition);
* measurement jitter — fitted-model quality as a function of the
  simulated noise level;
* branch-probability profiling — measured guard weights vs the flat
  50% assumption in the scalar baseline.
"""

import numpy as np
import pytest

from repro.costmodel import (
    ExtendedSpeedupModel,
    RatedSpeedupModel,
    SpeedupModel,
    predict_all,
    rated,
)
from repro.experiments import ARM_LLV, DatasetSpec, build_dataset
from repro.experiments.reporting import ascii_table
from repro.fitting import LeastSquares, NonNegativeLeastSquares
from repro.validation import evaluate, pearson

from conftest import print_once


def test_bench_feature_altitude(benchmark, arm_dataset):
    """IR-level vs machine-lowered features for the rated model."""
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def fit_both():
        ir_model = RatedSpeedupModel(LeastSquares()).fit(samples)
        lowered = SpeedupModel(
            LeastSquares(),
            feature_fn=lambda s: rated(s.lowered_features),
            label="rated-lowered",
        ).fit(samples)
        return (
            pearson(predict_all(ir_model, samples), measured),
            pearson(predict_all(lowered, samples), measured),
        )

    ir_r, lowered_r = benchmark(fit_both)
    print_once(
        "ablation-altitude",
        f"feature altitude: IR-level r={ir_r:.3f}  machine-lowered r={lowered_r:.3f}",
    )
    # Both work — the machine stream carries the same information in a
    # different encoding — but the IR-level features must be at least
    # competitive, since they are what the paper's models consume.
    assert ir_r > 0.6
    assert abs(ir_r - lowered_r) < 0.25


def test_bench_feature_sets(benchmark, arm_dataset):
    """counts → rated → extended must be monotonically better (L2)."""
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def fit_ladder():
        out = {}
        for label, model in (
            ("counts", SpeedupModel(LeastSquares())),
            ("rated", RatedSpeedupModel(LeastSquares())),
            ("extended", ExtendedSpeedupModel(LeastSquares())),
        ):
            model.fit(samples)
            out[label] = evaluate(label, predict_all(model, samples), measured)
        return out

    reports = benchmark(fit_ladder)
    rows = [r.row() for r in reports.values()]
    print_once("ablation-features", ascii_table(rows, title="Feature-set ladder (ARM, L2)"))
    assert reports["rated"].pearson > reports["counts"].pearson
    assert reports["extended"].pearson > reports["rated"].pearson


def test_bench_jitter_sensitivity(benchmark):
    """Model quality vs measurement-noise level."""

    def sweep():
        out = {}
        for sigma in (0.0, 0.02, 0.10):
            ds = build_dataset(DatasetSpec("armv8-neon", "llv", jitter=sigma))
            model = RatedSpeedupModel(NonNegativeLeastSquares()).fit(ds.samples)
            out[sigma] = pearson(predict_all(model, ds.samples), ds.measured)
        return out

    rs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_once(
        "ablation-jitter",
        "jitter sensitivity (rated-NNLS r): "
        + ", ".join(f"σ={s:g}: {r:.3f}" for s, r in rs.items()),
    )
    # Clean measurements fit best; 2% noise costs little; 10% hurts.
    assert rs[0.0] >= rs[0.10] - 0.02
    assert rs[0.02] > 0.6


def test_bench_guard_probability_profiling(benchmark):
    """Measured branch weights vs the flat 50% default."""
    from repro.codegen import lower_scalar
    from repro.sim import analyze_stream, estimate_guard_probs
    from repro.targets import ARMV8_NEON
    from repro.tsvc import get_kernel

    kern = get_kernel("s1279")  # nested guards, ~25% inner density

    def both():
        probs = estimate_guard_probs(kern)
        profiled = analyze_stream(
            lower_scalar(kern, ARMV8_NEON, guard_probs=probs), ARMV8_NEON
        ).per_iter
        flat = analyze_stream(
            lower_scalar(kern, ARMV8_NEON, guard_probs={}), ARMV8_NEON
        ).per_iter
        return profiled, flat

    profiled, flat = benchmark(both)
    print_once(
        "ablation-guards",
        f"s1279 scalar cycles/iter: profiled={profiled:.3f} flat-50%={flat:.3f}",
    )
    # Profiling moves the estimate: with this data the nested branch is
    # taken ~33% jointly (0.45 × 0.73), not the flat 25%, so the flat
    # assumption *underestimates* the scalar cost here.
    assert profiled != pytest.approx(flat)
    probs = estimate_guard_probs(kern)
    joint = probs[0] * probs[1]
    assert 0.15 < joint < 0.6  # sanity on the measured branch density
