"""Micro-benchmarks of the pipeline stages themselves.

These are not paper figures; they track the library's own performance:
suite construction, vectorization, lowering, timing analysis, the
functional executors, fitting, and full dataset builds.
"""

import pytest

from repro.codegen import lower_scalar, lower_vector
from repro.costmodel import RatedSpeedupModel, SpeedupModel
from repro.fitting import LeastSquares, LinearSVR, NonNegativeLeastSquares
from repro.sim import analyze_stream, make_buffers, measure_kernel, run_scalar, run_vector
from repro.targets import ARMV8_NEON
from repro.tsvc import Dims, all_kernels, get_kernel
from repro.validation import loocv_predictions
from repro.vectorize import vectorize_loop

SMALL = Dims(n=240, n2=16)


def test_bench_suite_build(benchmark):
    """Construct + verify all 151 TSVC kernels (fresh dims defeat the cache)."""
    counter = [0]

    def build_suite():
        counter[0] += 8
        dims = Dims(n=960 + counter[0], n2=16)
        return sum(1 for _ in all_kernels(dims))

    n = benchmark(build_suite)
    assert n == 151


def test_bench_vectorize_suite(benchmark):
    kernels = list(all_kernels())

    def sweep():
        return sum(
            1
            for k in kernels
            if not hasattr(vectorize_loop(k, ARMV8_NEON), "reason")
        )

    ok = benchmark(sweep)
    assert ok > 75


def test_bench_lower_and_time(benchmark):
    kern = get_kernel("vbor")
    plan = vectorize_loop(kern, ARMV8_NEON)

    def lower():
        s = lower_scalar(kern, ARMV8_NEON)
        v = lower_vector(plan, ARMV8_NEON)
        return analyze_stream(s, ARMV8_NEON).total, analyze_stream(v, ARMV8_NEON).total

    sc, vc = benchmark(lower)
    assert sc > vc > 0


def test_bench_measure_kernel(benchmark):
    kern = get_kernel("s273")  # guarded: includes prob estimation

    def measure():
        return measure_kernel(kern, ARMV8_NEON).speedup

    speedup = benchmark(measure)
    assert speedup > 1.0


def test_bench_scalar_executor(benchmark):
    kern = get_kernel("s000", SMALL)

    def run():
        bufs = make_buffers(kern, seed=0)
        run_scalar(kern, bufs)
        return bufs["a"][0]

    benchmark(run)


def test_bench_vector_executor(benchmark):
    kern = get_kernel("s000", SMALL)
    plan = vectorize_loop(kern, ARMV8_NEON)

    def run():
        bufs = make_buffers(kern, seed=0)
        run_vector(plan, bufs)
        return bufs["a"][0]

    benchmark(run)


@pytest.mark.parametrize(
    "reg_cls", [LeastSquares, NonNegativeLeastSquares, LinearSVR]
)
def test_bench_fitting(benchmark, arm_dataset, reg_cls):
    samples = arm_dataset.samples

    def fit():
        return SpeedupModel(reg_cls()).fit(samples).weights.sum()

    benchmark(fit)


def test_bench_loocv(benchmark, arm_dataset):
    samples = arm_dataset.samples

    def loocv():
        return loocv_predictions(
            lambda: RatedSpeedupModel(NonNegativeLeastSquares()), samples
        )

    preds = benchmark(loocv)
    assert len(preds) == len(samples)


def test_bench_loocv_l2_fast_path(benchmark, arm_dataset):
    """Hat-matrix LOOCV: one factorization instead of N refits."""
    samples = arm_dataset.samples

    def loocv():
        return loocv_predictions(
            lambda: RatedSpeedupModel(LeastSquares()), samples
        )

    preds = benchmark(loocv)
    assert len(preds) == len(samples)


def test_bench_fingerprint(benchmark):
    from repro.pipeline import measurement_fingerprint

    kern = get_kernel("s273")

    def fingerprint():
        return measurement_fingerprint(kern, "armv8-neon", "llv", 0.02, 0)

    fp = benchmark(fingerprint)
    assert len(fp) == 64


def test_bench_cache_roundtrip(benchmark, arm_dataset, tmp_path_factory):
    from repro.pipeline import MeasurementCache, measurement_fingerprint

    cache = MeasurementCache(root=tmp_path_factory.mktemp("micro-cache"))
    kern = get_kernel("s000")
    fp = measurement_fingerprint(kern, "armv8-neon", "llv", 0.02, 0)
    payload = (arm_dataset.samples[0], None)

    def roundtrip():
        cache.put(fp, payload)
        return cache.get(fp)

    sample, reason = benchmark(roundtrip)
    assert reason is None and sample.name == "s000"
