"""E6 — conclusion metrics (paper slide 12): correlation up, false
predictions down, execution time down."""

from repro.costmodel import LLVMLikeCostModel, RatedSpeedupModel, predict_all
from repro.experiments.drivers import run_e6
from repro.fitting import NonNegativeLeastSquares
from repro.validation import (
    confusion,
    oracle_cycles,
    pearson,
    policy_cycles,
)

from conftest import print_once


def test_bench_e6(benchmark, arm_dataset):
    samples = arm_dataset.samples
    measured = arm_dataset.measured

    def figure():
        base = LLVMLikeCostModel()
        base_preds = predict_all(base, samples)
        rated = RatedSpeedupModel(NonNegativeLeastSquares()).fit(samples)
        rated_preds = predict_all(rated, samples)
        return {
            "base_r": pearson(base_preds, measured),
            "rated_r": pearson(rated_preds, measured),
            "base_false": confusion(base_preds, measured).false_predictions,
            "rated_false": confusion(rated_preds, measured).false_predictions,
            "base_cycles": policy_cycles(samples, base_preds).cycles,
            "rated_cycles": policy_cycles(samples, rated_preds).cycles,
            "oracle_cycles": oracle_cycles(samples).cycles,
        }

    m = benchmark(figure)
    print_once("e6", run_e6().to_text())
    # The three conclusion claims:
    assert m["rated_r"] > m["base_r"]                      # correlation ↑
    assert m["rated_false"] <= m["base_false"]             # false preds ↓
    assert m["rated_cycles"] <= m["base_cycles"] + 1e-9    # exec time ↓
    assert m["oracle_cycles"] <= m["rated_cycles"] + 1e-9
