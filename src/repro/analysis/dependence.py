"""Dependence analysis for innermost-loop vectorization.

The legality question the paper's setup asks ("is it possible to
vectorize?") reduces, for these kernels, to memory dependences carried
by the innermost loop plus scalar recurrences (handled separately in
:mod:`repro.analysis.reduction`).

We use the classical affine test on linearized subscripts.  For two
accesses ``B1*v + C1`` and ``B2*v + C2`` (``v`` = innermost variable,
outer variables already required to contribute identically):

* ``B1 != B2`` → distance varies with ``v`` → conservatively unknown;
* ``B == 0``  → both invariant: conflict iff ``C1 == C2`` (every
  iteration, distance "all");
* else ``d = (C_src - C_sink)/B`` — integral ``d`` gives the carried
  distance, non-integral means independence.

Safety for a given VF follows LLVM LoopAccessAnalysis: a carried
dependence is safe when the *earlier-in-time* access is also earlier in
program order (a "forward" dependence — vector execution preserves
statement order, so all lanes of the source complete first), or when
its distance is at least VF.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from ..ir.kernel import LoopKernel
from .access import AccessInfo, collect_accesses, linearize


class DepKind(enum.Enum):
    FLOW = "flow"      # write → read
    ANTI = "anti"      # read → write
    OUTPUT = "output"  # write → write


class DepStatus(enum.Enum):
    #: Provably independent (or dependence not carried by the inner loop).
    NONE = "none"
    #: Carried dependence with known distance — safe iff forward or VF <= dist.
    CARRIED = "carried"
    #: Distance unknown (indirect, mismatched coefficients, invariant conflict).
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Dependence:
    """A dependence between two accesses of the same array.

    ``src`` is the access that executes earlier in the scalar schedule;
    ``distance`` is in innermost-loop iterations (None when unknown,
    0 means intra-iteration).  ``forward`` is True when the source is
    also earlier in program order.
    """

    array: str
    kind: DepKind
    src: AccessInfo
    sink: AccessInfo
    distance: Optional[int]
    status: DepStatus

    @property
    def forward(self) -> bool:
        return self.src.pos < self.sink.pos

    def safe_for_vf(self, vf: int) -> bool:
        if self.status is DepStatus.NONE:
            return True
        if self.status is DepStatus.UNKNOWN:
            return False
        assert self.distance is not None
        if self.distance == 0:
            # Intra-iteration dependences are honored by in-order
            # statement-at-a-time vector execution.
            return True
        return self.forward or self.distance >= vf

    def __str__(self) -> str:
        d = "?" if self.distance is None else str(self.distance)
        f = "fwd" if self.forward else "bwd"
        return f"{self.kind.value} dep on {self.array}, distance {d} ({f})"


@dataclass
class DependenceInfo:
    """All pairwise dependences of a kernel plus summary queries."""

    kernel: LoopKernel
    dependences: list[Dependence]

    def max_safe_vf(self) -> float:
        """Largest VF for which all memory dependences are safe.

        Returns ``math.inf`` when nothing constrains the VF and 1 when
        the loop cannot be vectorized at all (VF 2 already unsafe).
        """
        bound = math.inf
        for dep in self.dependences:
            if dep.status is DepStatus.UNKNOWN:
                return 1
            if dep.status is DepStatus.CARRIED and not dep.forward:
                assert dep.distance is not None
                if dep.distance > 0:
                    bound = min(bound, dep.distance)
        return bound if bound > 1 else 1

    def unsafe_for(self, vf: int) -> list[Dependence]:
        return [d for d in self.dependences if not d.safe_for_vf(vf)]


def analyze_dependences(kernel: LoopKernel) -> DependenceInfo:
    accesses = collect_accesses(kernel)
    deps: list[Dependence] = []
    by_array: dict[str, list[AccessInfo]] = {}
    for acc in accesses:
        by_array.setdefault(acc.array, []).append(acc)

    for array, accs in by_array.items():
        for i, a in enumerate(accs):
            for b in accs[i + 1 :]:
                if not (a.is_store or b.is_store):
                    continue
                dep = _test_pair(kernel, array, a, b)
                if dep is not None:
                    deps.append(dep)
    return DependenceInfo(kernel, deps)


def _dep_kind(src: AccessInfo, sink: AccessInfo) -> DepKind:
    if src.is_store and sink.is_store:
        return DepKind.OUTPUT
    if src.is_store:
        return DepKind.FLOW
    return DepKind.ANTI


def _test_pair(
    kernel: LoopKernel, array: str, a: AccessInfo, b: AccessInfo
) -> Optional[Dependence]:
    depth = kernel.depth
    inner = kernel.inner_level
    lin_a = linearize(a.decl, a.subscript, depth)
    lin_b = linearize(b.decl, b.subscript, depth)

    if lin_a is None or lin_b is None:
        # Indirect subscript on a conflicting array — distance unknown.
        src, sink = (a, b) if a.pos <= b.pos else (b, a)
        return Dependence(array, _dep_kind(src, sink), src, sink, None, DepStatus.UNKNOWN)

    # Outer-loop contributions must be identical for the accesses to be
    # able to alias within one inner-loop instance.
    for lvl in range(depth):
        if lvl == inner:
            continue
        if lin_a.coeff(lvl) != lin_b.coeff(lvl):
            src, sink = (a, b) if a.pos <= b.pos else (b, a)
            return Dependence(
                array, _dep_kind(src, sink), src, sink, None, DepStatus.UNKNOWN
            )

    ca, cb = lin_a.coeff(inner), lin_b.coeff(inner)
    if ca != cb:
        # Distance varies with the iteration (e.g. a[i] vs a[2*i]).
        src, sink = (a, b) if a.pos <= b.pos else (b, a)
        return Dependence(array, _dep_kind(src, sink), src, sink, None, DepStatus.UNKNOWN)

    if ca == 0:
        if lin_a.offset == lin_b.offset:
            # The same location is touched every iteration.
            src, sink = (a, b) if a.pos <= b.pos else (b, a)
            return Dependence(
                array, _dep_kind(src, sink), src, sink, None, DepStatus.UNKNOWN
            )
        return None  # distinct invariant locations

    delta = lin_a.offset - lin_b.offset
    if delta % ca != 0:
        return None  # never alias (ZIV/strong-SIV independence)
    # Access a at iteration t touches the location that access b touches
    # at iteration t + d.
    d = delta // ca
    if d == 0:
        src, sink = (a, b) if a.pos <= b.pos else (b, a)
        return Dependence(array, _dep_kind(src, sink), src, sink, 0, DepStatus.CARRIED)
    if d > 0:
        # a touches a given location d iterations before b does.
        src, sink = a, b
    else:
        src, sink = b, a
        d = -d
    return Dependence(array, _dep_kind(src, sink), src, sink, d, DepStatus.CARRIED)
