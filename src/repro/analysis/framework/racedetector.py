"""Dependence race detector: distance/direction vectors + remarks.

Refines :mod:`repro.analysis.dependence` into per-loop-level
distance/direction vectors (the classical ``(=, <)`` notation) and, for
each vectorization factor, produces a remark that names the *exact*
pair of accesses — array, subscripts, statements — that blocks it.
This is the machinery behind ``-Rpass-missed=loop-vectorize``-style
output ("loop not vectorized: unsafe dependent memory operation"), and
what :mod:`repro.vectorize.legality` consumes instead of re-walking
dependences itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ...ir.kernel import LoopKernel
from ..access import AccessInfo, linearize
from ..dependence import Dependence, DependenceInfo, DepStatus
from .diagnostics import Remark, Severity
from .passmanager import AnalysisManager, AnalysisPass, register_pass
from .passes import DependencePass


class Direction(enum.Enum):
    """Dependence direction at one loop level (src iteration vs sink's)."""

    LT = "<"   # carried: the source iteration precedes the sink's
    EQ = "="   # loop-independent at this level
    GT = ">"   # source follows sink (normalized away for the inner level)
    ANY = "*"  # unknown


@dataclass(frozen=True)
class DependenceVector:
    """Per-level distances and directions, outermost level first."""

    distances: tuple[Optional[int], ...]
    directions: tuple[Direction, ...]

    def __str__(self) -> str:
        dirs = ", ".join(d.value for d in self.directions)
        dists = ", ".join("?" if d is None else str(d) for d in self.distances)
        return f"direction ({dirs}), distance ({dists})"


@dataclass(frozen=True)
class Race:
    """One refined dependence: the pair of accesses plus its vector."""

    dep: Dependence
    vector: DependenceVector
    src_stmt: int
    sink_stmt: int

    @property
    def array(self) -> str:
        return self.dep.array

    def blocks_vf(self, vf: int) -> bool:
        return not self.dep.safe_for_vf(vf)

    def describe(self) -> str:
        """Human text naming the exact access pair, LLVM-remark style."""
        src, sink = self.dep.src, self.dep.sink
        return (
            f"{self.dep.kind.value} dependence on '{self.array}' between "
            f"{_access_text(src)} (S{self.src_stmt}) and "
            f"{_access_text(sink)} (S{self.sink_stmt}), {self.vector}"
        )


def _access_text(acc: AccessInfo) -> str:
    idx = "][".join(str(ix) for ix in acc.subscript)
    op = "store" if acc.is_store else "load"
    return f"{op} {acc.array}[{idx}]"


@dataclass
class RaceReport:
    """All refined dependences of a kernel plus per-VF queries."""

    kernel: LoopKernel
    dep_info: DependenceInfo
    races: list[Race]

    def blocking(self, vf: int) -> list[Race]:
        return [r for r in self.races if r.blocks_vf(vf)]

    def max_safe_vf(self) -> float:
        return self.dep_info.max_safe_vf()

    def remarks(self, vf: int) -> list[Remark]:
        """One structured remark per dependence that blocks ``vf``."""
        out = []
        for race in self.blocking(vf):
            dep = race.dep
            why = (
                "runtime-unknown dependence distance"
                if dep.status is DepStatus.UNKNOWN
                else f"backward carried dependence, distance {dep.distance} < VF {vf}"
            )
            out.append(
                Remark(
                    severity=Severity.REMARK,
                    pass_name="race-detector",
                    kernel=self.kernel.name,
                    message=f"blocks VF {vf}: {race.describe()} ({why})",
                    stmt_index=race.sink_stmt,
                    stmt=_access_text(dep.sink),
                    args=(
                        ("array", dep.array),
                        ("kind", dep.kind.value),
                        ("src", _access_text(dep.src)),
                        ("sink", _access_text(dep.sink)),
                        ("src_stmt", str(race.src_stmt)),
                        ("sink_stmt", str(race.sink_stmt)),
                        ("distance", "?" if dep.distance is None else str(dep.distance)),
                        ("direction", "".join(d.value for d in race.vector.directions)),
                        ("vf", str(vf)),
                    ),
                )
            )
        return out


@register_pass
class RacePass(AnalysisPass):
    """Builds the :class:`RaceReport` on top of the cached dependences."""

    name = "race-detector"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> RaceReport:
        dep_info: DependenceInfo = am.get(DependencePass, kernel)
        races = [_refine(kernel, dep) for dep in dep_info.dependences]
        return RaceReport(kernel, dep_info, races)


def _refine(kernel: LoopKernel, dep: Dependence) -> Race:
    """Attach a per-level distance/direction vector to one dependence."""
    depth = kernel.depth
    inner = kernel.inner_level
    lin_src = linearize(dep.src.decl, dep.src.subscript, depth)
    lin_sink = linearize(dep.sink.decl, dep.sink.subscript, depth)
    distances: list[Optional[int]] = []
    directions: list[Direction] = []
    for lvl in range(depth):
        if lvl == inner:
            d = dep.distance
            distances.append(d)
            if d is None:
                directions.append(Direction.ANY)
            elif d == 0:
                directions.append(Direction.EQ)
            else:
                directions.append(Direction.LT)
        elif (
            lin_src is None
            or lin_sink is None
            or lin_src.coeff(lvl) != lin_sink.coeff(lvl)
        ):
            # Indirect access or mismatched outer coefficients: the
            # dependence test gave up, so the level is unconstrained.
            distances.append(None)
            directions.append(Direction.ANY)
        else:
            # Equal outer contributions: the accesses can only alias
            # within the same outer iteration.
            distances.append(0)
            directions.append(Direction.EQ)
    return Race(
        dep=dep,
        vector=DependenceVector(tuple(distances), tuple(directions)),
        src_stmt=int(dep.src.pos),
        sink_stmt=int(dep.sink.pos),
    )


def analyze_races(
    kernel: LoopKernel, manager: Optional[AnalysisManager] = None
) -> RaceReport:
    """Convenience entry point (uses the default manager)."""
    from .passmanager import default_manager

    am = manager if manager is not None else default_manager()
    return am.get(RacePass, kernel)


__all__ = [
    "Direction",
    "DependenceVector",
    "Race",
    "RaceReport",
    "RacePass",
    "analyze_races",
]
