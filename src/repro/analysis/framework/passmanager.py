"""Analysis pass manager: registered passes, cached results, invalidation.

The manager mirrors LLVM's new-PM ``AnalysisManager``: passes are lazy
(``get`` runs a pass only on a cache miss), results are cached per
kernel, and a pass that queries another pass during its ``run`` records
a dependency edge so invalidating an analysis cascades to everything
built on top of it.

Kernels are keyed by object identity (``LoopKernel`` holds dicts and is
not hashable); each cache entry pins the kernel object so its id cannot
be recycled while the entry is alive, and entries are LRU-bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Union

from ...ir.kernel import LoopKernel
from .diagnostics import Diagnostics


class AnalysisPass:
    """Base class: a named, cacheable analysis over one kernel.

    Subclasses set ``name`` and implement ``run``.  A pass may request
    other passes' results through the manager (``am.get(Other,
    kernel)``); the manager records the edge for invalidation.
    """

    #: Unique pass name; doubles as the ``-Rpass=<name>`` tag.
    name: str = "?"

    def run(self, kernel: LoopKernel, am: "AnalysisManager"):
        raise NotImplementedError


#: Global registry: pass name -> singleton instance.
PASS_REGISTRY: dict[str, AnalysisPass] = {}


def register_pass(cls: type[AnalysisPass]) -> type[AnalysisPass]:
    """Class decorator adding a singleton of ``cls`` to the registry."""
    if cls.name in PASS_REGISTRY and type(PASS_REGISTRY[cls.name]) is not cls:
        raise ValueError(f"duplicate analysis pass name {cls.name!r}")
    PASS_REGISTRY[cls.name] = cls()
    return cls


def _resolve(pass_ref: Union[str, AnalysisPass, type[AnalysisPass]]) -> AnalysisPass:
    if isinstance(pass_ref, str):
        try:
            return PASS_REGISTRY[pass_ref]
        except KeyError:
            raise KeyError(
                f"unknown analysis pass {pass_ref!r}; known: {sorted(PASS_REGISTRY)}"
            ) from None
    if isinstance(pass_ref, AnalysisPass):
        return pass_ref
    if isinstance(pass_ref, type) and issubclass(pass_ref, AnalysisPass):
        return PASS_REGISTRY.get(pass_ref.name) or pass_ref()
    raise TypeError(f"not an analysis pass: {pass_ref!r}")


@dataclass
class ManagerStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def __str__(self) -> str:
        return (
            f"analysis cache: {self.hits} hits, {self.misses} misses, "
            f"{self.invalidations} invalidations"
        )


@dataclass
class _KernelEntry:
    kernel: LoopKernel  # pins id(kernel) while the entry lives
    results: dict[str, object] = field(default_factory=dict)
    #: inner pass name -> names of passes whose run() queried it.
    dependents: dict[str, set[str]] = field(default_factory=dict)


class AnalysisManager:
    """Caches pass results per kernel with dependency-aware invalidation."""

    def __init__(
        self,
        diagnostics: Optional[Diagnostics] = None,
        max_kernels: int = 1024,
    ):
        self.diagnostics = diagnostics if diagnostics is not None else Diagnostics()
        self.max_kernels = max_kernels
        self.stats = ManagerStats()
        self._entries: "OrderedDict[int, _KernelEntry]" = OrderedDict()
        #: stack of pass names currently running (for dependency edges).
        self._running: list[str] = []

    # -- core API -----------------------------------------------------------

    def get(self, pass_ref, kernel: LoopKernel):
        """The result of ``pass_ref`` on ``kernel``, running it if needed."""
        pas = _resolve(pass_ref)
        entry = self._entry(kernel)
        if self._running:
            entry.dependents.setdefault(pas.name, set()).add(self._running[-1])
        if pas.name in entry.results:
            self.stats.hits += 1
            return entry.results[pas.name]
        self.stats.misses += 1
        self._running.append(pas.name)
        try:
            result = pas.run(kernel, self)
        finally:
            self._running.pop()
        entry.results[pas.name] = result
        return result

    def cached(self, pass_ref, kernel: LoopKernel):
        """The cached result, or None without running anything."""
        pas = _resolve(pass_ref)
        entry = self._entries.get(id(kernel))
        return entry.results.get(pas.name) if entry is not None else None

    def run_pipeline(self, kernel: LoopKernel, passes) -> dict[str, object]:
        """Run ``passes`` in order (dependencies auto-satisfied first)."""
        return {(_resolve(p)).name: self.get(p, kernel) for p in passes}

    # -- invalidation --------------------------------------------------------

    def invalidate(
        self,
        kernel: Optional[LoopKernel] = None,
        pass_ref=None,
    ) -> int:
        """Drop cached results; returns the number of results dropped.

        ``kernel=None`` clears everything; ``pass_ref=None`` clears all
        passes of the kernel.  Invalidating one pass cascades to every
        pass that (transitively) consumed its result.
        """
        if kernel is None:
            dropped = sum(len(e.results) for e in self._entries.values())
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped
        entry = self._entries.get(id(kernel))
        if entry is None:
            return 0
        if pass_ref is None:
            dropped = len(entry.results)
            del self._entries[id(kernel)]
            self.stats.invalidations += dropped
            return dropped
        doomed: set[str] = set()
        frontier = [_resolve(pass_ref).name]
        while frontier:
            name = frontier.pop()
            if name in doomed:
                continue
            doomed.add(name)
            frontier.extend(entry.dependents.get(name, ()))
        dropped = 0
        for name in doomed:
            if name in entry.results:
                del entry.results[name]
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    # -- internals -----------------------------------------------------------

    def _entry(self, kernel: LoopKernel) -> _KernelEntry:
        key = id(kernel)
        entry = self._entries.get(key)
        if entry is None:
            entry = _KernelEntry(kernel)
            self._entries[key] = entry
            while len(self._entries) > self.max_kernels:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        return entry


_DEFAULT: Optional[AnalysisManager] = None


def default_manager() -> AnalysisManager:
    """The process-wide manager shared by legality, the pipeline, and CLI."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = AnalysisManager()
    return _DEFAULT


def reset_default_manager() -> None:
    """Drop the process-wide manager (tests and long-lived services)."""
    global _DEFAULT
    _DEFAULT = None
