"""Range-analysis pass family: bounds proofs, guard verdicts, safety.

Three registered passes layered on the interval engine in
:mod:`repro.analysis.ranges`, mirroring how LLVM's vectorizer consumes
ValueTracking/ScalarEvolution facts:

* :class:`ValueRangePass` (``ranges``) — the fixpoint interval analysis
  itself, computed twice: once seeding scalars from their declared
  initial values (true for the measurement harness) and once from their
  dtype tops (true for *any* caller-supplied scalars).  Transforms may
  only consume the second, "pure" result; the executors accept scalar
  overrides, so a fold justified by an init value could silently change
  an overridden run.
* :class:`BoundsCheckPass` (``bounds``) — per access dimension: the
  static index range, whether it is proven inside ``[0, extent)`` (raw
  unguarded codegen is legal), whether it at least stays in ``[-extent,
  extent)`` (wrap-legal: negative indices alias valid elements in every
  tier, so the access cannot fault), and — for gather/scatter — whether
  the proof leans on the **harness data contract**: ``make_buffers``
  fills integer arrays with ``permutation(n) % min_extent``, so index-
  array *contents* are in ``[0, min_extent)``.  Contract-contingent
  proofs are sound for measurement buffers only; the native tier guards
  them with a runtime contract scan before taking the unguarded body.
* :class:`GuardRangePass` (``guard-range``) — guards proven always/
  never taken (with a separate fold-safe subset whose conditions are
  side-effect-free: no sqrt-counter, no possibly-faulting load), and
  shift nodes whose count is proven inside the operand width so the
  native tier can drop its guarded-shift wrappers.

:func:`prove_safe` is the kernel-validator API built on top — it
classifies a kernel as ``proven-safe`` / ``proven-unsafe`` / ``unknown``
— and :func:`crosscheck_kernel` replays every static claim against
concrete execution (address evaluation over the real iteration space
plus the dynamic dependence sanitizer); any disagreement means one side
is wrong and is reported as a contradiction.

``REPRO_RANGES=0`` disables every codegen consumer (the analyses still
run for reporting); see :func:`ranges_enabled`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...ir.expr import (
    Affine,
    BinOp,
    BinOpKind,
    Expr,
    Indirect,
    Load,
    UnOp,
    UnOpKind,
)
from ...ir.kernel import LoopKernel
from ...ir.stmt import ArrayStore, IfBlock, Stmt
from ...ir.types import DType
from ..ranges import Interval, KernelRanges, affine_interval, analyze_ranges
from .diagnostics import Remark, Severity
from .passmanager import AnalysisManager, AnalysisPass, default_manager, register_pass
from .passes import stmt_list

PASS_BOUNDS = "bounds"
PASS_GUARD = "guard-range"


def ranges_enabled() -> bool:
    """Whether codegen may consume range proofs (``REPRO_RANGES`` != 0)."""
    return os.environ.get("REPRO_RANGES", "1") != "0"


# ---------------------------------------------------------------------------
# ValueRangePass
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangesResult:
    """Both fixpoints of one kernel (see module doc).

    ``harness`` assumes declared scalar inits; ``pure`` holds for any
    scalar values and is the only legal input to transforms.
    """

    harness: KernelRanges
    pure: KernelRanges


@register_pass
class ValueRangePass(AnalysisPass):
    name = "ranges"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> RangesResult:
        return RangesResult(
            harness=analyze_ranges(kernel, assume_inits=True),
            pure=analyze_ranges(kernel, assume_inits=False),
        )


# ---------------------------------------------------------------------------
# BoundsCheckPass
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessBounds:
    """Verdict for one subscript dimension of one array access."""

    stmt_index: int
    array: str
    dim: int
    kind: str  # "affine" | "gather" | "scatter"
    index: str
    lo: float
    hi: float
    extent: int
    proven: bool  # index ∈ [0, extent): raw unguarded emission legal
    wrap_legal: bool  # index ∈ [-extent, extent): cannot fault
    contingent: bool  # proof relies on the harness data contract
    guarded: bool  # access sits under at least one IfBlock

    def to_dict(self) -> dict:
        return {
            "stmt_index": self.stmt_index,
            "array": self.array,
            "dim": self.dim,
            "kind": self.kind,
            "index": self.index,
            "range": [self.lo, self.hi],
            "extent": self.extent,
            "proven": self.proven,
            "wrap_legal": self.wrap_legal,
            "contingent": self.contingent,
            "guarded": self.guarded,
        }


@dataclass(frozen=True)
class BoundsInfo:
    kernel: str
    #: Content bounds [lo, hi] of integer arrays under the harness data
    #: contract (None when the kernel has no arrays).
    contract: Optional[tuple[int, int]]
    accesses: tuple[AccessBounds, ...]
    #: (id(Indirect), target_array, dim) triples proven under contract.
    _proven_indirect: frozenset = field(default_factory=frozenset)
    remarks: tuple[Remark, ...] = ()

    def indirect_proven(self, ix: Indirect, array: str, dim: int) -> bool:
        """Whether this gather/scatter dim is contract-proven in-bounds."""
        return (id(ix), array, dim) in self._proven_indirect

    @property
    def gathers_total(self) -> int:
        return sum(1 for a in self.accesses if a.kind != "affine")

    @property
    def gathers_proven(self) -> int:
        return sum(1 for a in self.accesses if a.kind != "affine" and a.proven)

    @property
    def all_proven(self) -> bool:
        return all(a.proven for a in self.accesses)

    @property
    def all_wrap_legal(self) -> bool:
        return all(a.wrap_legal for a in self.accesses)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "contract": list(self.contract) if self.contract else None,
            "accesses": [a.to_dict() for a in self.accesses],
            "gathers_total": self.gathers_total,
            "gathers_proven": self.gathers_proven,
        }


def _harness_contract(kernel: LoopKernel) -> Optional[tuple[int, int]]:
    """Integer-array content bounds guaranteed by ``make_buffers``."""
    if not kernel.arrays:
        return None
    min_len = min(
        int(np.prod(decl.extents)) for decl in kernel.arrays.values()
    )
    return (0, min_len - 1)


@register_pass
class BoundsCheckPass(AnalysisPass):
    name = PASS_BOUNDS

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> BoundsInfo:
        ranges: RangesResult = am.get(ValueRangePass, kernel)
        trips = [lp.trip for lp in kernel.loops]
        contract = _harness_contract(kernel)
        verdicts: list[AccessBounds] = []
        proven_ind: set = set()
        remarks: list[Remark] = []

        def classify(
            ix, array: str, dim: int, stmt_index: int, is_store: bool, guarded: bool
        ) -> None:
            ext = kernel.arrays[array].extents[dim]
            if isinstance(ix, Affine):
                lo, hi = affine_interval(ix, trips)
                verdicts.append(
                    AccessBounds(
                        stmt_index=stmt_index,
                        array=array,
                        dim=dim,
                        kind="affine",
                        index=str(ix),
                        lo=lo,
                        hi=hi,
                        extent=ext,
                        proven=0 <= lo and hi < ext,
                        wrap_legal=-ext <= lo and hi < ext,
                        contingent=False,
                        guarded=guarded,
                    )
                )
                return
            assert isinstance(ix, Indirect)
            idx_decl = kernel.arrays[ix.array]
            if len(idx_decl.extents) == 1:
                # The index-array read is itself an affine access and
                # gets its own verdict: raw emission of a gather needs
                # both legs (the read in bounds, the contents in bounds).
                classify(ix.index, ix.array, 0, stmt_index, False, guarded)
            # Below we bound the *content* feeding the target access.
            # Purely, contents are only dtype-bounded; the harness
            # contract tightens them to [0, min_extent).
            ilo, ihi = affine_interval(ix.index, trips)
            idx_ext = int(np.prod(idx_decl.extents))
            index_read_safe = -idx_ext <= ilo and ihi < idx_ext
            if contract is not None and index_read_safe:
                clo, chi = contract
            else:
                top = Interval.top(idx_decl.dtype)
                clo, chi = top.lo, top.hi
            proven = contract is not None and index_read_safe and chi < ext
            kind = "scatter" if is_store else "gather"
            verdicts.append(
                AccessBounds(
                    stmt_index=stmt_index,
                    array=array,
                    dim=dim,
                    kind=kind,
                    index=str(ix),
                    lo=clo,
                    hi=chi,
                    extent=ext,
                    proven=proven,
                    wrap_legal=proven,  # contents could be anything otherwise
                    contingent=proven,
                    guarded=guarded,
                )
            )
            if proven:
                proven_ind.add((id(ix), array, dim))
                remarks.append(
                    Remark(
                        severity=Severity.REMARK,
                        pass_name=PASS_BOUNDS,
                        kernel=kernel.name,
                        message=(
                            f"{kind} {array}[{ix}] at S{stmt_index} proven "
                            f"in bounds [0, {ext}): index-array contents are "
                            f"in [0, {chi + 1}) by the harness data contract"
                        ),
                        stmt_index=stmt_index,
                        stmt=str(ix),
                        args=(
                            ("array", array),
                            ("kind", kind),
                            ("extent", str(ext)),
                            ("contingent", "true"),
                        ),
                    )
                )

        def walk(stmts: tuple[Stmt, ...], counter: list[int], depth: int) -> None:
            for stmt in stmts:
                idx = counter[0]
                counter[0] += 1
                for root in stmt.exprs():
                    for node in root.walk():
                        if isinstance(node, Load):
                            for d, ix in enumerate(node.subscript):
                                classify(ix, node.array, d, idx, False, depth > 0)
                if isinstance(stmt, ArrayStore):
                    for d, ix in enumerate(stmt.subscript):
                        classify(ix, stmt.array, d, idx, True, depth > 0)
                if isinstance(stmt, IfBlock):
                    walk(stmt.then_body, counter, depth + 1)
                    walk(stmt.else_body, counter, depth + 1)

        walk(kernel.body, [0], 0)
        del ranges  # dependency edge recorded; affine ranges are exact
        n_aff = sum(1 for v in verdicts if v.kind == "affine" and v.proven)
        if verdicts and all(v.proven for v in verdicts):
            remarks.append(
                Remark(
                    severity=Severity.REMARK,
                    pass_name=PASS_BOUNDS,
                    kernel=kernel.name,
                    message=(
                        f"all {len(verdicts)} access dimensions proven in "
                        f"bounds ({n_aff} affine, "
                        f"{len(verdicts) - n_aff} gather/scatter)"
                    ),
                    args=(("accesses", str(len(verdicts))),),
                )
            )
        return BoundsInfo(
            kernel=kernel.name,
            contract=contract,
            accesses=tuple(verdicts),
            _proven_indirect=frozenset(proven_ind),
            remarks=tuple(remarks),
        )


# ---------------------------------------------------------------------------
# GuardRangePass
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuardRangeInfo:
    kernel: str
    #: stmt index -> constant truth value, provable for any scalars.
    verdicts: dict[int, bool]
    #: provable only when scalars hold their declared inits (report-only).
    init_verdicts: dict[int, bool]
    #: id(IfBlock) -> value for the fold-safe subset (side-effect-free).
    _fold_by_id: dict[int, bool]
    #: id(BinOp) -> (lo, hi) of the shift count, pure fixpoint.
    _shift_counts: dict[int, tuple[float, float]]
    #: id(BinOp) of shift nodes whose lhs is proven nonnegative.
    _shift_lhs_nonneg: frozenset
    shift_total: int
    remarks: tuple[Remark, ...] = ()

    def fold_of(self, stmt: IfBlock) -> Optional[bool]:
        """Constant value to fold this guard's condition to, or None."""
        return self._fold_by_id.get(id(stmt))

    def shift_count_bounds(self, e: BinOp) -> Optional[tuple[float, float]]:
        return self._shift_counts.get(id(e))

    def shift_safe(self, e: BinOp, width: int) -> bool:
        """Whether the guarded-shift wrapper is redundant for ``e``:
        count proven in [0, width), and for SHL a nonnegative operand
        (left-shifting negatives is UB in C without the wrapper)."""
        bounds = self._shift_counts.get(id(e))
        if bounds is None or bounds[0] < 0 or bounds[1] >= width:
            return False
        if e.op is BinOpKind.SHL and id(e) not in self._shift_lhs_nonneg:
            return False
        return True

    @property
    def shifts_proven(self) -> int:
        return sum(
            1
            for lo, hi in self._shift_counts.values()
            if lo >= 0 and hi < 32  # conservative: narrowest wrapper width
        )

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "constant_guards": {
                str(k): v for k, v in sorted(self.verdicts.items())
            },
            "init_constant_guards": {
                str(k): v for k, v in sorted(self.init_verdicts.items())
            },
            "shifts_total": self.shift_total,
            "shifts_proven": self.shifts_proven,
        }


def _cond_side_effect_free(kernel: LoopKernel, cond: Expr, trips: list[int]) -> bool:
    """Whether skipping ``cond``'s evaluation is observationally safe.

    Folding a guard replaces the condition with a constant, so the
    condition expression stops being evaluated.  That is only sound
    when evaluation has no observable effect besides its value: no
    sqrt (the domain-guard fire counter is parity-checked across
    tiers), no gather (native counts OOB hits; a faulting index-array
    read must keep faulting), and no affine load that could fault.
    """
    for node in cond.walk():
        if isinstance(node, UnOp) and node.op is UnOpKind.SQRT:
            return False
        if isinstance(node, Load):
            for d, ix in enumerate(node.subscript):
                if not isinstance(ix, Affine):
                    return False
                ext = kernel.arrays[node.array].extents[d]
                lo, hi = affine_interval(ix, trips)
                if lo < -ext or hi >= ext:
                    return False
    return True


@register_pass
class GuardRangePass(AnalysisPass):
    name = PASS_GUARD

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> GuardRangeInfo:
        ranges: RangesResult = am.get(ValueRangePass, kernel)
        trips = [lp.trip for lp in kernel.loops]
        verdicts: dict[int, bool] = {}
        init_verdicts: dict[int, bool] = {}
        fold_by_id: dict[int, bool] = {}
        remarks: list[Remark] = []
        stmts = stmt_list(kernel)
        for idx, stmt in enumerate(stmts):
            if not isinstance(stmt, IfBlock):
                continue
            pure = ranges.pure.eval(stmt.cond, idx)
            if pure.definitely_true() or pure.definitely_false():
                value = pure.definitely_true()
                verdicts[idx] = value
                if _cond_side_effect_free(kernel, stmt.cond, trips):
                    fold_by_id[id(stmt)] = value
                    remarks.append(
                        Remark(
                            severity=Severity.REMARK,
                            pass_name=PASS_GUARD,
                            kernel=kernel.name,
                            message=(
                                f"guard at S{idx} proven always "
                                f"{'true' if value else 'false'}; compiled "
                                "tiers fold the condition to a constant"
                            ),
                            stmt_index=idx,
                            stmt=str(stmt.cond),
                            args=(("value", str(value).lower()), ("folded", "true")),
                        )
                    )
                continue
            har = ranges.harness.eval(stmt.cond, idx)
            if har.definitely_true() or har.definitely_false():
                # Holds for the declared scalar inits only — reported,
                # never folded (callers may override scalar values).
                init_verdicts[idx] = har.definitely_true()

        shift_counts: dict[int, tuple[float, float]] = {}
        lhs_nonneg: set[int] = set()
        shift_total = 0
        for idx, stmt in enumerate(stmts):
            for root in stmt.exprs():
                for node in root.walk():
                    if isinstance(node, BinOp) and node.op in (
                        BinOpKind.SHL,
                        BinOpKind.SHR,
                    ):
                        shift_total += 1
                        cnt = ranges.pure.eval(node.rhs, idx)
                        shift_counts[id(node)] = (cnt.lo, cnt.hi)
                        lhs = ranges.pure.eval(node.lhs, idx)
                        if lhs.lo >= 0:
                            lhs_nonneg.add(id(node))
                        width = 64 if node.dtype is DType.I64 else 32
                        if 0 <= cnt.lo and cnt.hi < width:
                            remarks.append(
                                Remark(
                                    severity=Severity.REMARK,
                                    pass_name=PASS_GUARD,
                                    kernel=kernel.name,
                                    message=(
                                        f"shift count at S{idx} proven in "
                                        f"[{int(cnt.lo)}, {int(cnt.hi)}] ⊂ "
                                        f"[0, {width}): guarded-shift wrapper "
                                        "is redundant"
                                    ),
                                    stmt_index=idx,
                                    stmt=str(node),
                                    args=(
                                        ("lo", str(int(cnt.lo))),
                                        ("hi", str(int(cnt.hi))),
                                        ("width", str(width)),
                                    ),
                                )
                            )
        return GuardRangeInfo(
            kernel=kernel.name,
            verdicts=verdicts,
            init_verdicts=init_verdicts,
            _fold_by_id=fold_by_id,
            _shift_counts=shift_counts,
            _shift_lhs_nonneg=frozenset(lhs_nonneg),
            shift_total=shift_total,
            remarks=tuple(remarks),
        )


# ---------------------------------------------------------------------------
# prove_safe: the kernel-validator API
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SafetyReport:
    """Static memory-safety classification of one kernel.

    ``proven-safe``: no access can fault — affine indices stay inside
    the wrap-legal window ``[-extent, extent)`` and every gather/scatter
    is proven under the harness data contract.  ``proven-unsafe``: some
    *unguarded* access must fault on a full run (its exact static index
    range leaves the wrap-legal window, and unguarded statements execute
    on every iteration).  ``unknown``: neither proof goes through.
    """

    kernel: str
    classification: str  # "proven-safe" | "proven-unsafe" | "unknown"
    #: Safety relies on the harness data contract (gathers present).
    contingent: bool
    reasons: tuple[str, ...]
    accesses_total: int
    accesses_proven: int
    gathers_total: int
    gathers_proven: int

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "classification": self.classification,
            "contingent": self.contingent,
            "reasons": list(self.reasons),
            "accesses_total": self.accesses_total,
            "accesses_proven": self.accesses_proven,
            "gathers_total": self.gathers_total,
            "gathers_proven": self.gathers_proven,
        }


def prove_safe(
    kernel: LoopKernel, manager: Optional[AnalysisManager] = None
) -> SafetyReport:
    """Classify ``kernel`` as proven-safe / proven-unsafe / unknown."""
    am = manager if manager is not None else default_manager()
    bounds: BoundsInfo = am.get(BoundsCheckPass, kernel)
    reasons: list[str] = []
    unsafe: list[str] = []
    for acc in bounds.accesses:
        where = f"{acc.kind} {acc.array}[{acc.index}] at S{acc.stmt_index}"
        if acc.wrap_legal:
            continue
        if acc.kind == "affine":
            if not acc.guarded:
                unsafe.append(
                    f"{where}: index range [{int(acc.lo)}, {int(acc.hi)}] "
                    f"leaves [-{acc.extent}, {acc.extent}) and the access "
                    "is unguarded (faults on a full run)"
                )
            else:
                reasons.append(
                    f"{where}: index range [{int(acc.lo)}, {int(acc.hi)}] "
                    f"may leave [-{acc.extent}, {acc.extent}) but the "
                    "access is guarded"
                )
        else:
            reasons.append(
                f"{where}: index-array contents not provably in "
                f"[0, {acc.extent})"
            )
    if unsafe:
        classification = "proven-unsafe"
        reasons = unsafe + reasons
    elif not reasons:
        classification = "proven-safe"
    else:
        classification = "unknown"
    return SafetyReport(
        kernel=kernel.name,
        classification=classification,
        contingent=any(a.contingent for a in bounds.accesses),
        reasons=tuple(reasons),
        accesses_total=len(bounds.accesses),
        accesses_proven=sum(1 for a in bounds.accesses if a.proven),
        gathers_total=bounds.gathers_total,
        gathers_proven=bounds.gathers_proven,
    )


# ---------------------------------------------------------------------------
# Dynamic cross-check
# ---------------------------------------------------------------------------


def _iteration_grids(kernel: LoopKernel) -> list[np.ndarray]:
    """Flattened per-level iteration index arrays covering every
    iteration of the (depth 1 or 2) nest."""
    trips = [lp.trip for lp in kernel.loops]
    if len(trips) == 1:
        return [np.arange(trips[0], dtype=np.int64)]
    outer = np.repeat(np.arange(trips[0], dtype=np.int64), trips[1])
    inner = np.tile(np.arange(trips[1], dtype=np.int64), trips[0])
    return [outer, inner]


def crosscheck_kernel(
    kernel: LoopKernel,
    seed: int = 0,
    manager: Optional[AnalysisManager] = None,
    sanitize: bool = True,
) -> list[str]:
    """Replay every static range claim against concrete execution.

    Returns a list of contradiction descriptions (empty = consistent):

    * every access dimension claimed ``proven`` must index inside
      ``[0, extent)`` on **all** iterations with real harness buffers
      (the static claim quantifies over all iterations, so this is the
      exact obligation, not a sample);
    * ``wrap_legal`` claims must stay inside ``[-extent, extent)``;
    * a ``proven-unsafe`` classification must exhibit a concrete
      faulting iteration;
    * when the kernel is legally vectorizable, the dynamic dependence
      sanitizer must accept it (``sanitize=False`` skips this leg).
    """
    from ...sim.executor import make_buffers

    am = manager if manager is not None else default_manager()
    bounds: BoundsInfo = am.get(BoundsCheckPass, kernel)
    report = prove_safe(kernel, am)
    bufs = make_buffers(kernel, seed=seed)
    grids = _iteration_grids(kernel)
    out: list[str] = []

    def affine_values(af: Affine) -> np.ndarray:
        val = np.full_like(grids[0], af.offset)
        for lvl, c in enumerate(af.coeffs):
            if c and lvl < len(grids):
                val = val + c * grids[lvl]
        return val

    def index_values(ix, stack: str) -> Optional[np.ndarray]:
        if isinstance(ix, Affine):
            return affine_values(ix)
        inner = index_values(ix.index, stack)
        decl = kernel.arrays[ix.array]
        n = int(np.prod(decl.extents))
        if inner is None or inner.min() < -n or inner.max() >= n:
            return None  # index-array read itself faults
        return bufs[ix.array].reshape(-1)[inner].astype(np.int64, copy=False)

    any_fault = False
    checked: dict[tuple, tuple[int, int]] = {}
    for acc in bounds.accesses:
        key = (acc.array, acc.dim, acc.index)
        if key in checked:
            lo, hi = checked[key]
        else:
            # Re-locate the subscript object by re-walking the body in
            # the same order BoundsCheckPass did.  An index-array read
            # row (emitted for each gather/scatter) lives inside an
            # Indirect node, so those are probed too.
            vals = None
            for stmt in kernel.stmts():
                subs: list[tuple[str, tuple]] = [
                    (node.array, node.subscript)
                    for root in stmt.exprs()
                    for node in root.walk()
                    if isinstance(node, Load)
                ]
                if isinstance(stmt, ArrayStore):
                    subs.append((stmt.array, stmt.subscript))
                roots: list = []
                for array, sub in subs:
                    for d, ix in enumerate(sub):
                        if (
                            array == acc.array
                            and d == acc.dim
                            and str(ix) == acc.index
                        ):
                            roots.append(ix)
                        if (
                            isinstance(ix, Indirect)
                            and ix.array == acc.array
                            and acc.dim == 0
                            and str(ix.index) == acc.index
                        ):
                            roots.append(ix.index)
                if roots:
                    vals = index_values(roots[0], acc.index)
                    break
            if vals is None:
                lo, hi = (-(2**62), 2**62)  # faulting index-array read
            else:
                lo, hi = int(vals.min()), int(vals.max())
            checked[key] = (lo, hi)
        if lo < -acc.extent or hi >= acc.extent:
            any_fault = True
        if acc.proven and not (0 <= lo and hi < acc.extent):
            out.append(
                f"{kernel.name}: {acc.kind} {acc.array}[{acc.index}] at "
                f"S{acc.stmt_index} claimed proven in [0, {acc.extent}) but "
                f"concrete indices span [{lo}, {hi}] (seed {seed})"
            )
        elif acc.wrap_legal and not (-acc.extent <= lo and hi < acc.extent):
            out.append(
                f"{kernel.name}: {acc.kind} {acc.array}[{acc.index}] at "
                f"S{acc.stmt_index} claimed wrap-legal in "
                f"[-{acc.extent}, {acc.extent}) but concrete indices span "
                f"[{lo}, {hi}] (seed {seed})"
            )

    if report.classification == "proven-safe" and any_fault:
        out.append(
            f"{kernel.name}: classified proven-safe but a concrete access "
            f"faults (seed {seed})"
        )
    if report.classification == "proven-unsafe" and not any_fault:
        out.append(
            f"{kernel.name}: classified proven-unsafe but no concrete "
            f"access faults (seed {seed})"
        )

    if sanitize:
        from ...targets.registry import get_target
        from ...vectorize.legality import check_legality, natural_vf
        from .sanitizer import SanitizerError, check_dependence_claims

        vf = natural_vf(kernel, get_target("neon"))
        legality = check_legality(kernel, vf, manager=am)
        if legality.ok:
            try:
                check_dependence_claims(kernel, legality.dep_info, vf, bufs)
            except SanitizerError as err:
                out.append(f"{kernel.name}: dependence sanitizer: {err}")
    return out


__all__ = [
    "AccessBounds",
    "BoundsCheckPass",
    "BoundsInfo",
    "GuardRangeInfo",
    "GuardRangePass",
    "PASS_BOUNDS",
    "PASS_GUARD",
    "RangesResult",
    "SafetyReport",
    "ValueRangePass",
    "crosscheck_kernel",
    "prove_safe",
    "ranges_enabled",
]
