"""Vector-safety sanitizer: dynamic cross-check of dependence claims.

Static dependence analysis claims, for every pair of accesses to one
array, either *never aliases*, *aliases at exactly distance d*, or
*unknown*.  Vector execution is only legal because of those claims, so
this module re-derives the ground truth at run time — evaluating every
access's addresses over the actual iteration space, through the actual
index-array contents for indirect subscripts — and raises
:class:`SanitizerError` when any lane pair inside a VF block conflicts
in a way the static claims do not predict.

Opt-in: ``run_vector(plan, bufs, sanitize=True)`` or the
``REPRO_SANITIZE=1`` environment variable (see :mod:`repro.sim.executor`).
A failure means the static analysis and the dynamic behavior disagree —
one of them is wrong, and the measurement must not be trusted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...ir.kernel import LoopKernel
from ..access import AccessInfo, collect_accesses
from ..dependence import DependenceInfo, DepStatus


class SanitizerError(AssertionError):
    """Dynamic execution violates a statically-claimed dependence."""


def _access_key(acc: AccessInfo) -> tuple:
    return (acc.array, acc.pos, acc.is_store, acc.subscript)


def _claims(dep_info: DependenceInfo) -> dict[tuple[tuple, tuple], object]:
    """Map (src_key, sink_key) -> claimed distance or 'unknown'.

    A claim ``(src, sink) -> d`` asserts ``addr_src(t) == addr_sink(t +
    d)`` for all t (and no other alignment); pairs absent from the map
    are claimed to never alias.
    """
    out: dict[tuple[tuple, tuple], object] = {}
    for dep in dep_info.dependences:
        key = (_access_key(dep.src), _access_key(dep.sink))
        if dep.status is DepStatus.UNKNOWN:
            out[key] = "unknown"
        else:
            out[key] = dep.distance
    return out


def _addresses(
    kernel: LoopKernel,
    acc: AccessInfo,
    bufs: dict[str, np.ndarray],
    t: np.ndarray,
    outer: int,
) -> Optional[np.ndarray]:
    """Flattened element addresses of ``acc`` for inner iterations ``t``."""
    # Local index evaluation (mirrors the executor) so indirect
    # subscripts read the real buffer contents.
    from ...ir.expr import Affine, Indirect

    def eval_ix(ix) -> np.ndarray:
        if isinstance(ix, Affine):
            val = np.full_like(t, ix.offset)
            for lvl, c in enumerate(ix.coeffs):
                if not c:
                    continue
                val = val + c * (t if lvl == kernel.inner_level else outer)
            return val
        assert isinstance(ix, Indirect)
        inner = eval_ix(ix.index)
        return bufs[ix.array].reshape(-1)[inner].astype(np.int64, copy=False)

    idxs = [eval_ix(ix) for ix in acc.subscript]
    extents = acc.decl.extents
    addr = np.zeros_like(t)
    stride = 1
    for dim in range(len(extents) - 1, -1, -1):
        # Negative subscripts wrap (Python/C-under-test semantics used
        # by the functional executor for boundary iterations).
        addr = addr + (idxs[dim] % extents[dim]) * stride
        stride *= extents[dim]
    return addr


def _observed_conflicts(
    ax: np.ndarray, ay: np.ndarray, vf: int, vec_trip: int
) -> set[int]:
    """Signed distances k with ``ax[t] == ay[t+k]`` for some lane pair
    (t and t+k in the same VF block)."""
    out: set[int] = set()
    lanes = np.arange(vec_trip) % vf
    for k in range(vf):
        if k == 0:
            if np.any(ax[:vec_trip] == ay[:vec_trip]):
                out.add(0)
            continue
        n = vec_trip - k
        same_block = lanes[:n] < vf - k
        if np.any((ax[:n] == ay[k : k + n]) & same_block):
            out.add(k)
        if np.any((ay[:n] == ax[k : k + n]) & same_block):
            out.add(-k)
    return out


def check_dependence_claims(
    kernel: LoopKernel,
    dep_info: DependenceInfo,
    vf: int,
    bufs: dict[str, np.ndarray],
) -> None:
    """Raise :class:`SanitizerError` on any static/dynamic disagreement.

    Checks every (store, access) pair of each array: observed same-block
    lane conflicts must be exactly the statically claimed alignments.
    Pairs claimed ``unknown`` are exempt (no claim is made), and so are
    kernels too short for a single vector block.
    """
    trip = kernel.inner.trip
    vec_trip = trip - trip % vf
    if vec_trip <= 0:
        return
    t = np.arange(trip, dtype=np.int64)
    outers = [0] if kernel.depth == 1 else sorted({0, kernel.loops[0].trip - 1})
    claims = _claims(dep_info)
    accesses = collect_accesses(kernel)
    by_array: dict[str, list[AccessInfo]] = {}
    for acc in accesses:
        by_array.setdefault(acc.array, []).append(acc)

    for outer in outers:
        addr_cache: dict[tuple, np.ndarray] = {}

        def addr_of(acc: AccessInfo) -> np.ndarray:
            key = _access_key(acc)
            if key not in addr_cache:
                addr_cache[key] = _addresses(kernel, acc, bufs, t, outer)
            return addr_cache[key]

        for array, accs in by_array.items():
            for i, a in enumerate(accs):
                for b in accs[i + 1 :]:
                    if not (a.is_store or b.is_store):
                        continue
                    ka, kb = _access_key(a), _access_key(b)
                    claim = claims.get((ka, kb), claims.get((kb, ka), "none"))
                    if claim == "unknown":
                        continue  # no static claim to check
                    allowed: set[int] = set()
                    if claim != "none":
                        # Claimed: addr_src(t) == addr_sink(t + d).
                        d = int(claim)  # type: ignore[arg-type]
                        allowed = {d} if (ka, kb) in claims else {-d}
                        if d == 0:
                            allowed = {0}
                    observed = _observed_conflicts(
                        addr_of(a), addr_of(b), vf, vec_trip
                    )
                    stray = {
                        k for k in observed - allowed if abs(k) in range(vf)
                    }
                    if stray:
                        k = sorted(stray, key=abs)[0]
                        raise SanitizerError(
                            f"{kernel.name}: dynamic dependence violates static "
                            f"claim on array '{array}': "
                            f"{_describe(a)} and {_describe(b)} conflict at "
                            f"iteration distance {abs(k)} inside a VF={vf} "
                            f"block, but the analysis claimed "
                            f"{_claim_text(claim)}"
                        )


def check_plan(plan, bufs: dict[str, np.ndarray]) -> None:
    """Sanitize a vectorization plan before emulated vector execution."""
    check_dependence_claims(plan.kernel, plan.dep_info, plan.vf, bufs)


def _describe(acc: AccessInfo) -> str:
    op = "store" if acc.is_store else "load"
    idx = "][".join(str(ix) for ix in acc.subscript)
    return f"{op} {acc.array}[{idx}] (S{int(acc.pos)})"


def _claim_text(claim) -> str:
    if claim == "none":
        return "the accesses never alias"
    return f"a carried distance of exactly {claim}"


__all__ = ["SanitizerError", "check_dependence_claims", "check_plan"]
