"""Core analysis passes: wrapped classic analyses plus dataflow.

Wrappers (``deps``, ``scalars``, ``accesses``) make the pre-existing
analyses first-class pass-manager citizens so every consumer shares one
cached walk.  The dataflow passes (``reaching-defs``, ``def-use``,
``liveness``, ``loop-invariant``) are textbook forward/backward
analyses over the kernel body viewed as the body of the innermost loop:
the loop back-edge is modelled by iterating the transfer function to a
fixpoint.

Statements are identified by their pre-order index in the body walk
(``S0``, ``S1``, …) — the same numbering ``AccessInfo.pos`` uses, so
diagnostics from every pass agree on provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...ir.expr import Expr, Indirect, IterValue, Load, ScalarRef
from ...ir.kernel import LoopKernel
from ...ir.stmt import ArrayStore, IfBlock, ScalarAssign, Stmt
from ..access import AccessInfo, collect_accesses, linearize
from ..dependence import DependenceInfo, analyze_dependences
from ..reduction import ScalarInfo, classify_scalars
from .passmanager import AnalysisManager, AnalysisPass, register_pass

#: Pseudo-definition site: the scalar's value on loop entry (its init).
ENTRY_DEF = -1


def stmt_list(kernel: LoopKernel) -> list[Stmt]:
    """Kernel statements in pre-order; index ``i`` is remark label Si."""
    return list(kernel.stmts())


def stmt_index_of(kernel: LoopKernel, stmt: Stmt) -> Optional[int]:
    for i, s in enumerate(kernel.stmts()):
        if s is stmt:
            return i
    return None


def _scalar_reads(stmt: Stmt) -> set[str]:
    """Scalar names the statement itself reads (RHS / condition only)."""
    return {
        n.name
        for root in stmt.exprs()
        for n in root.walk()
        if isinstance(n, ScalarRef)
    }


# ---------------------------------------------------------------------------
# Wrapped classic analyses
# ---------------------------------------------------------------------------


@register_pass
class DependencePass(AnalysisPass):
    """Pairwise memory dependences (:func:`analyze_dependences`)."""

    name = "deps"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> DependenceInfo:
        return analyze_dependences(kernel)


@register_pass
class ScalarClassPass(AnalysisPass):
    """Reduction/recurrence classification (:func:`classify_scalars`)."""

    name = "scalars"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> dict[str, ScalarInfo]:
        return classify_scalars(kernel)


@register_pass
class AccessPass(AnalysisPass):
    """All array accesses in program order (:func:`collect_accesses`)."""

    name = "accesses"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> list[AccessInfo]:
        return collect_accesses(kernel)


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReachingDefs:
    """Per-statement reaching definitions for every scalar.

    ``reach_in[i][name]`` is the set of statement indices whose
    definition of ``name`` may be live when statement ``i`` executes
    (:data:`ENTRY_DEF` = the value from before the loop).  ``exit``
    holds the defs that reach the loop back-edge.
    """

    reach_in: tuple[dict[str, frozenset[int]], ...]
    exit: dict[str, frozenset[int]]


@register_pass
class ReachingDefsPass(AnalysisPass):
    name = "reaching-defs"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> ReachingDefs:
        stmts = stmt_list(kernel)
        index = {id(s): i for i, s in enumerate(stmts)}
        nstmts = len(stmts)
        reach_in: list[dict[str, set[int]]] = [{} for _ in range(nstmts)]

        def merge_into(dst: dict[str, set[int]], src: dict[str, set[int]]) -> bool:
            changed = False
            for name, defs in src.items():
                cur = dst.setdefault(name, set())
                if not defs <= cur:
                    cur |= defs
                    changed = True
            return changed

        def flow(body, state: dict[str, set[int]]) -> dict[str, set[int]]:
            for stmt in body:
                i = index[id(stmt)]
                merge_into(reach_in[i], state)
                if isinstance(stmt, ScalarAssign):
                    state[stmt.name] = {i}
                elif isinstance(stmt, IfBlock):
                    taken = flow(stmt.then_body, {k: set(v) for k, v in state.items()})
                    fall = flow(stmt.else_body, {k: set(v) for k, v in state.items()})
                    state = taken
                    merge_into(state, fall)
            return state

        entry = {name: {ENTRY_DEF} for name in kernel.scalars}
        exit_state: dict[str, set[int]] = {}
        # The loop back-edge feeds the body's exit state into its entry;
        # iterate to a fixpoint (the lattice is finite and monotone).
        for _ in range(nstmts + 2):
            state = {k: set(v) for k, v in entry.items()}
            merge_into(state, exit_state)
            out = flow(kernel.body, state)
            if not merge_into(exit_state, out):
                break

        return ReachingDefs(
            reach_in=tuple(
                {n: frozenset(d) for n, d in ri.items()} for ri in reach_in
            ),
            exit={n: frozenset(d) for n, d in exit_state.items()},
        )


# ---------------------------------------------------------------------------
# Def-use chains
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DefUse:
    """Def-use chains for scalars, built on reaching definitions.

    ``chains[(name, def_idx)]`` is the set of statement indices whose
    read of ``name`` may observe that definition.  ``dead_defs`` are
    definitions with no observer: no reached use and not reaching the
    loop exit (where every assigned scalar is live-out by contract).
    """

    defs: dict[str, tuple[int, ...]]
    uses: dict[str, tuple[int, ...]]
    chains: dict[tuple[str, int], frozenset[int]]
    dead_defs: tuple[tuple[str, int], ...]


@register_pass
class DefUsePass(AnalysisPass):
    name = "def-use"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> DefUse:
        reaching: ReachingDefs = am.get(ReachingDefsPass, kernel)
        stmts = stmt_list(kernel)
        defs: dict[str, list[int]] = {}
        uses: dict[str, list[int]] = {}
        chains: dict[tuple[str, int], set[int]] = {}
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ScalarAssign):
                defs.setdefault(stmt.name, []).append(i)
                chains.setdefault((stmt.name, i), set())
            for name in _scalar_reads(stmt):
                uses.setdefault(name, []).append(i)
                for d in reaching.reach_in[i].get(name, ()):
                    chains.setdefault((name, d), set()).add(i)
        dead = tuple(
            (name, d)
            for (name, d), observers in sorted(chains.items())
            if d != ENTRY_DEF
            and not observers
            and d not in reaching.exit.get(name, ())
        )
        return DefUse(
            defs={n: tuple(v) for n, v in defs.items()},
            uses={n: tuple(v) for n, v in uses.items()},
            chains={k: frozenset(v) for k, v in chains.items()},
            dead_defs=dead,
        )


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Liveness:
    """Backward scalar liveness over the loop body.

    ``live_in[i]`` is the set of scalars live immediately before
    statement ``i``; ``loop_carried`` are scalars whose entry value may
    be read (live into the first iteration from the preheader).
    """

    live_in: tuple[frozenset[str], ...]
    loop_carried: frozenset[str]


@register_pass
class LivenessPass(AnalysisPass):
    name = "liveness"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> Liveness:
        stmts = stmt_list(kernel)
        index = {id(s): i for i, s in enumerate(stmts)}
        live_in: list[set[str]] = [set() for _ in stmts]

        def back(body, live: set[str]) -> set[str]:
            for stmt in reversed(body):
                if isinstance(stmt, IfBlock):
                    taken = back(stmt.then_body, set(live))
                    fall = back(stmt.else_body, set(live))
                    live = taken | fall | _scalar_reads(stmt)
                elif isinstance(stmt, ScalarAssign):
                    live = (live - {stmt.name}) | _scalar_reads(stmt)
                else:
                    live = live | _scalar_reads(stmt)
                i = index[id(stmt)]
                live_in[i] |= live
            return live

        # Every assigned scalar is an output of the kernel (the executor
        # contract), so it is live across the back-edge; iterate until
        # the body-entry set stabilizes.
        exit_live = set(kernel.live_out_scalars())
        entry = set(exit_live)
        for _ in range(len(stmts) + 2):
            new_entry = back(kernel.body, set(entry))
            if new_entry <= entry:
                break
            entry |= new_entry
        return Liveness(
            live_in=tuple(frozenset(s) for s in live_in),
            loop_carried=frozenset(entry),
        )


# ---------------------------------------------------------------------------
# Loop-invariant detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopInvariance:
    """Which statements/expressions do not vary with the inner loop.

    ``invariant_stmts`` lists pre-order indices of statements whose
    effect is identical in every inner-loop iteration (hoisting or
    sinking candidates); ``invariant_loads`` are loads lowered as
    broadcasts.
    """

    invariant_stmts: tuple[int, ...]
    invariant_loads: tuple[int, ...]  # stmt indices owning such a load


@register_pass
class LoopInvariantPass(AnalysisPass):
    name = "loop-invariant"

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> LoopInvariance:
        inner = kernel.inner_level
        varying = set(kernel.assigned_scalars())

        def index_varies(ix) -> bool:
            if isinstance(ix, Indirect):
                return True  # conservatively varying (data-dependent)
            return ix.coeff(inner) != 0

        def expr_invariant(e: Expr) -> bool:
            for node in e.walk():
                if isinstance(node, IterValue) and node.level == inner:
                    return False
                if isinstance(node, ScalarRef) and node.name in varying:
                    return False
                if isinstance(node, Load) and any(
                    index_varies(ix) for ix in node.subscript
                ):
                    return False
            return True

        invariant_stmts: list[int] = []
        invariant_loads: list[int] = []
        for i, stmt in enumerate(stmt_list(kernel)):
            roots = stmt.exprs()
            if any(
                isinstance(n, Load) and not any(index_varies(ix) for ix in n.subscript)
                for root in roots
                for n in root.walk()
            ):
                invariant_loads.append(i)
            if isinstance(stmt, ArrayStore):
                if all(not index_varies(ix) for ix in stmt.subscript) and expr_invariant(
                    stmt.value
                ):
                    invariant_stmts.append(i)
            elif isinstance(stmt, ScalarAssign):
                # A self-referencing assignment is a recurrence, never
                # invariant; otherwise invariance is the RHS's.
                if stmt.name not in _scalar_reads(stmt) and expr_invariant(stmt.value):
                    invariant_stmts.append(i)
        return LoopInvariance(tuple(invariant_stmts), tuple(invariant_loads))


__all__ = [
    "ENTRY_DEF",
    "AccessPass",
    "DefUse",
    "DefUsePass",
    "DependencePass",
    "Liveness",
    "LivenessPass",
    "LoopInvariance",
    "LoopInvariantPass",
    "ReachingDefs",
    "ReachingDefsPass",
    "ScalarClassPass",
    "stmt_index_of",
    "stmt_list",
    "linearize",
]
