"""Static-analysis framework: pass manager, dataflow, races, lint.

The subsystem behind ``python -m repro.experiments analyze`` and the
explanation layer of the vectorizer: registered analysis passes run
over a :class:`~repro.ir.kernel.LoopKernel` through an
:class:`AnalysisManager` (result caching + dependency-aware
invalidation), and decisions surface as LLVM-style structured remarks
through :class:`Diagnostics`.

The sanitizer (:mod:`.sanitizer`) is imported lazily by its consumers
to keep this package free of executor dependencies.
"""

from .diagnostics import Diagnostics, Remark, Severity
from .lint import LintPass, lint_kernel
from .passmanager import (
    PASS_REGISTRY,
    AnalysisManager,
    AnalysisPass,
    default_manager,
    register_pass,
    reset_default_manager,
)
from .passes import (
    ENTRY_DEF,
    AccessPass,
    DefUse,
    DefUsePass,
    DependencePass,
    Liveness,
    LivenessPass,
    LoopInvariance,
    LoopInvariantPass,
    ReachingDefs,
    ReachingDefsPass,
    ScalarClassPass,
    stmt_list,
)
from .racedetector import (
    DependenceVector,
    Direction,
    Race,
    RacePass,
    RaceReport,
    analyze_races,
)
from .ranges import (
    AccessBounds,
    BoundsCheckPass,
    BoundsInfo,
    GuardRangeInfo,
    GuardRangePass,
    RangesResult,
    SafetyReport,
    ValueRangePass,
    crosscheck_kernel,
    prove_safe,
    ranges_enabled,
)

__all__ = [
    "AccessBounds",
    "BoundsCheckPass",
    "BoundsInfo",
    "GuardRangeInfo",
    "GuardRangePass",
    "RangesResult",
    "SafetyReport",
    "ValueRangePass",
    "crosscheck_kernel",
    "prove_safe",
    "ranges_enabled",
    "Diagnostics",
    "Remark",
    "Severity",
    "LintPass",
    "lint_kernel",
    "PASS_REGISTRY",
    "AnalysisManager",
    "AnalysisPass",
    "default_manager",
    "register_pass",
    "reset_default_manager",
    "ENTRY_DEF",
    "AccessPass",
    "DefUse",
    "DefUsePass",
    "DependencePass",
    "Liveness",
    "LivenessPass",
    "LoopInvariance",
    "LoopInvariantPass",
    "ReachingDefs",
    "ReachingDefsPass",
    "ScalarClassPass",
    "stmt_list",
    "DependenceVector",
    "Direction",
    "Race",
    "RacePass",
    "RaceReport",
    "analyze_races",
]
