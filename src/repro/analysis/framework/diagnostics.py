"""Structured, severity-tagged optimization remarks.

Mirrors LLVM's ``-Rpass`` machinery: every analysis or transform
decision worth explaining becomes a :class:`Remark` with kernel and
statement provenance plus a structured key/value payload, collected by
a :class:`Diagnostics` engine.  Rendered text follows the clang shape
``<kernel>:<stmt>: remark: <message> [-Rpass=<pass>]`` so suite-wide
sweeps stay grep-able, and ``to_json()`` gives the machine-readable
form the ``analyze`` CLI emits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


class Severity(enum.Enum):
    """Remark severities, ordered: remark < warning < error."""

    REMARK = "remark"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.REMARK: 0, Severity.WARNING: 1, Severity.ERROR: 2}

#: clang renders the three remark families with different flags; we
#: keep the same convention so output reads like ``-Rpass`` output.
_RPASS_FLAG = {
    Severity.REMARK: "-Rpass",
    Severity.WARNING: "-Rpass-missed",
    Severity.ERROR: "-Rpass-analysis",
}


@dataclass(frozen=True)
class Remark:
    """One structured diagnostic with kernel/statement provenance.

    ``stmt_index`` is the pre-order statement position in the kernel
    body (``S0``, ``S1``, …, matching :func:`stmt_list` ordering);
    ``args`` is the structured payload — ``(("array", "a"),
    ("distance", "1"))`` — that machine consumers read instead of
    parsing the message.
    """

    severity: Severity
    pass_name: str
    kernel: str
    message: str
    stmt_index: Optional[int] = None
    stmt: Optional[str] = None
    args: tuple[tuple[str, str], ...] = ()

    def arg(self, key: str) -> Optional[str]:
        for k, v in self.args:
            if k == key:
                return v
        return None

    def format(self) -> str:
        loc = self.kernel if self.stmt_index is None else f"{self.kernel}:S{self.stmt_index}"
        flag = _RPASS_FLAG[self.severity]
        return f"{loc}: {self.severity.value}: {self.message} [{flag}={self.pass_name}]"

    def to_dict(self) -> dict:
        return {
            "severity": self.severity.value,
            "flag": _RPASS_FLAG[self.severity],
            "pass": self.pass_name,
            "kernel": self.kernel,
            "message": self.message,
            "stmt_index": self.stmt_index,
            "stmt": self.stmt,
            "args": dict(self.args),
        }

    def __str__(self) -> str:
        return self.format()


@dataclass
class Diagnostics:
    """Collects remarks, deduplicated, in emission order."""

    _remarks: list[Remark] = field(default_factory=list)
    _seen: set[Remark] = field(default_factory=set)

    def emit(self, remark: Remark) -> Remark:
        if remark not in self._seen:
            self._seen.add(remark)
            self._remarks.append(remark)
        return remark

    def extend(self, remarks: Iterable[Remark]) -> None:
        for r in remarks:
            self.emit(r)

    # -- convenience emitters ----------------------------------------------

    def remark(self, pass_name: str, kernel: str, message: str, **kw) -> Remark:
        return self.emit(_make(Severity.REMARK, pass_name, kernel, message, **kw))

    def warning(self, pass_name: str, kernel: str, message: str, **kw) -> Remark:
        return self.emit(_make(Severity.WARNING, pass_name, kernel, message, **kw))

    def error(self, pass_name: str, kernel: str, message: str, **kw) -> Remark:
        return self.emit(_make(Severity.ERROR, pass_name, kernel, message, **kw))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._remarks)

    def __iter__(self) -> Iterator[Remark]:
        return iter(self._remarks)

    def remarks(
        self,
        kernel: Optional[str] = None,
        severity: Optional[Severity] = None,
        pass_name: Optional[str] = None,
        min_severity: Optional[Severity] = None,
    ) -> list[Remark]:
        out = self._remarks
        if kernel is not None:
            out = [r for r in out if r.kernel == kernel]
        if severity is not None:
            out = [r for r in out if r.severity is severity]
        if min_severity is not None:
            out = [r for r in out if r.severity.rank >= min_severity.rank]
        if pass_name is not None:
            out = [r for r in out if r.pass_name == pass_name]
        return list(out)

    @property
    def has_errors(self) -> bool:
        return any(r.severity is Severity.ERROR for r in self._remarks)

    @property
    def has_warnings(self) -> bool:
        return any(r.severity.rank >= Severity.WARNING.rank for r in self._remarks)

    def max_severity(self, kernel: Optional[str] = None) -> Optional[Severity]:
        sel = self.remarks(kernel=kernel)
        if not sel:
            return None
        return max((r.severity for r in sel), key=lambda s: s.rank)

    def render(self, kernel: Optional[str] = None) -> str:
        return "\n".join(r.format() for r in self.remarks(kernel=kernel))

    def to_json(self) -> list[dict]:
        return [r.to_dict() for r in self._remarks]

    def clear(self) -> None:
        self._remarks.clear()
        self._seen.clear()


def _make(
    severity: Severity,
    pass_name: str,
    kernel: str,
    message: str,
    *,
    stmt_index: Optional[int] = None,
    stmt: Optional[str] = None,
    args: Iterable[tuple[str, str]] = (),
) -> Remark:
    return Remark(
        severity=severity,
        pass_name=pass_name,
        kernel=kernel,
        message=message,
        stmt_index=stmt_index,
        stmt=stmt,
        args=tuple((str(k), str(v)) for k, v in args),
    )
