"""IR lint: silent kernel defects surfaced as structured remarks.

Four families of findings:

* **dead stores** — an unguarded array store whose location is
  rewritten later in the same iteration with no possible intervening
  read (warning), and scalar definitions no statement can observe
  (warning, via def-use chains);
* **unused declarations** — arrays/scalars declared but never
  referenced by the body (warning);
* **constant guards** — ``if`` conditions the value-range analysis
  proves constant — literal folds and provable bounds like ``i < N``
  alike — so one arm is dead (warning; init-contingent verdicts are
  informational remarks);
* **vectorization hazards** — non-affine (indirect) subscripts that
  silently defeat affine dependence analysis, and inner-loop-invariant
  statements (informational remarks; they change cost, not meaning).

Warnings gate ``repro.experiments analyze --strict`` and the pipeline
pre-pass treats *errors* as fatal, so the TSVC suite is expected to be
warning-free.
"""

from __future__ import annotations

from typing import Optional

from ...ir.expr import Indirect
from ...ir.kernel import LoopKernel
from ..access import linearize
from .diagnostics import Remark, Severity
from .passmanager import AnalysisManager, AnalysisPass, register_pass
from .passes import (
    AccessPass,
    DefUsePass,
    LoopInvariantPass,
    stmt_list,
)
from .ranges import GuardRangePass

PASS = "lint"


@register_pass
class LintPass(AnalysisPass):
    """Runs every lint rule; the result is a tuple of remarks."""

    name = PASS

    def run(self, kernel: LoopKernel, am: AnalysisManager) -> tuple[Remark, ...]:
        remarks: list[Remark] = []
        remarks += _dead_array_stores(kernel, am)
        remarks += _dead_scalar_defs(kernel, am)
        remarks += _unused_declarations(kernel)
        remarks += _constant_guards(kernel, am)
        remarks += _vectorization_hazards(kernel, am)
        return tuple(remarks)


def lint_kernel(
    kernel: LoopKernel, manager: Optional[AnalysisManager] = None
) -> tuple[Remark, ...]:
    """Convenience entry point (uses the default manager)."""
    from .passmanager import default_manager

    am = manager if manager is not None else default_manager()
    return am.get(LintPass, kernel)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _dead_array_stores(kernel: LoopKernel, am: AnalysisManager) -> list[Remark]:
    """Unguarded store overwritten by an identical later store with no
    potentially-aliasing read of the array in between."""
    accesses = am.get(AccessPass, kernel)
    out: list[Remark] = []
    stores = [a for a in accesses if a.is_store and a.guard_depth == 0]
    for i, first in enumerate(stores):
        lin_first = linearize(first.decl, first.subscript, kernel.depth)
        if lin_first is None:
            continue
        for second in stores[i + 1 :]:
            if second.array != first.array:
                continue
            if linearize(second.decl, second.subscript, kernel.depth) != lin_first:
                continue
            reads_between = [
                a
                for a in accesses
                if a.is_load
                and a.array == first.array
                and first.pos < a.pos < second.pos
            ]
            if any(
                (lin := linearize(r.decl, r.subscript, kernel.depth)) is None
                or lin == lin_first
                for r in reads_between
            ):
                continue
            out.append(
                Remark(
                    severity=Severity.WARNING,
                    pass_name=PASS,
                    kernel=kernel.name,
                    message=(
                        f"dead store: S{int(first.pos)} writes "
                        f"{first.array}[{_sub(first)}] which S{int(second.pos)} "
                        "overwrites in the same iteration with no intervening read"
                    ),
                    stmt_index=int(first.pos),
                    args=(("array", first.array), ("overwritten_by", str(int(second.pos)))),
                )
            )
            break
    return out


def _dead_scalar_defs(kernel: LoopKernel, am: AnalysisManager) -> list[Remark]:
    du = am.get(DefUsePass, kernel)
    stmts = stmt_list(kernel)
    return [
        Remark(
            severity=Severity.WARNING,
            pass_name=PASS,
            kernel=kernel.name,
            message=(
                f"dead store: scalar '{name}' assigned at S{idx} is never "
                "read before being overwritten"
            ),
            stmt_index=idx,
            stmt=str(stmts[idx]),
            args=(("scalar", name),),
        )
        for name, idx in du.dead_defs
    ]


def _unused_declarations(kernel: LoopKernel) -> list[Remark]:
    used_arrays = kernel.arrays_read() | kernel.arrays_written()
    out = [
        Remark(
            severity=Severity.WARNING,
            pass_name=PASS,
            kernel=kernel.name,
            message=f"unused declaration: array '{name}' is never accessed",
            args=(("array", name),),
        )
        for name in kernel.arrays
        if name not in used_arrays
    ]
    referenced = kernel.assigned_scalars() | {
        n.name
        for s in kernel.stmts()
        for root in s.exprs()
        for n in root.walk()
        if hasattr(n, "name") and n.name in kernel.scalars
    }
    out += [
        Remark(
            severity=Severity.WARNING,
            pass_name=PASS,
            kernel=kernel.name,
            message=f"unused declaration: scalar '{name}' is never referenced",
            args=(("scalar", name),),
        )
        for name in kernel.scalars
        if name not in referenced
    ]
    return out


def _constant_guards(kernel: LoopKernel, am: AnalysisManager) -> list[Remark]:
    """Guards the range analysis proves constant.

    Routed through :class:`~.ranges.GuardRangePass` instead of a local
    literal folder, so conditions like ``i < N`` with provable
    induction-variable bounds are flagged too.  Pure verdicts (true for
    any scalar inputs) are dead code and warn; verdicts that hold only
    for the declared scalar inits are data, not structure, and surface
    as informational remarks.
    """
    guards = am.get(GuardRangePass, kernel)
    stmts = stmt_list(kernel)
    out: list[Remark] = []
    for idx, val in sorted(guards.verdicts.items()):
        arm = "else" if val else "then"
        always = "true" if val else "false"
        out.append(
            Remark(
                severity=Severity.WARNING,
                pass_name=PASS,
                kernel=kernel.name,
                message=(
                    f"guard at S{idx} is always {always}: "
                    f"the {arm} branch is dead code"
                ),
                stmt_index=idx,
                stmt=str(stmts[idx].cond),
                args=(("value", always),),
            )
        )
    for idx, val in sorted(guards.init_verdicts.items()):
        always = "true" if val else "false"
        out.append(
            Remark(
                severity=Severity.REMARK,
                pass_name=PASS,
                kernel=kernel.name,
                message=(
                    f"guard at S{idx} is always {always} for the declared "
                    "scalar initial values (not folded: callers may "
                    "override scalars)"
                ),
                stmt_index=idx,
                stmt=str(stmts[idx].cond),
                args=(("value", always), ("contingent", "inits")),
            )
        )
    return out


def _vectorization_hazards(kernel: LoopKernel, am: AnalysisManager) -> list[Remark]:
    out: list[Remark] = []
    seen: set[tuple[str, int]] = set()
    for acc in am.get(AccessPass, kernel):
        if any(isinstance(ix, Indirect) for ix in acc.subscript):
            key = (acc.array, int(acc.pos))
            if key in seen:
                continue
            seen.add(key)
            op = "store" if acc.is_store else "load"
            out.append(
                Remark(
                    severity=Severity.REMARK,
                    pass_name=PASS,
                    kernel=kernel.name,
                    message=(
                        f"non-affine subscript: {op} {acc.array}[{_sub(acc)}] at "
                        f"S{int(acc.pos)} defeats affine dependence analysis "
                        "(lowered as gather/scatter)"
                    ),
                    stmt_index=int(acc.pos),
                    args=(("array", acc.array), ("access", op)),
                )
            )
    inv = am.get(LoopInvariantPass, kernel)
    stmts = stmt_list(kernel)
    out += [
        Remark(
            severity=Severity.REMARK,
            pass_name=PASS,
            kernel=kernel.name,
            message=(
                f"statement S{i} is inner-loop invariant "
                "(re-executed identically every iteration)"
            ),
            stmt_index=i,
            stmt=str(stmts[i]),
        )
        for i in inv.invariant_stmts
    ]
    return out


def _sub(acc) -> str:
    return "][".join(str(ix) for ix in acc.subscript)


__all__ = ["LintPass", "lint_kernel", "PASS"]
