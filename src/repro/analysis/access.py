"""Memory-access classification for the innermost loop.

Each array access is reduced to its element stride with respect to the
innermost loop variable.  The stride decides how the vectorizer lowers
it (unit stride → packed load/store, stride ±k → strided/shuffled
access or gather, indirect → gather/scatter, stride 0 → broadcast) and
it is a first-order input to the cost model: gathers dominate the cost
of many TSVC indirection kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from ..ir.expr import Affine, Expr, Indirect, Load
from ..ir.kernel import ArrayDecl, LoopKernel
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign, Stmt


class AccessPattern(enum.Enum):
    CONTIGUOUS = "contiguous"  # stride +1
    REVERSE = "reverse"        # stride -1
    STRIDED = "strided"        # |stride| > 1, compile-time constant
    INVARIANT = "invariant"    # stride 0 (broadcast load / invariant store)
    INDIRECT = "indirect"      # subscript through an index array


@dataclass(frozen=True)
class AccessInfo:
    """One array access in flattened program order.

    ``pos`` orders accesses the way the hardware sees them: statement
    index for loads, statement index + 0.5 for the store of the same
    statement (a statement's operand loads always execute before its
    store).  ``guard_depth`` counts enclosing IfBlocks — guarded
    accesses become masked/predicated vector operations.
    """

    array: str
    decl: ArrayDecl
    is_store: bool
    subscript: tuple
    pos: float
    guard_depth: int
    stride: Optional[int]  # elements per innermost iteration; None if indirect
    pattern: AccessPattern

    @property
    def is_load(self) -> bool:
        return not self.is_store


def dim_strides(decl: ArrayDecl) -> tuple[int, ...]:
    """Row-major element strides of each dimension of ``decl``."""
    strides = []
    acc = 1
    for extent in reversed(decl.extents):
        strides.append(acc)
        acc *= extent
    return tuple(reversed(strides))


def linearize(decl: ArrayDecl, subscript: tuple, depth: int) -> Optional[Affine]:
    """Linearized affine element index, or None if any dim is indirect."""
    coeffs = [0] * depth
    offset = 0
    for ix, s in zip(subscript, dim_strides(decl)):
        if isinstance(ix, Indirect):
            return None
        assert isinstance(ix, Affine)
        for lvl in range(depth):
            coeffs[lvl] += ix.coeff(lvl) * s
        offset += ix.offset * s
    return Affine(tuple(coeffs), offset)


def classify_stride(stride: Optional[int]) -> AccessPattern:
    if stride is None:
        return AccessPattern.INDIRECT
    if stride == 1:
        return AccessPattern.CONTIGUOUS
    if stride == -1:
        return AccessPattern.REVERSE
    if stride == 0:
        return AccessPattern.INVARIANT
    return AccessPattern.STRIDED


def collect_accesses(kernel: LoopKernel) -> list[AccessInfo]:
    """All array accesses of the kernel body in program order."""
    out: list[AccessInfo] = []
    counter = [0]

    def expr_loads(e: Expr, pos: float, guard_depth: int) -> None:
        for node in e.walk():
            if isinstance(node, Load):
                _emit(node.array, node.subscript, False, pos, guard_depth)
                # Index arrays of indirect subscripts are loads too.
                for ix in node.subscript:
                    if isinstance(ix, Indirect):
                        _emit(
                            ix.array,
                            (ix.index.at_depth(kernel.depth),),
                            False,
                            pos,
                            guard_depth,
                        )

    def _emit(array: str, subscript: tuple, is_store: bool, pos: float, gd: int) -> None:
        decl = kernel.arrays[array]
        lin = linearize(decl, subscript, kernel.depth)
        stride = lin.coeff(kernel.inner_level) if lin is not None else None
        out.append(
            AccessInfo(
                array=array,
                decl=decl,
                is_store=is_store,
                subscript=subscript,
                pos=pos,
                guard_depth=gd,
                stride=stride,
                pattern=classify_stride(stride),
            )
        )

    def visit(stmts: tuple[Stmt, ...], guard_depth: int) -> None:
        for stmt in stmts:
            idx = counter[0]
            counter[0] += 1
            if isinstance(stmt, ArrayStore):
                expr_loads(stmt.value, idx, guard_depth)
                for ix in stmt.subscript:
                    if isinstance(ix, Indirect):
                        _emit(
                            ix.array,
                            (ix.index.at_depth(kernel.depth),),
                            False,
                            idx,
                            guard_depth,
                        )
                _emit(stmt.array, stmt.subscript, True, idx + 0.5, guard_depth)
            elif isinstance(stmt, ScalarAssign):
                expr_loads(stmt.value, idx, guard_depth)
            elif isinstance(stmt, IfBlock):
                expr_loads(stmt.cond, idx, guard_depth)
                visit(stmt.then_body, guard_depth + 1)
                visit(stmt.else_body, guard_depth + 1)
    visit(kernel.body, 0)
    return out


def loads_of(accesses: list[AccessInfo]) -> Iterator[AccessInfo]:
    return (a for a in accesses if a.is_load)


def stores_of(accesses: list[AccessInfo]) -> Iterator[AccessInfo]:
    return (a for a in accesses if a.is_store)
