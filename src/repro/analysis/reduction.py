"""Scalar recurrence classification: reductions vs serial recurrences.

Every scalar a kernel assigns is classified as

* ``PRIVATE``   — (re)defined before use each iteration (a temporary);
* ``REDUCTION`` — a vectorizable associative update (``+ * min max``),
  optionally guarded (``if (a[i] > 0) sum += a[i]``) or expressed as a
  compare-and-assign (``if (a[i] > x) x = a[i]``) / select idiom;
* ``RECURRENCE`` — its previous-iteration value is observed in any
  other way, which serializes the loop (TSVC's s2xx family).

This mirrors LLVM's reduction/induction recognition, which the paper's
LLV configuration relies on to vectorize the TSVC reduction kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..ir.expr import (
    BinOp,
    BinOpKind,
    CmpKind,
    Compare,
    Expr,
    REDUCTION_BINOPS,
    ScalarRef,
    Select,
)
from ..ir.kernel import LoopKernel
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign, Stmt


class ScalarClass(enum.Enum):
    PARAM = "param"          # never written
    PRIVATE = "private"      # defined-before-use temporary
    REDUCTION = "reduction"  # associative accumulator
    RECURRENCE = "recurrence"  # serializing loop-carried scalar


#: Identity element per reduction operator (used to fill masked lanes
#: and to seed the vector accumulator).
REDUCTION_IDENTITY = {
    BinOpKind.ADD: 0.0,
    BinOpKind.MUL: 1.0,
    BinOpKind.MIN: float("inf"),
    BinOpKind.MAX: float("-inf"),
}


@dataclass(frozen=True)
class ScalarInfo:
    name: str
    klass: ScalarClass
    op: Optional[BinOpKind] = None  # set for reductions
    guarded: bool = False           # reduction guarded by a condition


@dataclass
class _Event:
    kind: str  # "read" | "write"
    guard_depth: int
    stmt: Optional[Stmt] = None


def _reads_in(expr: Expr, name: str) -> bool:
    return any(isinstance(n, ScalarRef) and n.name == name for n in expr.walk())


def _scalar_events(body, name: str, depth: int = 0) -> list[_Event]:
    """Read/write events for ``name`` in program order.

    The reads inside an assignment's RHS are emitted before its write,
    matching execution order.
    """
    events: list[_Event] = []
    for stmt in body:
        if isinstance(stmt, ScalarAssign):
            if _reads_in(stmt.value, name):
                events.append(_Event("read", depth, stmt))
            if stmt.name == name:
                events.append(_Event("write", depth, stmt))
        elif isinstance(stmt, ArrayStore):
            if _reads_in(stmt.value, name):
                events.append(_Event("read", depth, stmt))
        elif isinstance(stmt, IfBlock):
            if _reads_in(stmt.cond, name):
                events.append(_Event("read", depth, stmt))
            events.extend(_scalar_events(stmt.then_body, name, depth + 1))
            events.extend(_scalar_events(stmt.else_body, name, depth + 1))
    return events


def _match_plain_reduction(stmt: ScalarAssign) -> Optional[BinOpKind]:
    """``s = s ⊕ e₁ ⊕ e₂ ⊕ …`` with associative ⊕ and s-free eᵢ.

    The operand tree is flattened over the top-level operator so
    hand-unrolled accumulations (TSVC s352's five-term dot product)
    match just like the single-term form.
    """
    v = stmt.value
    if not isinstance(v, BinOp) or v.op not in REDUCTION_BINOPS:
        return None
    name = stmt.name
    leaves: list[Expr] = []
    _flatten(v, v.op, leaves)
    s_leaves = [
        leaf
        for leaf in leaves
        if isinstance(leaf, ScalarRef) and leaf.name == name
    ]
    if len(s_leaves) != 1:
        return None
    others_clean = all(
        not _reads_in(leaf, name) for leaf in leaves if leaf is not s_leaves[0]
    )
    return v.op if others_clean else None


def _flatten(expr: Expr, op: BinOpKind, out: list) -> None:
    if isinstance(expr, BinOp) and expr.op is op:
        _flatten(expr.lhs, op, out)
        _flatten(expr.rhs, op, out)
    else:
        out.append(expr)


def _match_select_minmax(stmt: ScalarAssign) -> Optional[BinOpKind]:
    """``s = (e cmp s) ? e : s`` and permutations → min/max."""
    v = stmt.value
    if not isinstance(v, Select) or not isinstance(v.cond, Compare):
        return None
    name = stmt.name

    def is_s(e: Expr) -> bool:
        return isinstance(e, ScalarRef) and e.name == name

    t, f, c = v.if_true, v.if_false, v.cond
    # One arm must keep s, the other supply the candidate value.
    if is_s(f) and not _reads_in(t, name):
        candidate_on_true = True
    elif is_s(t) and not _reads_in(f, name):
        candidate_on_true = False
    else:
        return None
    op = _minmax_from_cmp(c, name)
    if op is None:
        return None
    if not candidate_on_true:
        # The candidate is taken when the comparison is false, which
        # inverts the min/max sense.
        op = BinOpKind.MIN if op is BinOpKind.MAX else BinOpKind.MAX
    return op


def _minmax_from_cmp(c: Compare, name: str) -> Optional[BinOpKind]:
    def is_s(e: Expr) -> bool:
        return isinstance(e, ScalarRef) and e.name == name

    # ``e > s`` selecting e → max; ``e < s`` → min (and mirrored forms).
    if is_s(c.rhs) and not _reads_in(c.lhs, name):
        if c.op in (CmpKind.GT, CmpKind.GE):
            return BinOpKind.MAX
        if c.op in (CmpKind.LT, CmpKind.LE):
            return BinOpKind.MIN
    if is_s(c.lhs) and not _reads_in(c.rhs, name):
        if c.op in (CmpKind.LT, CmpKind.LE):
            return BinOpKind.MAX
        if c.op in (CmpKind.GT, CmpKind.GE):
            return BinOpKind.MIN
    return None


def _match_guarded_minmax(kernel: LoopKernel, name: str) -> Optional[BinOpKind]:
    """``if (e cmp s) s = e;`` at the top level of the body."""
    for stmt in kernel.body:
        if not isinstance(stmt, IfBlock) or stmt.else_body:
            continue
        if len(stmt.then_body) != 1:
            continue
        inner = stmt.then_body[0]
        if not isinstance(inner, ScalarAssign) or inner.name != name:
            continue
        if _reads_in(inner.value, name):
            continue
        if not isinstance(stmt.cond, Compare):
            continue
        op = _minmax_from_cmp(stmt.cond, name)
        if op is not None:
            return op
    return None


def classify_scalars(kernel: LoopKernel) -> dict[str, ScalarInfo]:
    """Classify every declared scalar of ``kernel``."""
    out: dict[str, ScalarInfo] = {}
    for name in kernel.scalars:
        events = _scalar_events(kernel.body, name)
        writes = [e for e in events if e.kind == "write"]
        if not writes:
            out[name] = ScalarInfo(name, ScalarClass.PARAM)
            continue

        first = events[0]
        if first.kind == "write" and first.guard_depth == 0:
            # Defined before any use, unconditionally → iteration-private.
            out[name] = ScalarInfo(name, ScalarClass.PRIVATE)
            continue

        write_stmts = {id(w.stmt) for w in writes}
        # Reads of the scalar must all belong to the updates themselves
        # (the RHS reads and, for guarded forms, the guards).
        extra_reads = [
            e
            for e in events
            if e.kind == "read"
            and id(e.stmt) not in write_stmts
            and not any(
                _is_guard_of(kernel, e.stmt, w.stmt) for w in writes
            )
        ]
        if not extra_reads:
            # Every update must match the same associative operator —
            # chained updates (``sum += a[i]; ... sum += b[i];``) are
            # still one reduction (TSVC s319).
            ops = set()
            for w in writes:
                wstmt = w.stmt
                assert isinstance(wstmt, ScalarAssign)
                op = _match_plain_reduction(wstmt) or _match_select_minmax(wstmt)
                ops.add(op)
            if len(ops) == 1 and None not in ops:
                out[name] = ScalarInfo(
                    name,
                    ScalarClass.REDUCTION,
                    op=ops.pop(),
                    guarded=any(w.guard_depth > 0 for w in writes),
                )
                continue
            if len(writes) == 1:
                op = _match_guarded_minmax(kernel, name)
                if op is not None:
                    out[name] = ScalarInfo(
                        name, ScalarClass.REDUCTION, op=op, guarded=True
                    )
                    continue
        out[name] = ScalarInfo(name, ScalarClass.RECURRENCE)
    return out


def _is_guard_of(kernel: LoopKernel, read_stmt, write_stmt) -> bool:
    """True if ``read_stmt`` is an IfBlock directly guarding ``write_stmt``."""
    if not isinstance(read_stmt, IfBlock):
        return False
    return any(s is write_stmt for s in read_stmt.then_body) or any(
        s is write_stmt for s in read_stmt.else_body
    )


def reductions_of(kernel: LoopKernel) -> list[ScalarInfo]:
    return [
        info
        for info in classify_scalars(kernel).values()
        if info.klass is ScalarClass.REDUCTION
    ]


def recurrences_of(kernel: LoopKernel) -> list[ScalarInfo]:
    return [
        info
        for info in classify_scalars(kernel).values()
        if info.klass is ScalarClass.RECURRENCE
    ]
