"""Arithmetic-intensity analysis of lowered streams.

Slide 9's diagnosis — "arithmetic intensity can have a major impact on
speedup, e.g. if code is memory bound" — motivates the rated feature
set.  This module computes the quantity directly: flops (or more
generally, compute operations) per byte of memory traffic, plus the
machine-balance comparison that predicts memory-boundedness.  The
extended cost model (the paper's "add more code features" next step)
uses these as explicit features.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.minstr import MStream
from ..targets.base import Target
from ..targets.classes import IClass

#: Instruction classes counted as "compute" for intensity purposes.
COMPUTE_CLASSES = frozenset(
    {
        IClass.ADD,
        IClass.MUL,
        IClass.FMA,
        IClass.DIV,
        IClass.SQRT,
        IClass.EXP,
        IClass.ABS,
        IClass.MINMAX,
        IClass.CMP,
        IClass.BLEND,
        IClass.LOGIC,
        IClass.SHIFT,
        IClass.CVT,
    }
)

#: Operations one instruction of a class performs per lane (FMA is 2).
OPS_PER_LANE = {IClass.FMA: 2.0, IClass.EXP: 8.0}


@dataclass(frozen=True)
class IntensityReport:
    """Compute/traffic profile of one stream."""

    ops_per_iter: float
    bytes_per_iter: float
    elems_per_iter: int

    @property
    def intensity(self) -> float:
        """Operations per byte of traffic (∞-safe: 0 bytes → big)."""
        if self.bytes_per_iter <= 0:
            return float("inf") if self.ops_per_iter > 0 else 0.0
        return self.ops_per_iter / self.bytes_per_iter

    @property
    def ops_per_elem(self) -> float:
        return self.ops_per_iter / max(1, self.elems_per_iter)

    @property
    def bytes_per_elem(self) -> float:
        return self.bytes_per_iter / max(1, self.elems_per_iter)


def analyze_intensity(stream: MStream) -> IntensityReport:
    """Arithmetic intensity of a lowered stream (per body iteration)."""
    ops = 0.0
    for ins in stream.body:
        if ins.iclass in COMPUTE_CLASSES:
            ops += ins.weight * ins.lanes * OPS_PER_LANE.get(ins.iclass, 1.0)
    return IntensityReport(
        ops_per_iter=ops,
        bytes_per_iter=stream.bytes_per_iter(),
        elems_per_iter=stream.elems_per_iter,
    )


def machine_balance(target: Target, working_set_bytes: int) -> float:
    """The target's ops-per-byte break-even point for a working set.

    Peak compute throughput here is the FP-port count (one op per port
    per cycle — FMA counts double) against the sustainable bandwidth of
    the cache level the working set lands in.  Streams whose intensity
    falls below this balance are bandwidth-bound.
    """
    fp_ports = target.ports.get("fp", 1)
    # 2 ops/FMA × ports × f32 lanes per full vector register.
    peak_ops_per_cycle = 2.0 * fp_ports * (target.vector_bits // 32)
    bw = target.cache.bandwidth_for(working_set_bytes)
    return peak_ops_per_cycle / bw


def memory_bound_ratio(
    stream: MStream, target: Target
) -> float:
    """How far below machine balance the stream sits (>1 ⇒ memory-bound).

    Ratio of the machine's balance point to the stream's intensity;
    values above 1 mean the stream cannot feed the FP pipes from the
    cache level its working set occupies.
    """
    report = analyze_intensity(stream)
    balance = machine_balance(target, stream.working_set_bytes)
    if report.intensity <= 0:
        return float("inf")
    return balance / report.intensity
