"""Kernel analyses: access patterns, dependences, scalar classification.

The pass-managed layer (caching, dataflow, the race detector, lint,
and structured remarks) lives in :mod:`repro.analysis.framework`.
"""

from . import framework
from .framework.ranges import SafetyReport, crosscheck_kernel, prove_safe
from .ranges import Interval, KernelRanges, analyze_ranges
from .access import (
    AccessInfo,
    AccessPattern,
    classify_stride,
    collect_accesses,
    dim_strides,
    linearize,
)
from .dependence import (
    DepKind,
    DepStatus,
    Dependence,
    DependenceInfo,
    analyze_dependences,
)
from .intensity import (
    COMPUTE_CLASSES,
    IntensityReport,
    analyze_intensity,
    machine_balance,
    memory_bound_ratio,
)
from .reduction import (
    REDUCTION_IDENTITY,
    ScalarClass,
    ScalarInfo,
    classify_scalars,
    recurrences_of,
    reductions_of,
)

__all__ = [
    "framework",
    "Interval",
    "KernelRanges",
    "SafetyReport",
    "analyze_ranges",
    "crosscheck_kernel",
    "prove_safe",
    "AccessInfo",
    "AccessPattern",
    "classify_stride",
    "collect_accesses",
    "dim_strides",
    "linearize",
    "DepKind",
    "DepStatus",
    "Dependence",
    "DependenceInfo",
    "analyze_dependences",
    "COMPUTE_CLASSES",
    "IntensityReport",
    "analyze_intensity",
    "machine_balance",
    "memory_bound_ratio",
    "REDUCTION_IDENTITY",
    "ScalarClass",
    "ScalarInfo",
    "classify_scalars",
    "recurrences_of",
    "reductions_of",
]
