"""Value-range abstract interpretation over the loop IR.

The engine answers, *before any iteration runs*, the questions the
compiled tiers otherwise answer with per-element runtime checks: what
interval can this scalar hold, can this subscript leave ``[0,
extent)``, is this guard ever false, can this shift count reach the
operand width?  It is the repo's analogue of the ValueTracking /
ScalarEvolution layer the LLVM vectorizer (which the paper's cost
model targets) leans on for legality and overhead questions.

Three layers:

* :class:`Interval` — a classic interval lattice ``[lo, hi]`` over the
  extended number line, plus a ``maybe_nan`` bit for float values (a
  compare against a possibly-NaN value is never *definitely* true).
  Integer arithmetic that could leave the operand dtype's value range
  widens to the full dtype range, mirroring the ``-fwrapv`` wrapping
  semantics of the native tier rather than pretending overflow cannot
  happen.
* an abstract evaluator for every ``Expr`` node under an environment
  mapping scalars and induction variables to intervals.  Loads from
  float arrays are unknown (``[-inf, inf]``, maybe-NaN); loads from
  integer arrays are only bounded by their dtype — *content* bounds
  for index arrays come from the measurement-harness data contract and
  are applied by the bounds pass, never here, so every fact this
  module derives holds for arbitrary buffer contents.
* :func:`analyze_ranges` — a fixpoint over the loop body for the
  loop-carried scalars, path-joining across ``IfBlock`` arms, with
  widening after :data:`WIDEN_AFTER` unstable rounds so recurrences
  like ``s = s + 1`` terminate immediately instead of iterating the
  trip count.  The result records the stable environment *before every
  statement* (pre-order), which is what consumers query: a guard's
  condition is evaluated in the env at its own program point.

Soundness note: float endpoint arithmetic is performed in Python
floats (f64).  ``Convert`` to ``f32`` nudges finite endpoints outward
by one f32 ULP so narrowing rounding can never move a true value
outside the reported interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..ir.expr import (
    Affine,
    BinOp,
    BinOpKind,
    CmpKind,
    Compare,
    Const,
    Convert,
    Expr,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
    UnOpKind,
)
from ..ir.kernel import LoopKernel
from ..ir.stmt import IfBlock, ScalarAssign, Stmt
from ..ir.types import DType

__all__ = [
    "Interval",
    "KernelRanges",
    "WIDEN_AFTER",
    "analyze_ranges",
    "affine_interval",
    "INT_BOUNDS",
]

INF = math.inf

#: Value range of each integer dtype (wrapping arithmetic stays inside).
INT_BOUNDS = {
    DType.I32: (-(2**31), 2**31 - 1),
    DType.I64: (-(2**63), 2**63 - 1),
}

#: Unstable fixpoint rounds tolerated before endpoints are widened.
WIDEN_AFTER = 3

#: Hard cap on fixpoint rounds (widening makes this unreachable in
#: practice; the cap turns a logic bug into a conservative answer).
MAX_ROUNDS = 16


@dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` with an explicit maybe-NaN bit for float values.

    ``lo``/``hi`` are Python ints or floats; ``±inf`` means unbounded.
    The empty interval is not representable — every IR value exists.
    """

    lo: float
    hi: float
    maybe_nan: bool = False

    def __post_init__(self) -> None:
        if self.lo > self.hi:  # pragma: no cover - constructor guard
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def exact(v) -> "Interval":
        if isinstance(v, float) and math.isnan(v):
            return Interval(-INF, INF, maybe_nan=True)
        return Interval(v, v)

    @staticmethod
    def top_float() -> "Interval":
        return Interval(-INF, INF, maybe_nan=True)

    @staticmethod
    def top(dtype: DType) -> "Interval":
        if dtype in INT_BOUNDS:
            lo, hi = INT_BOUNDS[dtype]
            return Interval(lo, hi)
        if dtype is DType.BOOL:
            return Interval(0, 1)
        return Interval.top_float()

    # -- queries ------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi and not self.maybe_nan

    def contains(self, v) -> bool:
        if isinstance(v, float) and math.isnan(v):
            return self.maybe_nan
        return self.lo <= v <= self.hi

    def definitely_true(self) -> bool:
        """As a truth value: every concrete value is nonzero."""
        return not self.maybe_nan and (self.hi < 0 or self.lo > 0)

    def definitely_false(self) -> bool:
        return not self.maybe_nan and self.lo == 0 and self.hi == 0

    # -- lattice ------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.maybe_nan or other.maybe_nan,
        )

    def widen(self, newer: "Interval", dtype: DType) -> "Interval":
        """Classic interval widening: an unstable endpoint jumps to the
        dtype's extreme so loop-carried growth converges in one step."""
        blo, bhi = (
            INT_BOUNDS[dtype] if dtype in INT_BOUNDS else (-INF, INF)
        )
        if dtype is DType.BOOL:
            blo, bhi = 0, 1
        lo = self.lo if newer.lo >= self.lo else blo
        hi = self.hi if newer.hi <= self.hi else bhi
        return Interval(lo, hi, self.maybe_nan or newer.maybe_nan)

    def clamp_dtype(self, dtype: DType) -> "Interval":
        """Result discipline after integer arithmetic: an interval that
        may have wrapped is widened to the dtype's full value range."""
        if dtype in INT_BOUNDS:
            blo, bhi = INT_BOUNDS[dtype]
            if self.lo < blo or self.hi > bhi:
                return Interval(blo, bhi)
        if dtype is DType.BOOL and (self.lo < 0 or self.hi > 1):
            return Interval(0, 1)
        return self

    def __str__(self) -> str:
        nan = "?nan" if self.maybe_nan else ""
        return f"[{self.lo}, {self.hi}]{nan}"


def _mul_endpoint(a: float, b: float) -> float:
    # inf * 0 is NaN in IEEE; for interval endpoints the product of a
    # zero bound and an unbounded one is 0 (the bound stays finite).
    if (a == 0 and math.isinf(b)) or (b == 0 and math.isinf(a)):
        return 0.0
    return a * b


def _binop_interval(op: BinOpKind, a: Interval, b: Interval, dtype: DType) -> Interval:
    nan = a.maybe_nan or b.maybe_nan
    if op is BinOpKind.ADD:
        if (a.lo == -INF and b.hi == INF) or (a.hi == INF and b.lo == -INF):
            nan = nan or dtype.is_float  # inf + -inf
        out = Interval(a.lo + b.lo, a.hi + b.hi, nan)
    elif op is BinOpKind.SUB:
        if (a.lo == -INF and b.lo == -INF) or (a.hi == INF and b.hi == INF):
            nan = nan or dtype.is_float
        out = Interval(a.lo - b.hi, a.hi - b.lo, nan)
    elif op is BinOpKind.MUL:
        ps = [
            _mul_endpoint(x, y)
            for x in (a.lo, a.hi)
            for y in (b.lo, b.hi)
        ]
        if dtype.is_float and (
            (a.contains(0) and (math.isinf(b.lo) or math.isinf(b.hi)))
            or (b.contains(0) and (math.isinf(a.lo) or math.isinf(a.hi)))
        ):
            nan = True  # 0 * inf
        out = Interval(min(ps), max(ps), nan)
    elif op is BinOpKind.DIV:
        if b.contains(0):
            # x/0 is ±inf or NaN under numpy's suppressed errstate;
            # integer division additionally routes through float64.
            return Interval(-INF, INF, True) if dtype.is_float else Interval.top(dtype)
        ps = [x / y for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
        if math.isinf(a.lo) or math.isinf(a.hi):
            nan = nan or dtype.is_float  # inf/inf
        if dtype.is_int:
            # np.divide is a true divide; the result is cast back with
            # C truncation (monotonic, so endpoint trunc is sound).
            ps = [math.trunc(p) for p in ps]
        out = Interval(min(ps), max(ps), nan)
    elif op is BinOpKind.MIN:
        # NaN-propagating min/max (np.minimum): a NaN operand wins, so
        # the nan bit carries but the numeric envelope is the min/max.
        out = Interval(min(a.lo, b.lo), min(a.hi, b.hi), nan)
    elif op is BinOpKind.MAX:
        out = Interval(max(a.lo, b.lo), max(a.hi, b.hi), nan)
    elif op in (BinOpKind.AND, BinOpKind.OR, BinOpKind.XOR):
        if a.lo >= 0 and b.lo >= 0 and a.hi < INF and b.hi < INF:
            # Nonnegative bitwise results stay below the next power of
            # two covering both operands.
            bound = 1
            while bound <= max(a.hi, b.hi):
                bound *= 2
            hi = (
                min(a.hi, b.hi)
                if op is BinOpKind.AND
                else bound - 1
            )
            out = Interval(0, hi)
        else:
            out = Interval.top(dtype)
    elif op in (BinOpKind.SHL, BinOpKind.SHR):
        width = 64 if dtype is DType.I64 else 32
        if b.lo < 0 or b.hi >= width or a.lo < 0 or math.isinf(a.hi):
            # Guarded-shift semantics (count >= width -> 0 / sign) and
            # negative operands: give up precisely, stay sound.
            return Interval.top(dtype)
        if op is BinOpKind.SHL:
            out = Interval(a.lo * 2**b.lo, a.hi * 2**b.hi)
        else:
            out = Interval(a.lo // 2**b.hi, a.hi // 2**b.lo)
    else:  # pragma: no cover - exhaustive over BinOpKind
        out = Interval.top(dtype)
    if dtype is DType.F32 and op in (
        BinOpKind.ADD,
        BinOpKind.SUB,
        BinOpKind.MUL,
        BinOpKind.DIV,
    ):
        # Endpoint arithmetic above is f64; the concrete op rounds to
        # the coarser f32 grid, which can land just outside the f64
        # envelope.  One f32 ULP of padding restores soundness.
        out = Interval(
            out.lo - _f32_pad(out.lo), out.hi + _f32_pad(out.hi), out.maybe_nan
        )
    return out.clamp_dtype(dtype)


def _compare_interval(op: CmpKind, a: Interval, b: Interval) -> Interval:
    """Abstract compare: {0}, {1}, or {0,1} as an interval."""
    if not (a.maybe_nan or b.maybe_nan):
        verdict: Optional[bool] = None
        if op is CmpKind.LT:
            verdict = True if a.hi < b.lo else (False if a.lo >= b.hi else None)
        elif op is CmpKind.LE:
            verdict = True if a.hi <= b.lo else (False if a.lo > b.hi else None)
        elif op is CmpKind.GT:
            verdict = True if a.lo > b.hi else (False if a.hi <= b.lo else None)
        elif op is CmpKind.GE:
            verdict = True if a.lo >= b.hi else (False if a.hi < b.lo else None)
        elif op is CmpKind.EQ:
            if a.is_constant and b.is_constant:
                verdict = a.lo == b.lo
            elif a.hi < b.lo or a.lo > b.hi:
                verdict = False
        elif op is CmpKind.NE:
            if a.is_constant and b.is_constant:
                verdict = a.lo != b.lo
            elif a.hi < b.lo or a.lo > b.hi:
                verdict = True
        if verdict is not None:
            return Interval.exact(1 if verdict else 0)
    elif op is CmpKind.NE and (a.hi < b.lo or a.lo > b.hi):
        # Disjoint envelopes compare unequal even when NaN is possible
        # (NaN != x is True as well).
        return Interval.exact(1)
    return Interval(0, 1)


def _f32_pad(v: float) -> float:
    """One f32 ULP of padding for a finite endpoint (soundness margin
    for round-to-nearest when narrowing f64 -> f32)."""
    if math.isinf(v) or v == 0.0:
        return 0.0
    return abs(v) * 1.2e-7 + 1e-45


def affine_interval(af: Affine, trips: list[int]) -> tuple[int, int]:
    """Exact value range of an affine index over the iteration space."""
    lo = hi = af.offset
    for lvl, c in enumerate(af.coeffs):
        if lvl >= len(trips) or c == 0:
            continue
        span = c * (trips[lvl] - 1)
        lo += min(0, span)
        hi += max(0, span)
    return lo, hi


# ---------------------------------------------------------------------------
# Abstract evaluation
# ---------------------------------------------------------------------------


class _Evaluator:
    def __init__(self, kernel: LoopKernel):
        self.kernel = kernel
        self.trips = [lp.trip for lp in kernel.loops]

    def eval(self, e: Expr, env: dict[str, Interval]) -> Interval:
        if isinstance(e, Const):
            if e.dtype.is_int:
                from ..sim.ufuncs import NP_DTYPE

                return Interval.exact(int(NP_DTYPE[e.dtype](e.value)))
            if e.dtype is DType.BOOL:
                return Interval.exact(1 if e.value else 0)
            v = float(e.value)
            if math.isnan(v):
                return Interval(-INF, INF, True)
            return Interval.exact(v)
        if isinstance(e, ScalarRef):
            got = env.get(e.name)
            return got if got is not None else Interval.top(e.dtype)
        if isinstance(e, IterValue):
            if e.level < len(self.trips):
                return Interval(0, self.trips[e.level] - 1)
            return Interval.top(e.dtype)
        if isinstance(e, Load):
            # Array *contents* are unknown here; the harness data
            # contract for integer arrays belongs to the bounds pass.
            decl = self.kernel.arrays.get(e.array)
            return Interval.top(decl.dtype if decl is not None else e.dtype)
        if isinstance(e, Convert):
            return self.convert(self.eval(e.operand, env), e.operand.dtype, e.dtype)
        if isinstance(e, UnOp):
            return self.unop(e, env)
        if isinstance(e, BinOp):
            a = self.convert(self.eval(e.lhs, env), e.lhs.dtype, e.dtype)
            b = self.convert(self.eval(e.rhs, env), e.rhs.dtype, e.dtype)
            if e.op in (BinOpKind.SHL, BinOpKind.SHR):
                # Shift operands are promoted, not cast (numpy rules);
                # re-evaluate uncast for the count side.
                a = self.eval(e.lhs, env)
                b = self.eval(e.rhs, env)
            return _binop_interval(e.op, a, b, e.dtype)
        if isinstance(e, Compare):
            return _compare_interval(
                e.op, self.eval(e.lhs, env), self.eval(e.rhs, env)
            )
        if isinstance(e, Select):
            c = self.eval(e.cond, env)
            t = self.convert(self.eval(e.if_true, env), e.if_true.dtype, e.dtype)
            f = self.convert(self.eval(e.if_false, env), e.if_false.dtype, e.dtype)
            if c.definitely_true():
                return t
            if c.definitely_false():
                return f
            return t.join(f)
        return Interval.top(getattr(e, "dtype", DType.F64))

    def unop(self, e: UnOp, env: dict[str, Interval]) -> Interval:
        x = self.eval(e.operand, env)
        dt = e.dtype
        if e.op is UnOpKind.NEG:
            return Interval(-x.hi, -x.lo, x.maybe_nan).clamp_dtype(dt)
        if e.op is UnOpKind.ABS:
            lo = 0 if x.contains(0) else min(abs(x.lo), abs(x.hi))
            return Interval(lo, max(abs(x.lo), abs(x.hi)), x.maybe_nan).clamp_dtype(dt)
        if e.op is UnOpKind.SQRT:
            # guarded_sqrt computes sqrt(|x|): never NaN for numbers.
            m = max(abs(x.lo), abs(x.hi))
            hi = INF if math.isinf(m) else math.sqrt(m)
            return Interval(0, hi + _f32_pad(hi), x.maybe_nan)
        if e.op is UnOpKind.EXP:
            try:
                lo = math.exp(x.lo) if x.lo > -INF else 0.0
            except OverflowError:
                lo = INF
            try:
                hi = math.exp(x.hi) if x.hi < INF else INF
            except OverflowError:
                hi = INF
            return Interval(lo - _f32_pad(lo), hi + _f32_pad(hi), x.maybe_nan)
        if e.op is UnOpKind.NOT:
            if x.definitely_true():
                return Interval.exact(0)
            if x.definitely_false():
                return Interval.exact(1)
            return Interval(0, 1)
        return Interval.top(dt)  # pragma: no cover - exhaustive

    def convert(self, x: Interval, src: DType, dst: DType) -> Interval:
        if src is dst:
            return x
        if dst is DType.BOOL:
            if x.definitely_true():
                return Interval.exact(1)
            if x.definitely_false():
                return Interval.exact(0)
            return Interval(0, 1)
        if dst.is_int:
            if x.maybe_nan or math.isinf(x.lo) or math.isinf(x.hi):
                return Interval.top(dst)
            return Interval(math.trunc(x.lo), math.trunc(x.hi)).clamp_dtype(dst)
        # -> float: int values are exact in f64; narrowing to f32 pads
        # endpoints by one ULP so rounding cannot escape the interval.
        lo, hi = float(x.lo), float(x.hi)
        if dst is DType.F32:
            lo, hi = lo - _f32_pad(lo), hi + _f32_pad(hi)
        return Interval(lo, hi, x.maybe_nan)


# ---------------------------------------------------------------------------
# Fixpoint over the loop body
# ---------------------------------------------------------------------------


@dataclass
class KernelRanges:
    """Stable abstract state of one kernel.

    ``entry`` holds at the top of *every* iteration (the loop-carried
    fixpoint); ``at_stmt[i]`` holds immediately before pre-order
    statement ``Si`` in any iteration.  ``iv[level]`` is the exact
    induction-variable range.  ``rounds``/``widened`` document fixpoint
    behavior for the termination tests.
    """

    kernel: LoopKernel
    iv: tuple[Interval, ...]
    entry: dict[str, Interval]
    at_stmt: dict[int, dict[str, Interval]]
    rounds: int
    widened: tuple[str, ...]

    def eval(self, expr: Expr, stmt_index: Optional[int] = None) -> Interval:
        """Interval of ``expr`` at program point ``Si`` (entry if None)."""
        env = self.entry if stmt_index is None else self.at_stmt.get(
            stmt_index, self.entry
        )
        return _Evaluator(self.kernel).eval(expr, env)

    def affine_range(self, af: Affine) -> tuple[int, int]:
        return affine_interval(af, [lp.trip for lp in self.kernel.loops])


def _transfer(
    kernel: LoopKernel,
    ev: _Evaluator,
    stmts: tuple[Stmt, ...],
    env: dict[str, Interval],
    counter: list[int],
    record: Optional[dict[int, dict[str, Interval]]],
) -> dict[str, Interval]:
    """Abstract execution of a statement list (pre-order numbering)."""
    for stmt in stmts:
        idx = counter[0]
        counter[0] += 1
        if record is not None:
            record[idx] = dict(env)
        if isinstance(stmt, ScalarAssign):
            decl = kernel.scalars[stmt.name]
            val = ev.eval(stmt.value, env)
            env[stmt.name] = ev.convert(val, stmt.value.dtype, decl.dtype)
        elif isinstance(stmt, IfBlock):
            cond = ev.eval(stmt.cond, env)
            if cond.definitely_true():
                env = _transfer(kernel, ev, stmt.then_body, env, counter, record)
                _skip(stmt.else_body, counter, record, env)
            elif cond.definitely_false():
                _skip(stmt.then_body, counter, record, env)
                env = _transfer(kernel, ev, stmt.else_body, env, counter, record)
            else:
                env_then = _transfer(
                    kernel, ev, stmt.then_body, dict(env), counter, record
                )
                env_else = _transfer(
                    kernel, ev, stmt.else_body, dict(env), counter, record
                )
                env = {
                    n: env_then[n].join(env_else[n]) for n in env_then
                }
        # ArrayStore: array contents are not tracked, no scalar effect.
    return env


def _skip(stmts, counter, record, env) -> None:
    """Number (and record the env of) statements on a dead path."""
    from ..ir.stmt import walk_stmts

    for _ in walk_stmts(tuple(stmts)):
        if record is not None:
            record[counter[0]] = dict(env)
        counter[0] += 1


def analyze_ranges(kernel: LoopKernel, assume_inits: bool = True) -> KernelRanges:
    """Fixpoint interval analysis of one kernel (see module doc).

    ``assume_inits`` seeds scalars from their declared initial values —
    sound for the measurement harness, which always starts kernels from
    ``initial_scalars``.  With ``assume_inits=False`` every scalar
    starts at its dtype top: the resulting facts hold for *any* caller-
    supplied scalar values, which is the contract transforms (guard
    folding, shift-wrapper elision) must meet because the executors
    accept scalar overrides.  Per-statement precision for temporaries
    assigned before use is unaffected — only the entry seed differs.
    """
    ev = _Evaluator(kernel)
    iv = tuple(Interval(0, lp.trip - 1) for lp in kernel.loops)
    from ..sim.ufuncs import NP_DTYPE

    env: dict[str, Interval] = {}
    for name, decl in kernel.scalars.items():
        if not assume_inits:
            env[name] = Interval.top(decl.dtype)
            continue
        init = NP_DTYPE[decl.dtype](decl.init)
        if decl.dtype.is_int:
            env[name] = Interval.exact(int(init))
        elif decl.dtype is DType.BOOL:
            env[name] = Interval.exact(1 if init else 0)
        else:
            env[name] = Interval.exact(float(init))

    widened: set[str] = set()
    rounds = 0
    for rounds in range(1, MAX_ROUNDS + 1):
        out = _transfer(kernel, ev, kernel.body, dict(env), [0], None)
        nxt = {n: env[n].join(out[n]) for n in env}
        if nxt == env:
            break
        if rounds >= WIDEN_AFTER:
            for n in env:
                if nxt[n] != env[n]:
                    nxt[n] = env[n].widen(nxt[n], kernel.scalars[n].dtype)
                    widened.add(n)
        env = nxt
    # One recording pass over the stable env for per-statement state.
    record: dict[int, dict[str, Interval]] = {}
    _transfer(kernel, ev, kernel.body, dict(env), [0], record)
    return KernelRanges(
        kernel=kernel,
        iv=iv,
        entry=env,
        at_stmt=record,
        rounds=rounds,
        widened=tuple(sorted(widened)),
    )
