"""Materialize and measure individual plan points.

A :class:`~repro.vectorize.plan.PlanPoint` names a transformation
recipe; this module runs it through the existing pipeline stages —
pre-vectorization unroll (:mod:`repro.vectorize.unroll`), the LLV/SLP
vectorizers, machine lowering, and the interleave stream transform —
and times the result with the same analytic model the measurement
harness uses.  The scalar baseline is always the *original* kernel, so
every point's speedup is comparable and the scalar point is exactly
1.0 by construction.

Remainder accounting: the vector stream of an unrolled-by-``u`` kernel
counts its remainder in *unrolled* iterations, each worth ``u``
original scalar iterations — the tail therefore costs
``remainder * u`` original scalar iterations at the original kernel's
per-iteration rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..codegen.interleave import interleave_stream
from ..codegen.minstr import MStream
from ..codegen.scalar_gen import lower_scalar
from ..codegen.slp_gen import lower_slp
from ..codegen.vector_gen import lower_vector
from ..ir.kernel import LoopKernel
from ..sim.measure import estimate_guard_probs
from ..sim.timing import analyze_stream
from ..targets.base import Target
from ..vectorize.llv import vectorize_loop
from ..vectorize.plan import (
    PlanPoint,
    VectorizationFailure,
    VectorizationPlan,
    is_plan,
)
from ..vectorize.slp import slp_vectorize
from ..vectorize.unroll import UnrollError, unroll


@dataclass(frozen=True)
class PointMeasurement:
    """Analytic ground truth for one plan point."""

    point: PlanPoint
    ok: bool
    speedup: float = 1.0
    scalar_cycles: float = 0.0
    vector_cycles: float = 0.0
    reason: str = ""


def base_kernel(
    kernel: LoopKernel, u: int, bases: Optional[dict] = None
) -> LoopKernel:
    """``kernel`` unrolled by ``u`` (cached in ``bases`` across points)."""
    if u == 1:
        return kernel
    if bases is not None and u in bases:
        return bases[u]
    unrolled = unroll(kernel, u)
    if bases is not None:
        bases[u] = unrolled
    return unrolled


def materialize_point(
    kernel: LoopKernel,
    target: Target,
    point: PlanPoint,
    *,
    bases: Optional[dict] = None,
) -> Union[VectorizationPlan, VectorizationFailure, None]:
    """Run the point's recipe through the real vectorizers.

    Returns ``None`` for the scalar point, a plan when the recipe
    applies, and the vectorizer's :class:`VectorizationFailure` when it
    refuses — enumeration is expected to have pruned those, but the
    search degrades per-point instead of trusting that.
    """
    if point.is_scalar:
        return None
    try:
        base = base_kernel(kernel, point.unroll, bases)
    except UnrollError as exc:
        return VectorizationFailure(kernel, "unroll", str(exc))
    if point.strategy == "slp":
        return slp_vectorize(base, target, point.vf)
    return vectorize_loop(base, target, point.vf)


def lower_point(
    plan: VectorizationPlan, point: PlanPoint, target: Target
) -> MStream:
    """The point's machine (or IR, via ``GENERIC_IR``) vector stream."""
    stream = (
        lower_slp(plan, target)
        if plan.kind == "slp"
        else lower_vector(plan, target)
    )
    return interleave_stream(stream, point.interleave)


def measure_points(
    kernel: LoopKernel,
    target: Target,
    points: Sequence[PlanPoint],
    *,
    guard_probs: Optional[dict] = None,
    seed: int = 0,
) -> list[PointMeasurement]:
    """Analytic measurement of every point, scalar baseline shared.

    Deterministic (no jitter — plan choice must not chase noise) and
    in input order.
    """
    if guard_probs is None:
        guard_probs = estimate_guard_probs(kernel, seed=seed)
    sb = analyze_stream(
        lower_scalar(kernel, target, guard_probs=guard_probs), target
    )
    bases: dict = {}
    out: list[PointMeasurement] = []
    for point in points:
        if point.is_scalar:
            out.append(
                PointMeasurement(
                    point, True, 1.0, sb.total, sb.total, "baseline"
                )
            )
            continue
        result = materialize_point(kernel, target, point, bases=bases)
        if not is_plan(result):
            out.append(PointMeasurement(point, False, reason=result.reason))
            continue
        try:
            stream = lower_point(result, point, target)
        except ValueError as exc:
            out.append(PointMeasurement(point, False, reason=str(exc)))
            continue
        vb = analyze_stream(stream, target)
        vector_cycles = vb.total + (
            stream.remainder * point.unroll
        ) * sb.per_iter
        out.append(
            PointMeasurement(
                point,
                True,
                sb.total / max(vector_cycles, 1e-12),
                sb.total,
                vector_cycles,
            )
        )
    return out
