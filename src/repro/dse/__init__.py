"""Model-guided design-space exploration over vectorization plans.

The package turns the fitted speedup models into a *cost oracle* for a
search over the whole optimization-plan space — VF × interleave ×
unroll × strategy per kernel (see DESIGN.md §16):

* :mod:`.points` materializes and measures one
  :class:`~repro.vectorize.plan.PlanPoint` through the analytic
  pipeline (unroll → vectorize → lower → interleave → time);
* :mod:`.oracle` scores an entire candidate set in one batched
  featurize+predict through the shared matrix cache;
* :mod:`.search` holds the drivers — exhaustive, greedy hill-climbing,
  and an epsilon-greedy bandit over measured rewards — all
  deterministic under a seed;
* :mod:`.engine` memoizes searches on (kernel fingerprint, model
  fingerprint, target, driver, seed) with a chaos-hardened retry loop;
* :mod:`.experiment` is E14, the regret study (model-picked plan vs
  oracle-best vs the natural-VF default).
"""

from .engine import (
    clear_dse_cache,
    dse_cache_info,
    model_fingerprint,
    search_kernel,
)
from .oracle import candidate_samples, pick_best, score_points
from .points import PointMeasurement, materialize_point, measure_points
from .search import SearchResult

__all__ = [
    "PointMeasurement",
    "SearchResult",
    "candidate_samples",
    "clear_dse_cache",
    "dse_cache_info",
    "materialize_point",
    "measure_points",
    "model_fingerprint",
    "pick_best",
    "score_points",
    "search_kernel",
]
