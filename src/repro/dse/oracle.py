"""Batched cost-oracle scoring of a candidate set.

One kernel's plan points differ only in their vector block — the
scalar baseline features are shared — so the oracle builds one
*pseudo-sample* per vector point (scalar features shared, vector
features from the point's ``GENERIC_IR`` lowering, exactly where the
training samples' features come from) and scores the whole set in a
single batched predict through the shared matrix cache
(:mod:`repro.costmodel.matrix`).  No per-point model calls: the model
sees one design matrix per candidate set, and repeated scoring of the
same set hits the bundle cache.

Scalar points are pinned to exactly 1.0 outside the batch (their
speedup is 1.0 by definition, not a prediction); points that fail to
materialize score 0.0 so they can never win.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..codegen.scalar_gen import lower_scalar
from ..costmodel.base import Sample
from ..costmodel.featurize import feature_vector
from ..ir.kernel import LoopKernel
from ..sim.measure import estimate_guard_probs
from ..targets.base import Target
from ..targets.generic_ir import GENERIC_IR
from ..vectorize.plan import PlanPoint, is_plan
from .points import lower_point, materialize_point


def candidate_samples(
    kernel: LoopKernel,
    target: Target,
    points: Sequence[PlanPoint],
    *,
    guard_probs: Optional[dict] = None,
    seed: int = 0,
) -> tuple[list[Sample], list[int]]:
    """Pseudo-samples for the vector points of a candidate set.

    Returns ``(samples, indices)`` where ``indices[i]`` is the position
    in ``points`` that ``samples[i]`` scores; scalar points and points
    that do not materialize are absent.
    """
    if guard_probs is None:
        guard_probs = estimate_guard_probs(kernel, seed=seed)
    scalar_features = feature_vector(
        lower_scalar(kernel, target, guard_probs=guard_probs)
    )
    bases: dict = {}
    samples: list[Sample] = []
    indices: list[int] = []
    for i, point in enumerate(points):
        if point.is_scalar:
            continue
        result = materialize_point(kernel, target, point, bases=bases)
        if not is_plan(result):
            continue
        try:
            ir_stream = lower_point(result, point, GENERIC_IR)
        except ValueError:
            continue
        # Normalize the block mix *per original element*: an
        # interleaved/unrolled block retires ic·u× the elements of the
        # natural block per iteration, so its raw per-iteration counts
        # are inflated by the same factor.  The training distribution
        # only contains natural (ic=1, u=1) blocks; feeding inflated
        # counts to a nonnegative-weight count model makes every wide
        # point predict the VF clip.  After normalization the count
        # featurization is honestly ILP-blind — interleave variants
        # score like their base point (plus their real amortized
        # prologue/epilogue overhead) and the model deviates on
        # vf/strategy signal, not on count inflation.
        scale = 1.0 / (point.interleave * point.unroll)
        samples.append(
            Sample(
                name=f"{kernel.name}::{point.label()}",
                category=kernel.category,
                target=target.name,
                vf=point.vf,
                scalar_features=scalar_features,
                vector_features=feature_vector(ir_stream) * scale,
                measured_speedup=0.0,
                measured_scalar_cpi=0.0,
                measured_vector_cpi=0.0,
            )
        )
        indices.append(i)
    return samples, indices


def score_points(
    kernel: LoopKernel,
    target: Target,
    points: Sequence[PlanPoint],
    model,
    *,
    guard_probs: Optional[dict] = None,
    seed: int = 0,
) -> np.ndarray:
    """Model-predicted speedup per point, one batched predict.

    ``model`` is anything with ``predict_batch`` (the fitted speedup
    family); scalar points read exactly 1.0, unmaterializable points
    0.0.
    """
    scores = np.zeros(len(points), dtype=np.float64)
    for i, p in enumerate(points):
        if p.is_scalar:
            scores[i] = 1.0
    samples, indices = candidate_samples(
        kernel, target, points, guard_probs=guard_probs, seed=seed
    )
    if samples:
        preds = np.asarray(model.predict_batch(samples), dtype=np.float64)
        scores[indices] = preds
    return scores


def score_points_entry(
    kernel: LoopKernel,
    target: Target,
    points: Sequence[PlanPoint],
    entry,
    *,
    guard_probs: Optional[dict] = None,
) -> np.ndarray:
    """Like :func:`score_points` but through a registry
    :class:`~repro.serve.registry.ModelEntry` (the advisor path): the
    entry names its featurization, the design matrix comes from the
    shared cache, and the entry's stored weights predict."""
    from ..costmodel import matrix

    scores = np.zeros(len(points), dtype=np.float64)
    for i, p in enumerate(points):
        if p.is_scalar:
            scores[i] = 1.0
    samples, indices = candidate_samples(
        kernel, target, points, guard_probs=guard_probs
    )
    if samples:
        feature_fn = matrix.featurizer_by_key(entry.featurization)
        X = matrix.design_matrix(samples, feature_fn)
        preds = entry.predict(X, [float(s.vf) for s in samples])
        scores[indices] = np.asarray(preds, dtype=np.float64)
    return scores


def default_index(points: Sequence[PlanPoint]) -> int:
    """Where the natural-VF default sits: the first vector point when
    one exists (enumeration moves it to the front), else the scalar
    point."""
    for i, p in enumerate(points):
        if not p.is_scalar:
            return i
    return 0


#: Relative predicted improvement required to leave the default plan.
#: Normalized interleave/unroll variants differ from their base point
#: only by small amortized-overhead terms; without a margin those
#: epsilon differences would tip a strict argmax into arbitrary moves
#: the model has no real signal for.
DEVIATION_MARGIN = 0.02


def pick_best(
    points: Sequence[PlanPoint],
    scores: Sequence[float],
    *,
    margin: float = DEVIATION_MARGIN,
) -> tuple[int, PlanPoint, float]:
    """Margin-guarded argmax with the default as the anchor.

    The search starts *at* the natural-VF default and only deviates
    when some point's score beats the anchor's by more than ``margin``
    (relative); among qualifying points the highest score wins, ties
    to the earliest in enumeration order.  A model that cannot
    distinguish candidates keeps today's behavior instead of wandering
    on epsilon differences, and every driver stays deterministic.
    """
    if not points:
        raise ValueError("empty candidate set")
    anchor = default_index(points)
    bar = scores[anchor] * (1.0 + margin)
    best = anchor
    for i in range(len(points)):
        if scores[i] > bar and scores[i] > scores[best]:
            best = i
    return best, points[best], float(scores[best])
