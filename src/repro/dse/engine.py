"""The memoized, fault-tolerant search engine.

``search_kernel`` is the one entry point the experiment, the advisor,
and the benchmarks call.  It layers two things over the raw drivers:

* **Memoization**, mirroring the experiment scheduler's engine memo:
  keys are (kernel fingerprint, model fingerprint, target, driver,
  seed, budget), with per-key locks so concurrent searchers of the
  same cell share one computation.  The model fingerprint hashes the
  fitted weights — bumping a registry model version (or refitting on
  new data) changes the weights and invalidates every dependent search.
  ``REPRO_DSE_CACHE=0`` disables the memo.
* **Chaos hardening**: injected faults (``REPRO_FAULTS``) land at the
  ``dse:<kernel>`` site inside a bounded retry loop.  The fault plan's
  decisions are sha256-seeded per (site, attempt), so retries drain the
  schedule deterministically and a faulted search converges to the
  bit-identical result of an unfaulted one — the property the chaos
  gate in ``benchmarks/smoke_dse.py`` asserts.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from ..ir.kernel import LoopKernel
from ..pipeline import faultinject
from ..pipeline.faultinject import FaultPlan, InjectedFault
from ..sim.compile import kernel_fingerprint
from ..targets.base import Target
from ..vectorize.plan import enumerate_plan_points
from . import oracle, points as points_mod, search

#: Attempts a chaos-injected search may burn before the fault is
#: considered permanent (matches the sweep supervisor's default).
MAX_ATTEMPTS = 5

_DSE_ENABLED = os.environ.get("REPRO_DSE_CACHE", "1") != "0"
_DSE_LOCK = threading.Lock()
_DSE_MEMO: dict[tuple, search.SearchResult] = {}
_DSE_KEY_LOCKS: dict[tuple, threading.Lock] = {}
_DSE_HITS = 0
_DSE_MISSES = 0


def clear_dse_cache() -> None:
    """Drop every memoized search (the cold-path benchmark reset)."""
    global _DSE_HITS, _DSE_MISSES
    with _DSE_LOCK:
        _DSE_MEMO.clear()
        _DSE_KEY_LOCKS.clear()
        _DSE_HITS = 0
        _DSE_MISSES = 0


def dse_cache_info() -> dict:
    with _DSE_LOCK:
        return {
            "enabled": _DSE_ENABLED,
            "entries": len(_DSE_MEMO),
            "hits": _DSE_HITS,
            "misses": _DSE_MISSES,
        }


@contextmanager
def dse_cache_disabled() -> Iterator[None]:
    """Every search recomputes (the benchmarks' cold-path emulation)."""
    global _DSE_ENABLED
    prior = _DSE_ENABLED
    _DSE_ENABLED = False
    try:
        yield
    finally:
        _DSE_ENABLED = prior


def model_fingerprint(model) -> str:
    """Digest of what decides a model's predictions: name + weights.

    Works for fitted :class:`~repro.costmodel.speedup.SpeedupModel`
    instances and registry entries alike — both expose ``weights``.
    An unfitted model hashes to a distinct "unfitted" cell so it can
    never alias a fitted one.
    """
    h = hashlib.sha256()
    name = getattr(model, "name", None) or getattr(model, "version", None)
    h.update(str(name or type(model).__name__).encode())
    try:
        w = getattr(model, "weights", None)
    except Exception:
        w = None
    if w is None:
        h.update(b"|unfitted")
    else:
        h.update(b"|")
        h.update(np.ascontiguousarray(np.asarray(w, dtype=np.float64)).tobytes())
    return h.hexdigest()[:16]


def _memo(key: tuple, compute):
    global _DSE_HITS, _DSE_MISSES
    if not _DSE_ENABLED:
        return compute()
    with _DSE_LOCK:
        if key in _DSE_MEMO:
            _DSE_HITS += 1
            return _DSE_MEMO[key]
        key_lock = _DSE_KEY_LOCKS.setdefault(key, threading.Lock())
    with key_lock:
        with _DSE_LOCK:
            if key in _DSE_MEMO:
                _DSE_HITS += 1
                return _DSE_MEMO[key]
        value = compute()
        with _DSE_LOCK:
            _DSE_MISSES += 1
            _DSE_MEMO[key] = value
    return value


def _search_once(
    kernel: LoopKernel,
    target: Target,
    model,
    driver: str,
    seed: int,
    budget: int,
    manager,
) -> search.SearchResult:
    points = enumerate_plan_points(kernel, target, manager=manager)
    if driver in ("bandit", "verified"):
        measurements = points_mod.measure_points(kernel, target, points)

        def reward(i: int) -> float:
            m = measurements[i]
            return m.speedup if m.ok else 0.0

        if driver == "bandit":
            return search.bandit(
                kernel.name, target.name, points, reward,
                seed=seed, budget=budget,
            )
        scores = oracle.score_points(kernel, target, points, model)
        return search.verified(
            kernel.name, target.name, points, scores, reward, seed=seed
        )
    scores = oracle.score_points(kernel, target, points, model)
    if driver == "hill_climb":
        return search.hill_climb(
            kernel.name, target.name, points, scores, seed=seed
        )
    if driver == "exhaustive":
        return search.exhaustive(
            kernel.name, target.name, points, scores, seed=seed
        )
    raise ValueError(
        f"unknown driver {driver!r}; expected one of {', '.join(search.DRIVERS)}"
    )


def search_kernel(
    kernel: LoopKernel,
    target: Target,
    model,
    *,
    driver: str = "exhaustive",
    seed: int = 0,
    budget: int = 0,
    manager=None,
    faults: Optional[FaultPlan] = None,
) -> search.SearchResult:
    """Search one kernel's plan space, memoized and chaos-hardened."""
    if driver not in search.DRIVERS:
        raise ValueError(
            f"unknown driver {driver!r}; expected one of {', '.join(search.DRIVERS)}"
        )
    plan = faults if faults is not None else faultinject.plan_from_env()
    key = (
        "dse",
        kernel_fingerprint(kernel),
        model_fingerprint(model),
        target.name,
        driver,
        int(seed),
        int(budget),
    )

    def compute() -> search.SearchResult:
        last: Optional[InjectedFault] = None
        for attempt in range(MAX_ATTEMPTS):
            try:
                faultinject.perturb(plan, f"dse:{kernel.name}", attempt)
                return _search_once(
                    kernel, target, model, driver, seed, budget, manager
                )
            except InjectedFault as exc:
                last = exc
        raise last  # the schedule never drained: surface the fault

    return _memo(key, compute)
