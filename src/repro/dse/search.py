"""Search drivers over a scored (or measurable) candidate set.

Three drivers, one contract: given the candidate points, return a
:class:`SearchResult` naming the chosen point, its score, and how many
evaluations the driver spent.  All three are deterministic — the
exhaustive and hill-climbing drivers have no randomness at all, and
the bandit derives every draw from its seed.

* ``exhaustive`` — strict argmax over the batched oracle scores; the
  space per kernel is small (tens of points), so this is the
  model-guided reference driver.
* ``hill_climb`` — greedy single-axis moves from the natural-VF
  default; evaluates only the frontier it visits, the classic DSE
  mapper shape (cf. ZigZag's mapping search).
* ``bandit`` — epsilon-greedy over *measured* rewards under a pull
  budget: the NeuroVectorizer-style learned-search contrast that pays
  measurements instead of model calls.
* ``verified`` — the deployment policy: the model prunes the space to
  a shortlist (default + top-K predicted), measurement decides among
  them.  The default is always shortlisted, so this arm can never do
  worse than today's natural-VF plan — the cost-model-prunes,
  measurement-verifies loop MATCH drives ZigZag's mapper with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..vectorize.plan import PlanPoint
from .oracle import default_index, pick_best

DRIVERS = ("exhaustive", "hill_climb", "bandit", "verified")

#: Shortlist size of the ``verified`` driver (default + top-K scored).
VERIFY_SHORTLIST = 3

#: Default bandit pulls per candidate (budget = factor × |points|).
BANDIT_BUDGET_FACTOR = 2
#: Exploration rate of the epsilon-greedy bandit.
BANDIT_EPSILON = 0.2


@dataclass(frozen=True)
class SearchResult:
    """One driver's verdict on one kernel's plan space."""

    kernel: str
    target: str
    driver: str
    seed: int
    best_index: int
    best: PlanPoint
    predicted: float
    points: tuple[PlanPoint, ...]
    scores: tuple[float, ...]
    evaluations: int

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "target": self.target,
            "driver": self.driver,
            "seed": self.seed,
            "best": self.best.to_dict(),
            "predicted": round(self.predicted, 9),
            "n_points": len(self.points),
            "evaluations": self.evaluations,
            "scores": [round(float(s), 9) for s in self.scores],
        }


def _result(
    kernel_name: str,
    target_name: str,
    driver: str,
    seed: int,
    points: Sequence[PlanPoint],
    scores: Sequence[float],
    best: int,
    evaluations: int,
) -> SearchResult:
    return SearchResult(
        kernel=kernel_name,
        target=target_name,
        driver=driver,
        seed=seed,
        best_index=best,
        best=points[best],
        predicted=float(scores[best]),
        points=tuple(points),
        scores=tuple(float(s) for s in scores),
        evaluations=evaluations,
    )


def exhaustive(
    kernel_name: str,
    target_name: str,
    points: Sequence[PlanPoint],
    scores: Sequence[float],
    *,
    seed: int = 0,
) -> SearchResult:
    best, _, _ = pick_best(points, scores)
    return _result(
        kernel_name, target_name, "exhaustive", seed, points, scores,
        best, len(points),
    )


def _neighbors(points: Sequence[PlanPoint], i: int) -> list[int]:
    """Indices differing from ``points[i]`` in exactly one coordinate.

    The scalar point is everyone's neighbor (turning vectorization off
    is always a one-step move), so the climb can retreat to scalar
    when every vector candidate scores below 1.0.
    """
    p = points[i]
    out = []
    for j, q in enumerate(points):
        if j == i:
            continue
        if q.is_scalar or p.is_scalar:
            out.append(j)
            continue
        diffs = sum(
            1
            for a, b in (
                (p.vf, q.vf),
                (p.interleave, q.interleave),
                (p.unroll, q.unroll),
                (p.strategy, q.strategy),
            )
            if a != b
        )
        if diffs == 1:
            out.append(j)
    return out


def hill_climb(
    kernel_name: str,
    target_name: str,
    points: Sequence[PlanPoint],
    scores: Sequence[float],
    *,
    seed: int = 0,
) -> SearchResult:
    """Greedy ascent from the default; strict improvement only."""
    current = default_index(points)
    evaluated = {current}
    while True:
        frontier = _neighbors(points, current)
        evaluated.update(frontier)
        best_next = current
        for j in frontier:
            if scores[j] > scores[best_next]:
                best_next = j
        if best_next == current:
            break
        current = best_next
    return _result(
        kernel_name, target_name, "hill_climb", seed, points, scores,
        current, len(evaluated),
    )


def verified(
    kernel_name: str,
    target_name: str,
    points: Sequence[PlanPoint],
    scores: Sequence[float],
    reward_fn: Callable[[int], float],
    *,
    seed: int = 0,
    shortlist: int = VERIFY_SHORTLIST,
) -> SearchResult:
    """Model-pruned shortlist, measured verdict.

    The batched scores rank the space; the default plus the ``shortlist``
    highest-scored other points are measured via ``reward_fn`` and the
    best measured one wins (ties anchor to the default).  Keeping the
    default in the shortlist makes this arm ≥ the default by
    construction — the model can only help, never hurt.
    """
    anchor = default_index(points)
    ranked = sorted(
        (i for i in range(len(points)) if i != anchor),
        key=lambda i: (-scores[i], i),
    )
    candidates = [anchor] + ranked[: max(shortlist, 0)]
    rewards = {i: float(reward_fn(i)) for i in candidates}
    best = anchor
    for i in candidates:
        if rewards[i] > rewards[best]:
            best = i
    measured_scores = [
        rewards[i] if i in rewards else 0.0 for i in range(len(points))
    ]
    return _result(
        kernel_name, target_name, "verified", seed, points, measured_scores,
        best, len(candidates),
    )


def bandit(
    kernel_name: str,
    target_name: str,
    points: Sequence[PlanPoint],
    reward_fn: Callable[[int], float],
    *,
    seed: int = 0,
    budget: int = 0,
    epsilon: float = BANDIT_EPSILON,
) -> SearchResult:
    """Epsilon-greedy search over measured rewards.

    ``reward_fn(i)`` is the measured speedup of ``points[i]`` — the
    driver that *pays* for what it learns, bounded by ``budget`` pulls
    (default ``BANDIT_BUDGET_FACTOR × |points|``).  Rewards here are
    deterministic, so each arm is measured at most once and repeat
    pulls replay the memo; the seed decides which arms ever get
    pulled.  Unpulled arms score 0, except the default, which is
    seeded with the conservative estimate 1.0 so an unlucky draw
    sequence can never leave the bandit worse-informed than "keep
    today's plan".
    """
    n = len(points)
    if n == 0:
        raise ValueError("empty candidate set")
    rng = np.random.default_rng(seed)
    budget = budget if budget > 0 else BANDIT_BUDGET_FACTOR * n
    estimates = np.zeros(n, dtype=np.float64)
    pulled = np.zeros(n, dtype=bool)
    anchor = default_index(points)
    estimates[anchor] = 1.0
    rewards: dict[int, float] = {}
    measured = 0
    for _ in range(budget):
        if rng.random() < epsilon:
            arm = int(rng.integers(n))
        else:
            arm = anchor
            for i in range(n):
                if estimates[i] > estimates[arm]:
                    arm = i
        if arm not in rewards:
            rewards[arm] = float(reward_fn(arm))
            measured += 1
        estimates[arm] = rewards[arm]
        pulled[arm] = True
    best = anchor
    for i in range(n):
        if pulled[i] and estimates[i] > estimates[best]:
            best = i
    return _result(
        kernel_name, target_name, "bandit", seed, points, estimates,
        best, measured,
    )
