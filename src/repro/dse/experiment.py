"""E14 — plan-space search regret (beyond the paper).

For every suite kernel on the ARM/LLV configuration, three arms pick a
plan from the same legality-pruned candidate set:

* **default** — the natural-VF LLV plan today's pipeline would emit;
* **model** — the fitted speedup model as cost oracle (exhaustive
  margin-guarded argmax over one batched predict), plus the
  hill-climbing and bandit drivers as search contrasts;
* **verified** — the deployment policy: the model prunes the space to
  a shortlist (default + top-K predicted), measurement decides among
  them; ≥ the default by construction;
* **oracle** — the measured-best point (every candidate measured
  through the analytic pipeline), the regret reference.

Reported per category and overall: geomean achieved speedup per arm,
top-1/top-3 oracle hit-rates of the model arm, and regret (geomean
oracle/model achieved ratio, ≥ 1 by construction).  The headline gate
— model-guided (verified arm) ≥ 1.0× geomean over the default — lives
in ``benchmarks/smoke_dse.py`` / ``BENCH_dse.json``; the pure-model
regret numbers are the experiment's finding (the count featurization
is ILP-blind and mis-ranks strided unroll variants).

``python -m repro.experiments dse`` runs this standalone (with
``--limit`` for the CI slice); the suite scheduler treats E14 as
explicit-only, like E13.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from ..costmodel.base import EPS
from ..experiments.base import ExperimentResult, fit_cached, make_speedup_model
from ..experiments.dataset import ARM_LLV, build_dataset
from ..pipeline.build import choose_strategy, estimate_kernel_work, resolve_workers
from ..targets.registry import get_target
from ..tsvc.suite import all_kernels
from .engine import search_kernel
from .oracle import default_index
from .points import measure_points

#: Drivers compared per kernel; "exhaustive" is the pure-model arm,
#: "verified" the deployable model-pruned/measured one.
E14_DRIVERS = ("exhaustive", "hill_climb", "bandit", "verified")
#: Nominal plan points per kernel for work estimation (the real count
#: varies 1–40; scheduling only needs the order of magnitude).
DSE_SWEEP_POINTS = 24


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return 1.0
    return float(
        math.exp(sum(math.log(max(v, EPS)) for v in values) / len(values))
    )


def _evaluate_kernel(kernel, target, model, seed: int) -> dict:
    """One kernel's regret cell: every driver vs measured ground truth."""
    results = {
        d: search_kernel(kernel, target, model, driver=d, seed=seed)
        for d in E14_DRIVERS
    }
    points = results["exhaustive"].points
    meas = measure_points(kernel, target, points)
    measured = [m.speedup if m.ok else 0.0 for m in meas]
    d_idx = default_index(points)
    oracle_idx = d_idx
    for i in range(len(points)):
        if measured[i] > measured[oracle_idx]:
            oracle_idx = i
    ranked = sorted(range(len(points)), key=lambda i: (-measured[i], i))
    model_idx = results["exhaustive"].best_index
    return {
        "kernel": kernel.name,
        "category": kernel.category,
        "n_points": len(points),
        "default": measured[d_idx],
        "oracle": measured[oracle_idx],
        "oracle_point": points[oracle_idx].label(),
        "achieved": {d: measured[results[d].best_index] for d in E14_DRIVERS},
        "picked": {d: results[d].best.label() for d in E14_DRIVERS},
        "evaluations": {d: results[d].evaluations for d in E14_DRIVERS},
        "top1": model_idx == oracle_idx
        or measured[model_idx] == measured[oracle_idx],
        "top3": any(
            measured[model_idx] == measured[i] for i in ranked[:3]
        ),
    }


def run_e14(
    kernel_names: Optional[Sequence[str]] = None,
    *,
    seed: int = 0,
    parallel: Optional[bool] = None,
) -> ExperimentResult:
    """The regret experiment (see module docstring).

    ``parallel=None`` lets the cost-aware scheduler decide — the
    per-kernel work estimate carries the plan-sweep term, so a 1-CPU
    host stays serial instead of paying executor overhead for a
    30-point sweep it cannot overlap.  Results are bit-identical
    either way: every kernel cell is computed independently and
    deterministically.
    """
    target = get_target(ARM_LLV.target)
    dataset = build_dataset(ARM_LLV)
    model = fit_cached(make_speedup_model("nnls"), dataset.samples)

    kernels = list(all_kernels())
    if kernel_names is not None:
        wanted = set(kernel_names)
        kernels = [k for k in kernels if k.name in wanted]

    decision = choose_strategy(
        [
            estimate_kernel_work(k, sweep_points=DSE_SWEEP_POINTS)
            for k in kernels
        ],
        resolve_workers(None, pending=len(kernels)),
    )
    use_pool = (
        decision.strategy == "pool" if parallel is None else parallel
    ) and len(kernels) > 1

    def cell(kernel):
        return _evaluate_kernel(kernel, target, model, seed)

    if use_pool:
        with ThreadPoolExecutor(max_workers=decision.workers) as pool:
            cells = list(pool.map(cell, kernels))
    else:
        cells = [cell(k) for k in kernels]

    by_cat: dict[str, list[dict]] = {}
    for c in cells:
        by_cat.setdefault(c["category"], []).append(c)

    def _row(label: str, group: list[dict]) -> dict:
        return {
            "category": label,
            "kernels": len(group),
            "default": round(_geomean([c["default"] for c in group]), 3),
            "model": round(
                _geomean([c["achieved"]["exhaustive"] for c in group]), 3
            ),
            "oracle": round(_geomean([c["oracle"] for c in group]), 3),
            "top1": round(
                sum(1 for c in group if c["top1"]) / max(len(group), 1), 3
            ),
            "top3": round(
                sum(1 for c in group if c["top3"]) / max(len(group), 1), 3
            ),
            "regret": round(
                _geomean(
                    [
                        c["oracle"] / max(c["achieved"]["exhaustive"], EPS)
                        for c in group
                    ]
                ),
                3,
            ),
        }

    rows = [_row(cat, group) for cat, group in sorted(by_cat.items())]
    rows.append(_row("overall", cells))

    driver_rows = [
        {
            "driver": d,
            "geomean": round(
                _geomean([c["achieved"][d] for c in cells]), 3
            ),
            "top1": round(
                sum(
                    1 for c in cells if c["achieved"][d] == c["oracle"]
                )
                / max(len(cells), 1),
                3,
            ),
            "mean_evaluations": round(
                float(np.mean([c["evaluations"][d] for c in cells]))
                if cells
                else 0.0,
                1,
            ),
        }
        for d in E14_DRIVERS
    ]

    result = ExperimentResult(
        id="E14",
        title="Plan-space DSE regret: model-guided vs oracle-best vs default",
    )
    result.rows = rows
    result.tables = [("search drivers (overall)", driver_rows)]
    result.series = {
        "kernels": np.array([c["kernel"] for c in cells]),
        "default": np.array([c["default"] for c in cells]),
        "model": np.array([c["achieved"]["exhaustive"] for c in cells]),
        "oracle": np.array([c["oracle"] for c in cells]),
        "bandit": np.array([c["achieved"]["bandit"] for c in cells]),
        "hill_climb": np.array(
            [c["achieved"]["hill_climb"] for c in cells]
        ),
        "verified": np.array([c["achieved"]["verified"] for c in cells]),
        "n_points": np.array([c["n_points"] for c in cells]),
    }
    overall = rows[-1]
    verified_gm = round(
        _geomean([c["achieved"]["verified"] for c in cells]), 3
    )
    result.notes = (
        f"{len(cells)} kernels, {int(result.series['n_points'].sum())} plan "
        f"points; model {overall['model']}x vs default {overall['default']}x "
        f"vs verified {verified_gm}x vs oracle {overall['oracle']}x geomean; "
        f"the exhaustive arm spends model predictions, the bandit spends "
        f"measurements, verified spends a model-pruned shortlist of "
        f"measurements (scheduling: {decision.strategy}, {decision.reason})."
    )
    return result


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.experiments dse`` — run E14 standalone."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments dse",
        description="Model-guided plan-space search regret (E14).",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="evaluate only the first N suite kernels (CI slice)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--serial",
        action="store_true",
        help="force the per-kernel loop serial (default: cost-aware)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also dump rows/driver tables as JSON",
    )
    args = parser.parse_args(argv)

    names = None
    if args.limit is not None:
        names = [k.name for k in all_kernels()][: max(args.limit, 0)]
    result = run_e14(
        names, seed=args.seed, parallel=False if args.serial else None
    )
    print(result.to_text())
    if args.json:
        payload = {
            "rows": result.rows,
            "tables": {t: r for t, r in result.tables},
            "notes": result.notes,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"[written to {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
