"""Stdlib HTTP front door for the advisor.

A thin ``ThreadingHTTPServer`` shell: every route parses, delegates to
the :class:`~repro.serve.advisor.Advisor` / worker pool, and renders
JSON.  All robustness (deadlines, backpressure, breakers, fault
injection) lives below this layer, so the HTTP handler has nothing to
get wrong under load.

Routes::

    GET  /v1/health   liveness + breaker/registry/pool state
    GET  /v1/ready    readiness (workers up, not shutting down)
    GET  /v1/models   registered model versions (?target=&vectorizer=)
    POST /v1/advise   {"kernel": "<DSL>"| "ir": {...}, "target": ...}
    POST /v1/reload   atomic registry hot-reload

Status codes: 200 verdict, 400 client error, 404 unknown route,
429 queue full (Retry-After), 503 deadline exceeded / shutting down
(Retry-After).
"""

from __future__ import annotations

import hashlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from .advisor import Advisor
from .workers import WorkerPool

#: Request bodies above this are rejected outright (anti-DoS).
MAX_BODY_BYTES = 1 << 20


class AdvisorServer:
    """Owns the HTTP listener, the advisor, and the worker pool."""

    def __init__(
        self,
        advisor: Optional[Advisor] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        pool: Optional[WorkerPool] = None,
        **pool_kwargs,
    ):
        self.advisor = advisor if advisor is not None else Advisor()
        self.pool = (
            pool
            if pool is not None
            else WorkerPool(self.advisor, **pool_kwargs)
        )
        self._ready = threading.Event()
        self._draining = threading.Event()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AdvisorServer":
        self.pool.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        self._ready.set()
        return self

    def stop(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Graceful shutdown: stop admitting, drain in-flight, close.

        ``/v1/ready`` flips to 503 immediately so load balancers stop
        routing here; requests already inside the pool complete.
        """
        self._ready.clear()
        self._draining.set()
        self.httpd.shutdown()
        self.pool.stop(drain=drain, timeout=timeout)
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def serve_forever(self) -> None:
        """Foreground mode for the CLI: blocks until interrupted.

        SIGTERM triggers the same graceful drain as Ctrl-C — shells
        start background jobs with SIGINT ignored, so ``kill -TERM``
        is the only reliable stop signal for a scripted deployment.
        """
        import signal

        def _terminate(signum, frame):
            raise KeyboardInterrupt

        previous = None
        if threading.current_thread() is threading.main_thread():
            previous = signal.signal(signal.SIGTERM, _terminate)
        self.pool.start()
        self._ready.set()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._ready.clear()
            self._draining.set()
            self.pool.stop(drain=True)
            self.httpd.server_close()
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)


def _make_handler(server: AdvisorServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # BaseHTTPRequestHandler logs every request to stderr; the
        # service speaks through /v1/health and the bench harness.
        def log_message(self, fmt, *args):  # noqa: N802
            pass

        # -- plumbing -------------------------------------------------------

        def _send(
            self, status: int, body: dict, *, retry_after: Optional[float] = None
        ) -> None:
            blob = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            if retry_after is not None:
                # RFC 7231 allows delay-seconds only as an integer;
                # round up so "retry in 0.2s" is not rendered as "0".
                self.send_header(
                    "Retry-After", str(max(1, int(retry_after + 0.999)))
                )
            self.end_headers()
            try:
                self.wfile.write(blob)
            except (BrokenPipeError, ConnectionResetError):
                pass

        def _read_json(self) -> Optional[dict]:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = 0
            if length <= 0:
                self._send(400, {"error": "missing request body"})
                return None
            if length > MAX_BODY_BYTES:
                self._send(
                    400,
                    {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                )
                return None
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw)
            except ValueError:
                self._send(400, {"error": "body is not valid JSON"})
                return None
            if not isinstance(payload, dict):
                self._send(400, {"error": "body must be a JSON object"})
                return None
            return payload

        # -- routes ---------------------------------------------------------

        def do_GET(self):  # noqa: N802
            url = urlparse(self.path)
            if url.path == "/v1/health":
                body = server.advisor.health()
                body["pool"] = server.pool.health()
                body["draining"] = server._draining.is_set()
                self._send(200, body)
            elif url.path == "/v1/ready":
                if server._ready.is_set() and not server._draining.is_set():
                    self._send(200, {"ready": True})
                else:
                    self._send(
                        503, {"ready": False}, retry_after=1.0
                    )
            elif url.path == "/v1/models":
                q = parse_qs(url.query)
                target = q.get("target", ["armv8-neon"])[0]
                vectorizer = q.get("vectorizer", ["llv"])[0]
                self._send(
                    200,
                    {
                        "target": target,
                        "vectorizer": vectorizer,
                        "versions": server.advisor.registry.versions(
                            target, vectorizer
                        ),
                    },
                )
            else:
                self._send(404, {"error": f"no route {url.path}"})

        def do_POST(self):  # noqa: N802, runs on a per-connection thread
            url = urlparse(self.path)
            if url.path == "/v1/advise":
                if server._draining.is_set():
                    self._send(
                        503,
                        {"error": "shutting down", "retry_after": 1.0},
                        retry_after=1.0,
                    )
                    return
                payload = self._read_json()
                if payload is None:
                    return
                request_id = str(
                    payload.pop("request_id", "")
                ) or hashlib.sha256(
                    json.dumps(payload, sort_keys=True).encode()
                ).hexdigest()[:12]
                try:
                    attempt = int(payload.pop("attempt", 0))
                except (TypeError, ValueError):
                    attempt = 0
                status, body = server.pool.submit(
                    payload, request_id=request_id, attempt=attempt
                )
                self._send(
                    status,
                    body,
                    retry_after=body.get("retry_after")
                    if status in (429, 503)
                    else None,
                )
            elif url.path == "/v1/reload":
                self._send(200, {"reloaded": server.advisor.registry.reload()})
            else:
                self._send(404, {"error": f"no route {url.path}"})

    return Handler


def main(argv=None) -> int:
    """``python -m repro.experiments serve`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Run the fault-tolerant vectorization-advisor service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--registry", default=None, help="model registry root (default: cache)"
    )
    parser.add_argument(
        "--fit",
        action="store_true",
        help="fit + publish a model per target before serving (measures "
        "--fit-kernels TSVC kernels; otherwise the service answers from "
        "already-published models or the static baseline)",
    )
    parser.add_argument("--fit-kernels", type=int, default=32)
    parser.add_argument(
        "--targets",
        default="armv8-neon",
        help="comma-separated targets to fit models for (with --fit)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--queue", type=int, default=None)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request deadline in seconds (default: REPRO_SERVE_TIMEOUT "
        "or 10)",
    )
    args = parser.parse_args(argv)

    from .registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    if args.fit:
        from .chaos import bootstrap_registry, suite_payloads

        for target in args.targets.split(","):
            target = target.strip()
            selected = suite_payloads(args.fit_kernels, target=target)
            entry = bootstrap_registry(
                registry,
                [s for _, _, s in selected],
                target=target,
                vectorizer="llv",
            )
            print(
                f"[serve] published {entry.version} for {target} "
                f"({len(selected)} kernels, {len(entry.weights)} weights)"
            )

    srv = AdvisorServer(
        Advisor(registry),
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue,
        timeout=args.timeout,
    )
    print(f"[serve] advisor listening on {srv.url} (Ctrl-C to stop)")
    srv.serve_forever()
    print("[serve] drained and stopped")
    return 0
