"""Versioned, corruption-safe storage for fitted advisor models.

The advisor service must never serve a verdict from weights it cannot
trust.  This registry stores fitted speedup-model weights as JSON
entries versioned by *(dataset fingerprint, featurization key, target,
vectorizer, regressor)* — the exact provenance that decides what a
weight vector means — under the same durability contract as the native
artifact cache (``sim/native.py``):

* **atomic installs** — entries are written to a tmp file and landed
  with ``os.replace``; the sha256 sidecar is written only after the
  payload bytes are durable, so a reader never sees a digest without
  its entry;
* **corruption-safe loads** — a torn entry, a flipped bit, a missing
  sidecar, or a foreign schema is *evicted* and the registry falls
  back to the newest remaining valid version (or heals the active
  version from the in-memory last-good copy), never raising into the
  request path;
* **validation gate + rollback** — a candidate must reproduce its own
  held-out validation predictions bit-exactly (and beat an RMSE bound
  against the held-out measurements) before the ``CURRENT`` pointer
  moves; a candidate that fails the gate is discarded and the last
  good version keeps serving — automatic rollback, no operator in the
  loop;
* **atomic hot-reload** — ``CURRENT`` is one ``os.replace``'d pointer
  file per model key; a running service re-reads it on demand
  (``/v1/reload`` or a registry mtime change) and swaps models between
  requests, never mid-request.

Layout under the root (``REPRO_SERVE_REGISTRY`` or
``<cache>/registry``)::

    <target>--<vectorizer>/
        entry-<version>.json         # weights + provenance + validation
        entry-<version>.json.sha256  # integrity sidecar
        CURRENT                      # the active version id
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..costmodel import matrix
from ..costmodel.base import EPS, Sample

#: Bump when the entry layout changes; foreign-schema entries are
#: treated as invalid (evicted on load) rather than misread.
REGISTRY_SCHEMA = 1

#: Held-out rows embedded in each entry for the validation gate.
VALIDATION_ROWS = 8

#: Default RMSE bound for the validation gate (measured speedups live
#: in (0, VF] ≈ (0, 8]; a healthy NNLS fit lands well under 1.0).
DEFAULT_MAX_RMSE = 1.5


class RegistryError(RuntimeError):
    """A registry operation failed (gate rejection, no valid entry, …)."""


@dataclass(frozen=True)
class ModelEntry:
    """One fitted model: weights plus everything that gives them meaning."""

    version: str
    dataset_fingerprint: str
    featurization: str
    target: str
    vectorizer: str
    regressor: str
    weights: tuple[float, ...]
    clip_to_vf: bool
    #: Held-out validation block: feature rows, the predictions the
    #: publisher computed from these very weights (bit-exact replay
    #: check), and the measured speedups (fit-quality check).
    validation_rows: tuple[tuple[float, ...], ...] = ()
    validation_expected: tuple[float, ...] = ()
    validation_measured: tuple[float, ...] = ()
    validation_vf: tuple[float, ...] = ()

    @property
    def model_key(self) -> str:
        return model_key(self.target, self.vectorizer)

    def predict(self, X: np.ndarray, vf: np.ndarray) -> np.ndarray:
        """Batch speedup predictions: one matrix product, VF-clipped.

        Mirrors ``SpeedupModel.predict_batch`` exactly — the registry
        serves the same floats the experiment engine would.
        """
        X = np.asarray(X, dtype=np.float64)
        w = np.asarray(self.weights, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != w.shape[0]:
            raise RegistryError(
                f"feature shape {X.shape} does not match "
                f"{w.shape[0]} weights of {self.version}"
            )
        raw = X @ w
        if self.clip_to_vf:
            return np.clip(raw, EPS, np.asarray(vf, dtype=np.float64))
        return np.maximum(raw, EPS)

    def to_dict(self) -> dict:
        return {
            "schema": REGISTRY_SCHEMA,
            "version": self.version,
            "dataset_fingerprint": self.dataset_fingerprint,
            "featurization": self.featurization,
            "target": self.target,
            "vectorizer": self.vectorizer,
            "regressor": self.regressor,
            "weights": list(self.weights),
            "clip_to_vf": self.clip_to_vf,
            "validation": {
                "rows": [list(r) for r in self.validation_rows],
                "expected": list(self.validation_expected),
                "measured": list(self.validation_measured),
                "vf": list(self.validation_vf),
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelEntry":
        if data.get("schema") != REGISTRY_SCHEMA:
            raise RegistryError(
                f"entry schema {data.get('schema')!r} != {REGISTRY_SCHEMA}"
            )
        val = data.get("validation", {})
        return cls(
            version=data["version"],
            dataset_fingerprint=data["dataset_fingerprint"],
            featurization=data["featurization"],
            target=data["target"],
            vectorizer=data["vectorizer"],
            regressor=data["regressor"],
            weights=tuple(float(w) for w in data["weights"]),
            clip_to_vf=bool(data["clip_to_vf"]),
            validation_rows=tuple(
                tuple(float(x) for x in row) for row in val.get("rows", ())
            ),
            validation_expected=tuple(
                float(x) for x in val.get("expected", ())
            ),
            validation_measured=tuple(
                float(x) for x in val.get("measured", ())
            ),
            validation_vf=tuple(float(x) for x in val.get("vf", ())),
        )


def model_key(target: str, vectorizer: str) -> str:
    return f"{target}--{vectorizer}"


def entry_version(
    dataset_fingerprint: str,
    featurization: str,
    target: str,
    vectorizer: str,
    regressor: str,
) -> str:
    """Deterministic version id from the provenance tuple."""
    blob = "|".join(
        (
            dataset_fingerprint,
            featurization,
            target,
            vectorizer,
            regressor,
            f"schema={REGISTRY_SCHEMA}",
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def entry_from_model(
    model,
    samples: Sequence[Sample],
    *,
    target: str,
    vectorizer: str,
    featurization: str = "counts",
) -> ModelEntry:
    """Package a fitted ``SpeedupModel`` into a publishable entry.

    The last ``VALIDATION_ROWS`` samples become the held-out block:
    their feature rows, the model's own predictions on them (replayed
    bit-exactly by the gate), and their measured speedups.
    """
    samples = list(samples)
    if not samples:
        raise RegistryError("cannot package a model without samples")
    fp = matrix.samples_fingerprint(samples)
    holdout = samples[-min(VALIDATION_ROWS, len(samples)):]
    feature_fn = matrix.featurizer_by_key(featurization)
    rows = np.stack([feature_fn(s) for s in holdout]).astype(np.float64)
    vf = np.array([float(s.vf) for s in holdout])
    entry = ModelEntry(
        version=entry_version(
            fp, featurization, target, vectorizer, model.regressor.name
        ),
        dataset_fingerprint=fp,
        featurization=featurization,
        target=target,
        vectorizer=vectorizer,
        regressor=model.regressor.name,
        weights=tuple(float(w) for w in np.asarray(model.weights)),
        clip_to_vf=bool(getattr(model, "clip_to_vf", True)),
        validation_rows=tuple(tuple(map(float, r)) for r in rows),
        validation_measured=tuple(
            float(s.measured_speedup) for s in holdout
        ),
        validation_vf=tuple(float(v) for v in vf),
    )
    expected = entry.predict(rows, vf)
    return ModelEntry(
        **{
            **entry.__dict__,
            "validation_expected": tuple(float(p) for p in expected),
        }
    )


def validate_entry(
    entry: ModelEntry, *, max_rmse: Optional[float] = None
) -> list[str]:
    """The held-out validation gate; returns the reasons it failed.

    Three checks, cheapest first: the weights must be finite and typed
    for the declared featurization; replaying the held-out predictions
    from the stored weights must reproduce the publisher's floats
    bit-exactly (a corrupted or miswritten weight cannot hide); and the
    held-out RMSE against the measured speedups must clear ``max_rmse``
    (a model poisoned by bad training data cannot ship).
    """
    if max_rmse is None:
        env = os.environ.get("REPRO_SERVE_MAX_RMSE")
        max_rmse = float(env) if env else DEFAULT_MAX_RMSE
    reasons: list[str] = []
    w = np.asarray(entry.weights, dtype=np.float64)
    if w.size == 0 or not np.all(np.isfinite(w)):
        reasons.append("weights empty or non-finite")
        return reasons
    try:
        matrix.featurizer_by_key(entry.featurization)
    except KeyError as exc:
        reasons.append(str(exc))
        return reasons
    if not entry.validation_rows:
        reasons.append("no held-out validation block")
        return reasons
    rows = np.asarray(entry.validation_rows, dtype=np.float64)
    if rows.shape[1] != w.size:
        reasons.append(
            f"validation rows have {rows.shape[1]} features, "
            f"weights have {w.size}"
        )
        return reasons
    vf = np.asarray(entry.validation_vf, dtype=np.float64)
    try:
        replayed = entry.predict(rows, vf)
    except RegistryError as exc:
        reasons.append(str(exc))
        return reasons
    expected = np.asarray(entry.validation_expected, dtype=np.float64)
    if expected.shape != replayed.shape or not np.array_equal(
        replayed, expected
    ):
        reasons.append("held-out predictions do not replay bit-exactly")
    measured = np.asarray(entry.validation_measured, dtype=np.float64)
    if measured.size == replayed.size and measured.size > 0:
        rmse = float(np.sqrt(np.mean((replayed - measured) ** 2)))
        if not np.isfinite(rmse) or rmse > max_rmse:
            reasons.append(
                f"held-out RMSE {rmse:.3f} exceeds bound {max_rmse:.3f}"
            )
    return reasons


def default_registry_dir() -> Path:
    env = os.environ.get("REPRO_SERVE_REGISTRY")
    if env:
        return Path(env).expanduser()
    from ..pipeline.cache import default_cache_dir

    return default_cache_dir() / "registry"


@dataclass
class RegistryStats:
    publishes: int = 0
    rejected: int = 0
    reloads: int = 0
    corrupt_evictions: int = 0
    heals: int = 0
    rollbacks: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class ModelRegistry:
    """On-disk model store with in-memory last-good fallback.

    One instance serves many threads; every public method is
    lock-protected.  The in-memory ``_active`` map is the serving copy
    — disk is consulted on publish, reload, and recovery, never on the
    per-request hot path.
    """

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_registry_dir()
        self._lock = threading.RLock()
        #: model key → the entry requests are served from.
        self._active: dict[str, ModelEntry] = {}
        #: model key → last entry that ever passed the gate (the
        #: rollback/heal source; survives disk corruption).
        self._last_good: dict[str, ModelEntry] = {}
        self.stats = RegistryStats()

    # -- paths --------------------------------------------------------------

    def _key_dir(self, key: str) -> Path:
        return self.root / key

    def _entry_paths(self, key: str, version: str) -> tuple[Path, Path]:
        path = self._key_dir(key) / f"entry-{version}.json"
        return path, path.with_suffix(".json.sha256")

    def _current_path(self, key: str) -> Path:
        return self._key_dir(key) / "CURRENT"

    # -- atomic file plumbing ----------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)

    def _write_entry(self, entry: ModelEntry) -> None:
        path, sidecar = self._entry_paths(entry.model_key, entry.version)
        blob = json.dumps(entry.to_dict(), sort_keys=True).encode()
        self._atomic_write(path, blob)
        # Sidecar last: its existence certifies the payload bytes.
        self._atomic_write(sidecar, hashlib.sha256(blob).hexdigest().encode())

    def _evict_entry(self, key: str, version: str) -> None:
        self.stats.corrupt_evictions += 1
        for path in self._entry_paths(key, version):
            try:
                path.unlink()
            except OSError:
                pass

    def _read_entry(self, key: str, version: str) -> Optional[ModelEntry]:
        """A sha256-verified entry, or ``None`` (evicting corruption)."""
        path, sidecar = self._entry_paths(key, version)
        try:
            blob = path.read_bytes()
            recorded = sidecar.read_text().strip()
            if hashlib.sha256(blob).hexdigest() != recorded:
                raise RegistryError("sha256 mismatch")
            entry = ModelEntry.from_dict(json.loads(blob))
            if entry.version != version or entry.model_key != key:
                raise RegistryError("entry does not match its filename")
            return entry
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, RegistryError):
            self._evict_entry(key, version)
            return None

    # -- publish / rollback -------------------------------------------------

    def publish(
        self,
        entry: ModelEntry,
        *,
        activate: bool = True,
        max_rmse: Optional[float] = None,
    ) -> ModelEntry:
        """Gate, install, and (optionally) activate a candidate entry.

        A candidate that fails the held-out gate is rejected with a
        :class:`RegistryError` naming every failed check, and the
        currently-active version keeps serving — the caller observes
        an automatic rollback, not an outage.
        """
        with self._lock:
            reasons = validate_entry(entry, max_rmse=max_rmse)
            if reasons:
                self.stats.rejected += 1
                keeping = self._active.get(entry.model_key)
                kept = f"; keeping {keeping.version}" if keeping else ""
                raise RegistryError(
                    f"candidate {entry.version} failed the validation gate: "
                    + "; ".join(reasons)
                    + kept
                )
            self._write_entry(entry)
            if activate:
                self._atomic_write(
                    self._current_path(entry.model_key),
                    entry.version.encode(),
                )
                self._active[entry.model_key] = entry
                self._last_good[entry.model_key] = entry
            self.stats.publishes += 1
            return entry

    def rollback(self, target: str, vectorizer: str) -> Optional[ModelEntry]:
        """Re-activate the newest valid non-current version on disk."""
        key = model_key(target, vectorizer)
        with self._lock:
            current = self._active.get(key)
            for version in self._versions_on_disk(key):
                if current is not None and version == current.version:
                    continue
                entry = self._read_entry(key, version)
                if entry is not None and not validate_entry(entry):
                    self._atomic_write(
                        self._current_path(key), entry.version.encode()
                    )
                    self._active[key] = entry
                    self._last_good[key] = entry
                    self.stats.rollbacks += 1
                    return entry
            return None

    def _versions_on_disk(self, key: str) -> list[str]:
        """Version ids present on disk, newest mtime first."""
        d = self._key_dir(key)
        try:
            files = [
                p
                for p in d.iterdir()
                if p.name.startswith("entry-") and p.name.endswith(".json")
            ]
        except OSError:
            return []
        files.sort(key=lambda p: (p.stat().st_mtime, p.name), reverse=True)
        return [p.name[len("entry-"):-len(".json")] for p in files]

    # -- serving ------------------------------------------------------------

    def current(self, target: str, vectorizer: str) -> Optional[ModelEntry]:
        """The entry serving this (target, vectorizer), or ``None``.

        Pure in-memory once loaded; call :meth:`reload` to pick up
        external changes (the server wires that to ``/v1/reload``).
        """
        key = model_key(target, vectorizer)
        with self._lock:
            entry = self._active.get(key)
            if entry is not None:
                return entry
            return self._load_current(key)

    def _load_current(self, key: str) -> Optional[ModelEntry]:
        """Resolve ``CURRENT`` from disk, recovering from corruption.

        Recovery ladder: (1) the pointed-at entry, if its bytes verify;
        (2) the in-memory last-good copy, *re-installed to disk* so the
        store heals; (3) the newest other valid version on disk;
        (4) nothing — the advisor serves its static fallback.
        """
        try:
            version = self._current_path(key).read_text().strip()
        except OSError:
            version = ""
        if version:
            entry = self._read_entry(key, version)
            if entry is not None and not validate_entry(entry):
                self._active[key] = entry
                self._last_good.setdefault(key, entry)
                return entry
        good = self._last_good.get(key)
        if good is not None:
            # Disk lost or corrupted the active entry but this process
            # still holds the weights: re-install them atomically.
            self._write_entry(good)
            self._atomic_write(
                self._current_path(key), good.version.encode()
            )
            self._active[key] = good
            self.stats.heals += 1
            return good
        for version in self._versions_on_disk(key):
            entry = self._read_entry(key, version)
            if entry is not None and not validate_entry(entry):
                self._atomic_write(
                    self._current_path(key), entry.version.encode()
                )
                self._active[key] = entry
                self._last_good[key] = entry
                return entry
        return None

    def reload(self) -> dict[str, Optional[str]]:
        """Atomic hot-reload: re-resolve ``CURRENT`` for every known key.

        Returns ``{model key: active version or None}``.  The swap is
        per-key atomic — a request in flight keeps the entry object it
        already grabbed; the next request sees the new one.
        """
        with self._lock:
            self.stats.reloads += 1
            keys = set(self._active)
            try:
                keys.update(
                    p.name
                    for p in self.root.iterdir()
                    if p.is_dir() and not p.name.startswith(".")
                )
            except OSError:
                pass
            out: dict[str, Optional[str]] = {}
            for key in sorted(keys):
                self._active.pop(key, None)
                entry = self._load_current(key)
                out[key] = entry.version if entry is not None else None
            return out

    def versions(self, target: str, vectorizer: str) -> list[dict]:
        """Metadata for every valid on-disk version of a model key."""
        key = model_key(target, vectorizer)
        with self._lock:
            active = self._active.get(key)
            out = []
            for version in self._versions_on_disk(key):
                entry = self._read_entry(key, version)
                if entry is None:
                    continue
                out.append(
                    {
                        "version": version,
                        "dataset_fingerprint": entry.dataset_fingerprint,
                        "featurization": entry.featurization,
                        "regressor": entry.regressor,
                        "weights": len(entry.weights),
                        "active": active is not None
                        and active.version == version,
                    }
                )
            return out


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
