"""The advisor: one request in, one vectorization verdict out.

This is the service's brain, kept deliberately free of HTTP and
threading so it can be driven directly by tests, the chaos harness,
and the CLI.  A request names a kernel (DSL text or an IR JSON
envelope), a target, and a vectorizer; the advisor runs the same
pipeline the experiment engine uses — parse, verify/lint prepass,
deterministic measurement (``jitter=0, seed=0``), featurization — and
answers from the registry's fitted model, falling back to the static
LLVM-like baseline when no model is published.

Robustness contract:

* the **verdict core** (kernel, target, vectorizer, VF, vectorized
  flag, predicted/reference speedups, model version) is a pure
  function of the request and the published weights — degraded tiers
  reproduce it bit-exactly, which is what the chaos gate checks;
* the ``plan`` field — the published model's best
  :class:`~repro.vectorize.plan.PlanPoint` over the kernel's
  legality-pruned plan space, scored in one batched predict — is
  *advisory*: it lives outside the core, appears only when a fitted
  model is published and the prepass breaker is closed, and any
  internal fault silently yields ``plan: null`` instead of degrading
  the verdict;
* everything that may legitimately differ under degradation (remarks,
  the ``degraded`` list, timings) lives *outside* the core;
* the native tier and the analysis prepass sit behind circuit
  breakers; a tripped breaker demotes to the interpreter tier or
  skips the prepass with a single consolidated
  ``-Rpass-missed=serve`` remark, never an exception;
* client errors (unparsable kernel, unknown target, lint-rejected
  body) raise :class:`InvalidRequest` — they are *answers*, not
  faults, and do not move any breaker.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Optional

from ..analysis.framework.diagnostics import Diagnostics, Severity
from ..analysis.framework.lint import lint_kernel
from ..analysis.framework.passmanager import default_manager
from ..analysis.framework.ranges import prove_safe, ranges_enabled
from ..costmodel import matrix
from ..costmodel.base import sample_from_measurement
from ..costmodel.llvm_like import LLVMLikeCostModel
from ..frontend import LexError, ParseError, parse_kernel
from ..ir.kernel import LoopKernel
from ..ir.stmt import IfBlock
from ..ir.verify import VerificationError, verify_kernel
from ..sim import (
    GUARD_SAMPLE_ITERS,
    estimate_guard_probs,
    make_buffers,
    native_available,
    native_enabled,
    run_scalar_interpreted,
)
from ..sim.measure import measure_kernel
from ..targets.registry import available_targets, get_target
from ..vectorize.plan import VectorizationFailure
from .breaker import CircuitBreaker
from .registry import ModelRegistry

#: Pass name on every service-level remark (renders as
#: ``[-Rpass-missed=serve]`` at WARNING severity).
PASS_NAME = "serve"

#: The verdict-core fields — the bit-identity surface of the service.
CORE_FIELDS = (
    "kernel",
    "target",
    "vectorizer",
    "vf",
    "vectorized",
    "predicted_speedup",
    "reference_speedup",
    "model",
)


class AdvisorError(Exception):
    """Base for request-path errors that map to an HTTP status."""

    status = 500


class InvalidRequest(AdvisorError):
    """The client sent something we can answer only with a 400."""

    status = 400


def verdict_core(response: dict) -> dict:
    """The bit-identity slice of a response (chaos-parity surface)."""
    return {k: response.get(k) for k in CORE_FIELDS}


def canonical_verdict(response: dict) -> str:
    """Canonical JSON of the verdict core; equal strings ⇔ equal bits.

    ``json.dumps`` renders floats with ``repr``, which round-trips
    IEEE-754 doubles exactly — two cores serialize identically iff
    every float in them is bit-identical.
    """
    return json.dumps(verdict_core(response), sort_keys=True)


def kernel_from_payload(payload: dict) -> LoopKernel:
    """Parse the request's kernel: DSL text or an IR JSON envelope.

    The IR form is ``{"ir": {"name": ..., "body": ...}}`` where
    ``body`` is the printer-canonical statement block — the same text
    ``ir.printer`` emits, so print → submit → parse round-trips.
    """
    if not isinstance(payload, dict):
        raise InvalidRequest("request body must be a JSON object")
    src = payload.get("kernel")
    ir = payload.get("ir")
    if src is None and ir is None:
        raise InvalidRequest("request needs a 'kernel' (DSL text) or 'ir' entry")
    if src is None:
        if not isinstance(ir, dict) or "name" not in ir or "body" not in ir:
            raise InvalidRequest("'ir' must be {'name': ..., 'body': ...}")
        name = str(ir["name"])
        if not name.isidentifier():
            raise InvalidRequest(f"'ir'.name {name!r} is not an identifier")
        src = f"kernel {name} {{\n{ir['body']}\n}}"
    if not isinstance(src, str):
        raise InvalidRequest("'kernel' must be DSL source text")
    try:
        return parse_kernel(src)
    except (ParseError, LexError) as exc:
        raise InvalidRequest(f"kernel does not parse: {exc}") from exc


class AdvisorStats:
    """Thread-safe request counters for the ``/v1/stats`` endpoint."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.verdicts = 0
        self.invalid = 0
        self.degraded = 0
        self.model_hits = 0
        self.static_fallbacks = 0

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "verdicts": self.verdicts,
                "invalid": self.invalid,
                "degraded": self.degraded,
                "model_hits": self.model_hits,
                "static_fallbacks": self.static_fallbacks,
            }


class Advisor:
    """Stateless-per-request verdict engine with stateful protection.

    One instance is shared by every worker thread: the registry, the
    two breakers, and the counters are the only mutable state, each
    individually thread-safe.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        failure_threshold: int = 3,
        recovery_time: float = 5.0,
        clock=None,
    ):
        self.registry = registry if registry is not None else ModelRegistry()
        self.native_breaker = CircuitBreaker(
            "native",
            failure_threshold=failure_threshold,
            recovery_time=recovery_time,
            clock=clock,
        )
        self.prepass_breaker = CircuitBreaker(
            "prepass",
            failure_threshold=failure_threshold,
            recovery_time=recovery_time,
            clock=clock,
        )
        self.static_model = LLVMLikeCostModel()
        self.stats = AdvisorStats()
        self._am = default_manager()

    # -- request path -------------------------------------------------------

    def advise(
        self, payload: dict, *, inject: Iterable[str] = ()
    ) -> dict:
        """Answer one request; raises only :class:`AdvisorError`.

        ``inject`` carries request-scoped fault kinds the worker layer
        decided should fire for this request (currently only
        ``toolchain_loss`` is interpreted here — it makes the native
        probe fail mid-flight, exercising the breaker).
        """
        self.stats.bump("requests")
        inject = frozenset(inject)
        kernel = kernel_from_payload(payload)
        target = self._resolve_target(payload)
        vectorizer = self._resolve_vectorizer(payload)
        vf = payload.get("vf")
        if vf is not None:
            try:
                vf = int(vf)
            except (TypeError, ValueError):
                raise InvalidRequest(f"'vf' must be an integer, got {vf!r}")
            if vf < 2 or vf > 64:
                raise InvalidRequest(f"'vf' must be in [2, 64], got {vf}")

        diags = Diagnostics()
        degraded: list[str] = []

        self._prepass(kernel, degraded)
        guard_probs = self._guard_probs(kernel, inject, degraded)

        measured = measure_kernel(
            kernel,
            target,
            vf,
            vectorizer=vectorizer,
            jitter=0.0,
            seed=0,
            guard_probs=guard_probs,
        )

        if isinstance(measured, VectorizationFailure):
            response = {
                "kernel": kernel.name,
                "target": target.name,
                "vectorizer": vectorizer,
                "vf": None,
                "vectorized": False,
                "predicted_speedup": None,
                "reference_speedup": None,
                "model": None,
                "plan": None,
                "reason": measured.reason,
            }
            diags.warning(
                "loop-vectorize",
                kernel.name,
                f"loop not vectorized: {measured.reason}",
            )
        else:
            sample = sample_from_measurement(measured)
            reference = float(self.static_model.predict_speedup(sample))
            entry = self.registry.current(target.name, vectorizer)
            if entry is not None:
                row = matrix.featurizer_by_key(entry.featurization)(sample)
                predicted = float(
                    entry.predict(row[None, :], [float(sample.vf)])[0]
                )
                model_id = entry.version
                self.stats.bump("model_hits")
            else:
                predicted = reference
                model_id = self.static_model.name
                degraded.append("no fitted model (static baseline)")
                self.stats.bump("static_fallbacks")
            response = {
                "kernel": kernel.name,
                "target": target.name,
                "vectorizer": vectorizer,
                "vf": int(sample.vf),
                "vectorized": bool(predicted > 1.0),
                "predicted_speedup": predicted,
                "reference_speedup": reference,
                "model": model_id,
                "plan": self._plan_hint(kernel, target, entry),
            }

        if not ranges_enabled():
            degraded.append("range proofs disabled")
        if degraded:
            # One consolidated remark per request, however many
            # dimensions are degraded — clients grep for exactly one
            # [-Rpass-missed=serve] line.
            diags.warning(
                PASS_NAME,
                kernel.name,
                "serving degraded: " + "; ".join(degraded),
                args=[("degraded", str(len(degraded)))],
            )
            self.stats.bump("degraded")
        response["degraded"] = list(degraded)
        response["remarks"] = diags.to_json()
        self.stats.bump("verdicts")
        return response

    # -- stages -------------------------------------------------------------

    def _resolve_target(self, payload: dict):
        name = payload.get("target", "armv8-neon")
        try:
            return get_target(str(name))
        except (KeyError, ValueError) as exc:
            raise InvalidRequest(
                f"unknown target {name!r}; known: "
                + ", ".join(available_targets())
            ) from exc

    @staticmethod
    def _resolve_vectorizer(payload: dict) -> str:
        vec = str(payload.get("vectorizer", "llv"))
        if vec not in ("llv", "slp"):
            raise InvalidRequest(
                f"unknown vectorizer {vec!r}; known: llv, slp"
            )
        return vec

    def _prepass(self, kernel: LoopKernel, degraded: list[str]) -> None:
        """Verify + lint + range-prove behind the prepass breaker.

        A kernel the prepass *rejects* is a client error (the prepass
        itself worked — record success).  An exception from inside the
        analyses is a service fault: count it against the breaker and
        keep serving without the prepass.
        """
        if not self.prepass_breaker.allow():
            degraded.append("analysis prepass skipped (breaker open)")
            return
        try:
            verify_kernel(kernel)
            errors = [
                r
                for r in lint_kernel(kernel, self._am)
                if r.severity is Severity.ERROR
            ]
            if errors:
                self.prepass_breaker.record_success()
                raise InvalidRequest(
                    "kernel rejected by lint: "
                    + "; ".join(r.message for r in errors)
                )
            if ranges_enabled():
                safety = prove_safe(kernel, self._am)
                if safety.classification == "proven-unsafe":
                    self.prepass_breaker.record_success()
                    raise InvalidRequest(
                        "range analysis proves an out-of-bounds access: "
                        + "; ".join(safety.reasons)
                    )
        except VerificationError as exc:
            self.prepass_breaker.record_success()
            raise InvalidRequest(f"kernel fails verification: {exc}") from exc
        except AdvisorError:
            raise
        except Exception:
            self.prepass_breaker.record_failure()
            degraded.append("analysis prepass faulted")
            return
        self.prepass_breaker.record_success()

    def _plan_hint(self, kernel, target, entry) -> Optional[dict]:
        """The model's best plan point over the legality-pruned space.

        Advisory only, never load-bearing: returns ``None`` without a
        published entry, when the prepass breaker is not closed (plan
        enumeration leans on the same analyses the prepass does; the
        non-claiming ``state`` read leaves half-open probe slots to the
        prepass itself), or on any internal fault.  Nothing here
        appends to ``degraded`` or moves a breaker — the degraded-mode
        matrix pins both clause counts and verdict bits.
        """
        if entry is None:
            return None
        if self.prepass_breaker.state != "closed":
            return None
        try:
            from ..dse.oracle import pick_best, score_points_entry
            from ..vectorize.plan import enumerate_plan_points

            points = enumerate_plan_points(kernel, target, manager=self._am)
            scores = score_points_entry(kernel, target, points, entry)
            _best_idx, best, score = pick_best(points, scores)
            return {
                "point": best.to_dict(),
                "label": best.label(),
                "predicted_speedup": float(score),
                "n_points": len(points),
            }
        except Exception:
            return None

    def _guard_probs(
        self,
        kernel: LoopKernel,
        inject: frozenset,
        degraded: list[str],
    ) -> dict[int, float]:
        """Branch probabilities via the best tier the breaker allows.

        The compiled/native and interpreter tiers agree bit-exactly on
        guard probabilities (the PR-6 contract: non-identical native
        kernels auto-demote), so demotion here changes latency, never
        the verdict.
        """
        if not any(isinstance(s, IfBlock) for s in kernel.stmts()):
            # No guards: nothing to estimate, no tier engaged.
            return {}
        demote = None
        if "toolchain_loss" in inject:
            # Mid-flight toolchain loss: the native probe fails.
            if self.native_breaker.allow():
                self.native_breaker.record_failure()
            demote = "toolchain lost mid-flight"
        elif not (native_enabled() and native_available()):
            demote = "native tier unavailable"
        elif not self.native_breaker.allow():
            demote = "native tier breaker open"
        if demote is None:
            try:
                probs = estimate_guard_probs(kernel, seed=0)
                self.native_breaker.record_success()
                return probs
            except Exception:
                self.native_breaker.record_failure()
                demote = "native tier faulted"
        degraded.append(f"demoted to interpreter tier ({demote})")
        bufs = make_buffers(kernel, seed=0)
        result = run_scalar_interpreted(
            kernel, bufs, max_inner_iters=GUARD_SAMPLE_ITERS
        )
        return dict(result.guard_probs)

    # -- introspection ------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "ok",
            "breakers": [
                self.native_breaker.stats(),
                self.prepass_breaker.stats(),
            ],
            "registry": self.registry.stats.as_dict(),
            "advisor": self.stats.as_dict(),
        }
