"""Bounded admission, per-request deadlines, supervised workers.

The pool is the service's load shedder and fault boundary:

* **admission** — a bounded queue; a full queue answers 429 with a
  ``Retry-After`` hint *immediately* instead of letting latency
  collapse under overload;
* **deadlines** — every request carries an absolute deadline
  (``REPRO_SERVE_TIMEOUT`` seconds from admission); the dispatcher
  waits on the ticket only that long and answers 503 the instant it
  expires, so no caller ever outlives its deadline waiting on us;
* **supervision** — Python threads cannot be killed, so a worker that
  crashes (its loop dies) or hangs past a ticket's deadline is
  *replaced*: a supervisor thread detects the loss and spawns a fresh
  worker, while the stuck thread is detached as a zombie whose late
  result is discarded (the ticket was already abandoned);
* **chaos hooks** — a :class:`~repro.pipeline.faultinject.FaultPlan`
  fires request-scoped faults (``slow_handler``, ``worker_crash``,
  ``corrupt_registry``, ``toolchain_loss``) deterministically by
  ``sha256(seed:kind:request:attempt)``; retries are new attempts, so
  faults drain exactly like the measurement sweep's.

Rejections (429/503) are *retryable*: the chaos harness and the HTTP
client drive them through ``pipeline.resilience.RetryPolicy`` until a
final verdict lands — that, plus deterministic advising, is what makes
"no request lost, verdicts bit-identical" provable.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..pipeline.faultinject import (
    FaultPlan,
    InjectedWorkerCrash,
    serve_plan_from_env,
)
from .advisor import Advisor, AdvisorError

#: Grace added to a deadline before a worker is declared hung.
HANG_GRACE_S = 0.25

#: How often the supervisor sweeps for dead/hung workers.
SUPERVISOR_TICK_S = 0.05


def resolve_timeout() -> float:
    env = os.environ.get("REPRO_SERVE_TIMEOUT")
    try:
        value = float(env) if env else 10.0
    except ValueError:
        value = 10.0
    return max(value, 0.05)


def resolve_queue_size() -> int:
    env = os.environ.get("REPRO_SERVE_QUEUE")
    try:
        value = int(env) if env else 64
    except ValueError:
        value = 64
    return max(value, 1)


def resolve_workers() -> int:
    env = os.environ.get("REPRO_SERVE_WORKERS")
    try:
        value = int(env) if env else 0
    except ValueError:
        value = 0
    if value > 0:
        return value
    return min(4, max(2, (os.cpu_count() or 2)))


@dataclass
class Ticket:
    """One admitted request on its way through the pool."""

    request_id: str
    payload: dict
    attempt: int
    deadline: float  # absolute, on the pool's clock
    done: threading.Event = field(default_factory=threading.Event)
    status: int = 500
    body: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _abandoned: bool = False

    def abandon(self) -> bool:
        """Dispatcher gave up; a late worker result must be discarded."""
        with self._lock:
            if self.done.is_set():
                return False
            self._abandoned = True
            return True

    @property
    def abandoned(self) -> bool:
        with self._lock:
            return self._abandoned

    def complete(self, status: int, body: dict) -> bool:
        """Deliver the result unless the dispatcher already gave up."""
        with self._lock:
            if self._abandoned or self.done.is_set():
                return False
            self.status = status
            self.body = body
            self.done.set()
            return True


class PoolStats:
    def __init__(self):
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected_queue_full = 0
        self.rejected_deadline = 0
        self.completed = 0
        self.worker_crashes = 0
        self.workers_replaced = 0
        self.zombied = 0
        self.faults_injected = 0

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                k: v
                for k, v in self.__dict__.items()
                if not k.startswith("_")
            }


class WorkerPool:
    """Fixed-size supervised worker pool over a bounded queue."""

    def __init__(
        self,
        advisor: Advisor,
        *,
        workers: Optional[int] = None,
        queue_size: Optional[int] = None,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        hang_s: Optional[float] = None,
        clock=None,
    ):
        self.advisor = advisor
        self.workers = workers if workers is not None else resolve_workers()
        self.timeout = timeout if timeout is not None else resolve_timeout()
        self.queue_size = (
            queue_size if queue_size is not None else resolve_queue_size()
        )
        if fault_plan is None:
            fault_plan = serve_plan_from_env()
        self.fault_plan = fault_plan
        if hang_s is None:
            hang_s = (
                fault_plan.hang_seconds if fault_plan is not None else 30.0
            )
        self.hang_s = hang_s
        self._clock = clock or time.monotonic
        self._queue: "queue.Queue[Optional[Ticket]]" = queue.Queue(
            maxsize=self.queue_size
        )
        self._threads: dict[int, threading.Thread] = {}
        #: worker thread ident → (ticket, started-at) while busy.
        self._busy: dict[int, tuple[Ticket, float]] = {}
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._next_worker = 0
        self.stats = PoolStats()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        self._stopping.clear()
        with self._lock:
            for _ in range(self.workers):
                self._spawn_locked()
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def _spawn_locked(self) -> None:
        self._next_worker += 1
        t = threading.Thread(
            target=self._worker_loop,
            name=f"serve-worker-{self._next_worker}",
            daemon=True,
        )
        self._threads[self._next_worker] = t
        t.start()

    def stop(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Shut down; with ``drain``, in-flight work completes first."""
        if drain:
            end = self._clock() + timeout
            while not self._queue.empty() and self._clock() < end:
                time.sleep(0.01)
            with self._lock:
                busy = bool(self._busy)
            while busy and self._clock() < end:
                time.sleep(0.01)
                with self._lock:
                    busy = bool(self._busy)
        self._stopping.set()
        with self._lock:
            n = len(self._threads)
        for _ in range(n):
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
        with self._lock:
            threads = list(self._threads.values())
        for t in threads:
            t.join(timeout=0.5)

    # -- admission ----------------------------------------------------------

    def submit(
        self,
        payload: dict,
        *,
        request_id: str,
        attempt: int = 0,
        timeout: Optional[float] = None,
    ) -> tuple[int, dict]:
        """Admit, wait, answer — always within the request's deadline.

        Returns ``(status, body)``: 200 a verdict, 400 a client error,
        429 shed at admission (queue full), 503 deadline expired or a
        retryable in-flight fault.  429/503 carry ``retry_after``.
        """
        budget = timeout if timeout is not None else self.timeout
        deadline = self._clock() + budget
        ticket = Ticket(
            request_id=request_id,
            payload=payload,
            attempt=attempt,
            deadline=deadline,
        )
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self.stats.bump("rejected_queue_full")
            return 429, {
                "error": "admission queue full",
                "retry_after": round(budget / 4, 3),
            }
        self.stats.bump("admitted")
        remaining = deadline - self._clock()
        if ticket.done.wait(timeout=max(remaining, 0.0)):
            self.stats.bump("completed")
            return ticket.status, ticket.body
        # Deadline expired with the ticket queued or in flight: answer
        # now.  If a worker is holding it, the supervisor will replace
        # that worker once it overstays the grace period.
        ticket.abandon()
        self.stats.bump("rejected_deadline")
        return 503, {
            "error": f"deadline of {budget:.3g}s exceeded",
            "retry_after": round(budget / 2, 3),
        }

    # -- worker -------------------------------------------------------------

    def _worker_loop(self) -> None:
        ident = threading.get_ident()
        while not self._stopping.is_set():
            try:
                ticket = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if ticket is None:
                break
            if ticket.abandoned:
                continue
            with self._lock:
                self._busy[ident] = (ticket, self._clock())
            try:
                self._handle(ticket)
            except InjectedWorkerCrash:
                # Exit the loop so the thread dies (without spamming
                # the thread excepthook); the supervisor notices the
                # dead worker and spawns a replacement.
                self.stats.bump("worker_crashes")
                return
            finally:
                with self._lock:
                    self._busy.pop(ident, None)

    def _handle(self, ticket: Ticket) -> None:
        inject = self._decide_faults(ticket)
        if "slow_handler" in inject:
            # A hang: sleep in small slices so an abandoned ticket
            # releases the worker (a genuinely blocked worker is
            # replaced by the supervisor instead).
            wake = self._clock() + self.hang_s
            while self._clock() < wake:
                if ticket.abandoned or self._stopping.is_set():
                    return
                time.sleep(0.02)
        if "worker_crash" in inject:
            ticket.complete(
                503,
                {
                    "error": "worker crashed mid-request",
                    "retry_after": 0.05,
                },
            )
            raise InjectedWorkerCrash(
                f"injected worker crash on {ticket.request_id}"
            )
        if "corrupt_registry" in inject:
            # Poison the active on-disk entry, then force the reload a
            # poisoned deployment would trigger: the registry must
            # detect the bad sha, evict, and heal from last-good.
            self._corrupt_registry()
        if ticket.abandoned:
            return
        try:
            body = self.advisor.advise(
                ticket.payload,
                inject=inject & {"toolchain_loss"},
            )
            ticket.complete(200, body)
        except AdvisorError as exc:
            ticket.complete(exc.status, {"error": str(exc)})
        except Exception as exc:  # unexpected: a 500, not a crash
            ticket.complete(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )

    def _decide_faults(self, ticket: Ticket) -> set[str]:
        plan = self.fault_plan
        if plan is None:
            return set()
        fired = {
            kind
            for kind in plan.rates
            if plan.decide(kind, ticket.request_id, ticket.attempt)
        }
        if fired:
            self.stats.bump("faults_injected", len(fired))
        return fired

    def _corrupt_registry(self) -> None:
        registry = self.advisor.registry
        root = registry.root
        try:
            for key_dir in root.iterdir():
                current = key_dir / "CURRENT"
                if not current.is_file():
                    continue
                version = current.read_text().strip()
                entry = key_dir / f"entry-{version}.json"
                if entry.is_file():
                    with open(entry, "r+b") as fh:
                        fh.write(b"\x00GARBAGE\x00")
        except OSError:
            pass
        registry.reload()

    # -- supervision --------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stopping.is_set():
            time.sleep(SUPERVISOR_TICK_S)
            now = self._clock()
            with self._lock:
                # Dead workers (crashed loops) → replace.
                dead = [
                    wid
                    for wid, t in self._threads.items()
                    if not t.is_alive()
                ]
                for wid in dead:
                    del self._threads[wid]
                    self._spawn_locked()
                    self.stats.bump("workers_replaced")
                # Hung workers: busy on a ticket past deadline + grace.
                hung = [
                    (ident, ticket)
                    for ident, (ticket, _) in self._busy.items()
                    if now > ticket.deadline + HANG_GRACE_S
                ]
                for ident, ticket in hung:
                    ticket.abandon()
                    # Detach: the thread keeps running (unkillable) but
                    # is no longer counted; spawn a fresh worker so
                    # capacity is restored.
                    self._busy.pop(ident, None)
                    for wid, t in list(self._threads.items()):
                        if t.ident == ident:
                            del self._threads[wid]
                            self._spawn_locked()
                            self.stats.bump("workers_replaced")
                            self.stats.bump("zombied")
                            break

    # -- introspection ------------------------------------------------------

    def health(self) -> dict:
        with self._lock:
            alive = sum(1 for t in self._threads.values() if t.is_alive())
            busy = len(self._busy)
        return {
            "workers": self.workers,
            "alive": alive,
            "busy": busy,
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "timeout_s": self.timeout,
            "faults": sorted(self.fault_plan.rates)
            if self.fault_plan
            else [],
            **self.stats.as_dict(),
        }
