"""Circuit breakers for the advisor service's fallible dependencies.

A :class:`CircuitBreaker` wraps an operation that can fail repeatedly
— the native compiled tier losing its toolchain, the parser/analysis
prepass hitting an internal fault — and converts "keeps failing" into
"stop trying for a while":

* **closed** — normal operation; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker;
* **open** — the protected operation is skipped entirely (callers take
  their degraded path) until ``recovery_time`` seconds pass;
* **half-open** — a bounded number of probe calls are let through; one
  success closes the breaker, one failure re-opens it and re-arms the
  recovery timer.

The clock is injectable so tests (and the deterministic chaos harness)
can drive state transitions without sleeping.  All methods are
thread-safe: the service's worker pool shares one breaker per
dependency.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

#: Breaker states (string-valued for cheap JSON/stats exposure).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state breaker with a bounded half-open probe budget."""

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        recovery_time: float = 5.0,
        half_open_probes: int = 1,
        clock: Optional[Callable[[], float]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {recovery_time}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        # lifetime counters for /stats
        self._trips = 0
        self._recoveries = 0
        self._rejections = 0

    # -- queries ------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May the caller attempt the protected operation right now?

        In the half-open state this *claims* a probe slot: a caller
        that was told yes must report back via ``record_success`` /
        ``record_failure`` so the slot is released.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                self._rejections += 1
                return False
            # half-open: bounded probes
            if self._probes_inflight < self.half_open_probes:
                self._probes_inflight += 1
                return True
            self._rejections += 1
            return False

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = HALF_OPEN
            self._probes_inflight = 0

    # -- outcome reporting --------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._recoveries += 1
            self._consecutive_failures = 0
            self._probes_inflight = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # the probe failed: back to open, timer re-armed
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_inflight = 0
                self._trips += 1
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._trips += 1

    # -- test/operator hooks ------------------------------------------------

    def force_open(self) -> None:
        """Trip the breaker now (operator override / degraded-mode tests)."""
        with self._lock:
            if self._state != OPEN:
                self._trips += 1
            self._state = OPEN
            self._opened_at = self._clock()
            self._probes_inflight = 0

    def force_close(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probes_inflight = 0

    def stats(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "recoveries": self._recoveries,
                "rejections": self._rejections,
            }
