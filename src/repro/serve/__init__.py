"""Fault-tolerant vectorization-advisor service (ROADMAP item 1).

A long-lived, stdlib-only HTTP service answering "should this loop be
vectorized, and what speedup should I expect?" from the fitted cost
models — with a versioned model registry, per-request deadlines,
bounded-queue backpressure, circuit breakers around the fallible
tiers, and a deterministic chaos gate proving that none of that
machinery can change a verdict.
"""

from .advisor import (
    Advisor,
    AdvisorError,
    InvalidRequest,
    canonical_verdict,
    kernel_from_payload,
    verdict_core,
)
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .registry import (
    ModelEntry,
    ModelRegistry,
    RegistryError,
    entry_from_model,
    entry_version,
    validate_entry,
)
from .server import AdvisorServer
from .workers import Ticket, WorkerPool

__all__ = [
    "Advisor",
    "AdvisorError",
    "InvalidRequest",
    "canonical_verdict",
    "kernel_from_payload",
    "verdict_core",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ModelEntry",
    "ModelRegistry",
    "RegistryError",
    "entry_from_model",
    "entry_version",
    "validate_entry",
    "AdvisorServer",
    "Ticket",
    "WorkerPool",
]
