"""Service-level chaos gate: prove robustness instead of claiming it.

The harness runs one request set twice through a real advisor + worker
pool — once clean, once under a deterministic
:class:`~repro.pipeline.faultinject.FaultPlan` firing request-scoped
faults (slow handler, worker crash, corrupted registry entry,
toolchain loss mid-flight) — and asserts the service's three load-
bearing promises:

* **no request lost** — every request, retried through
  ``pipeline.resilience.RetryPolicy`` on 429/503, ends in a verdict;
* **no deadline overrun** — every individual attempt (including the
  rejected ones) is answered within the request deadline plus a small
  scheduling grace;
* **bit-identical verdicts** — the canonical verdict cores under
  chaos equal the clean run's, float for float: degradation may slow
  an answer or annotate it, never change it.

It also gates the registry's rollback story directly: a poisoned
candidate must be rejected with the last-good version still serving,
and a corrupted-then-reloaded active entry must heal back to the
last-good weights.

Faults are scheduled by ``sha256(seed:kind:request_id:attempt)``, so a
run is exactly reproducible from ``--faults`` and ``--seed`` — the CI
job pins one schedule forever.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..costmodel.base import Sample, sample_from_measurement
from ..fitting.nnls import NonNegativeLeastSquares
from ..ir.printer import kernel_to_source
from ..pipeline.faultinject import FaultPlan, parse_faults
from ..pipeline.resilience import RetryPolicy
from ..sim.measure import measure_kernel
from ..targets.registry import get_target
from ..tsvc import get_kernel, kernel_names
from ..vectorize.plan import VectorizationFailure
from .advisor import Advisor, canonical_verdict, kernel_from_payload
from .registry import ModelEntry, ModelRegistry, RegistryError, entry_from_model
from .workers import WorkerPool

#: Scheduling slack added to the deadline before an attempt counts as
#: an overrun (supervisor tick + GIL scheduling, not service logic).
DEADLINE_GRACE_S = 0.75

#: The pinned CI schedule: every serve fault kind at a rate that fires
#: several times across a ~24-request run yet drains under retries.
DEFAULT_FAULT_SPEC = (
    "slow_handler:0.08,worker_crash:0.08,corrupt_registry:0.06,"
    "toolchain_loss:0.08"
)


def suite_payloads(
    count: int, *, target: str = "armv8-neon", vectorizer: str = "llv"
) -> list[tuple[str, dict, Sample]]:
    """``(request_id, payload, fitting sample)`` per serveable kernel.

    Walks the TSVC suite in name order and keeps the first ``count``
    kernels that (a) vectorize on the target — the others answer with
    a failure verdict, which is fine for serving but useless for
    fitting — and (b) survive the printer → IR-envelope → parser
    round-trip the service's ``ir`` request form uses.
    """
    tgt = get_target(target)
    out: list[tuple[str, dict, Sample]] = []
    for name in sorted(kernel_names()):
        if len(out) >= count:
            break
        kernel = get_kernel(name)
        measured = measure_kernel(
            kernel, tgt, vectorizer=vectorizer, jitter=0.0, seed=0
        )
        if isinstance(measured, VectorizationFailure):
            continue
        body = "\n".join(
            ln
            for ln in kernel_to_source(kernel).splitlines()
            if not ln.startswith("//")
        )
        payload = {
            "ir": {"name": name, "body": body},
            "target": target,
            "vectorizer": vectorizer,
        }
        try:
            kernel_from_payload(payload)
        except Exception:
            continue
        out.append((name, payload, sample_from_measurement(measured)))
    return out


def bootstrap_registry(
    registry: ModelRegistry,
    samples: Sequence[Sample],
    *,
    target: str,
    vectorizer: str,
) -> ModelEntry:
    """Fit an NNLS speedup model on ``samples`` and publish it."""
    from ..costmodel.speedup import SpeedupModel

    model = SpeedupModel(NonNegativeLeastSquares()).fit(list(samples))
    entry = entry_from_model(
        model, list(samples), target=target, vectorizer=vectorizer
    )
    return registry.publish(entry)


def run_requests(
    pool: WorkerPool,
    requests: Sequence[tuple[str, dict]],
    *,
    policy: Optional[RetryPolicy] = None,
) -> list[dict]:
    """Drive every request to a final answer through retries.

    Each element of the result records the final status/body, the
    attempt count, and the worst single-attempt latency (which the
    gate checks against the deadline).
    """
    policy = policy or RetryPolicy(max_attempts=10, base_delay=0.02, cap=0.5)
    results = []
    for request_id, payload in requests:
        attempts = 0
        worst = 0.0
        status, body = 500, {"error": "never attempted"}
        for attempt in range(policy.max_attempts):
            attempts = attempt + 1
            t0 = time.monotonic()
            status, body = pool.submit(
                dict(payload), request_id=request_id, attempt=attempt
            )
            worst = max(worst, time.monotonic() - t0)
            if status not in (429, 503):
                break
            time.sleep(policy.delay(request_id, attempt))
        results.append(
            {
                "request_id": request_id,
                "status": status,
                "attempts": attempts,
                "worst_attempt_s": round(worst, 4),
                "body": body,
            }
        )
    return results


def check_rollback(
    registry: ModelRegistry, *, target: str, vectorizer: str
) -> dict:
    """Gate the registry's two rollback stories in place.

    (1) A poisoned candidate (non-finite weights) must be rejected at
    the validation gate with the active version untouched.  (2) A
    corrupted on-disk active entry followed by a hot-reload must heal
    back to the last-good weights, bit for bit.
    """
    before = registry.current(target, vectorizer)
    if before is None:
        return {"ok": False, "reason": "no active model to protect"}
    poisoned = replace(
        before,
        version="poisoned" + before.version[:8],
        weights=tuple([float("nan")] + list(before.weights[1:])),
    )
    rejected = False
    try:
        registry.publish(poisoned)
    except RegistryError:
        rejected = True
    kept = registry.current(target, vectorizer)
    gate_ok = (
        rejected
        and kept is not None
        and kept.version == before.version
        and kept.weights == before.weights
    )

    # Corrupt the active entry's bytes on disk, then hot-reload.
    path, _ = registry._entry_paths(before.model_key, before.version)
    with open(path, "r+b") as fh:
        fh.write(b"\x00POISON\x00")
    registry.reload()
    healed = registry.current(target, vectorizer)
    heal_ok = (
        healed is not None
        and healed.version == before.version
        and healed.weights == before.weights
    )
    return {
        "ok": bool(gate_ok and heal_ok),
        "poisoned_publish_rejected": rejected,
        "active_version_kept": gate_ok,
        "corruption_healed": heal_ok,
        "heals": registry.stats.heals,
        "evictions": registry.stats.corrupt_evictions,
    }


def run_gate(
    *,
    kernels: int = 24,
    target: str = "armv8-neon",
    vectorizer: str = "llv",
    faults: str = DEFAULT_FAULT_SPEC,
    seed: int = 0,
    timeout: float = 5.0,
    workers: int = 4,
    registry_root=None,
    hang_s: float = 0.4,
) -> dict:
    """The full chaos gate; returns a report with ``report["ok"]``."""
    selected = suite_payloads(kernels, target=target, vectorizer=vectorizer)
    requests = [(name, payload) for name, payload, _ in selected]
    samples = [sample for _, _, sample in selected]

    registry = ModelRegistry(registry_root)
    entry = bootstrap_registry(
        registry, samples, target=target, vectorizer=vectorizer
    )

    # Clean pass: same pool shape, no fault plan.
    clean_pool = WorkerPool(
        Advisor(registry),
        workers=workers,
        timeout=timeout,
    ).start()
    try:
        clean = run_requests(clean_pool, requests)
    finally:
        clean_pool.stop()

    # Chaos pass: fresh advisor over the same registry, faults armed.
    # slow_handler sleeps longer than the deadline so an injected
    # slowdown is indistinguishable from a hang.
    plan = parse_faults(faults, seed=seed, hang_seconds=max(hang_s, timeout * 1.5))
    chaos_pool = WorkerPool(
        Advisor(registry),
        workers=workers,
        timeout=timeout,
        fault_plan=plan,
    ).start()
    try:
        chaotic = run_requests(chaos_pool, requests)
    finally:
        chaos_stats = chaos_pool.health()
        chaos_pool.stop()

    lost = [r["request_id"] for r in chaotic if r["status"] != 200]
    overruns = [
        r["request_id"]
        for r in clean + chaotic
        if r["worst_attempt_s"] > timeout + DEADLINE_GRACE_S
    ]
    mismatches = []
    by_id = {r["request_id"]: r for r in clean}
    for r in chaotic:
        base = by_id.get(r["request_id"])
        if base is None or base["status"] != 200 or r["status"] != 200:
            continue
        if canonical_verdict(r["body"]) != canonical_verdict(base["body"]):
            mismatches.append(r["request_id"])

    rollback = check_rollback(registry, target=target, vectorizer=vectorizer)

    report = {
        "requests": len(requests),
        "model_version": entry.version,
        "fault_spec": faults,
        "seed": seed,
        "timeout_s": timeout,
        "lost_requests": lost,
        "deadline_overruns": overruns,
        "verdict_mismatches": mismatches,
        "chaos_retries": sum(r["attempts"] - 1 for r in chaotic),
        "faults_injected": chaos_stats.get("faults_injected", 0),
        "workers_replaced": chaos_stats.get("workers_replaced", 0),
        "rollback": rollback,
        "ok": not lost
        and not overruns
        and not mismatches
        and rollback["ok"],
    }
    return report


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve-chaos",
        description="Deterministic chaos gate for the advisor service.",
    )
    parser.add_argument("--kernels", type=int, default=24)
    parser.add_argument("--target", default="armv8-neon")
    parser.add_argument("--vectorizer", default="llv")
    parser.add_argument("--faults", default=DEFAULT_FAULT_SPEC)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--registry", default=None, help="registry root (default: cache dir)"
    )
    parser.add_argument("--json", default=None, help="write the report here")
    args = parser.parse_args(argv)

    report = run_gate(
        kernels=args.kernels,
        target=args.target,
        vectorizer=args.vectorizer,
        faults=args.faults,
        seed=args.seed,
        timeout=args.timeout,
        workers=args.workers,
        registry_root=args.registry,
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    if report["ok"]:
        print(
            f"serve-chaos gate PASSED: {report['requests']} requests, "
            f"{report['faults_injected']} faults injected, "
            f"{report['chaos_retries']} retries, 0 lost, 0 overruns, "
            "verdicts bit-identical"
        )
        return 0
    print("serve-chaos gate FAILED")
    return 1
