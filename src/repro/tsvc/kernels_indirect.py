"""TSVC §4.1 indirect addressing (s4112…s4121) and the vector control
loops (va…vbor).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .suite import Dims, kernel


@kernel("s4112", "indirect-addressing")
def s4112(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    ip = k.array("ip", dtype=DType.I32)
    s = k.param("s", value=0.5)
    i = k.loop(d.n)
    a[i] = a[i] + b[ip[i]] * s


@kernel("s4113", "indirect-addressing")
def s4113(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    ip = k.array("ip", dtype=DType.I32)
    i = k.loop(d.n)
    a[ip[i]] = b[ip[i]] + c[i]


@kernel("s4114", "indirect-addressing", notes="n1 = 1 substituted")
def s4114(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    ip = k.array("ip", dtype=DType.I32)
    i = k.loop(d.n)
    a[i] = b[i] + c[ip[i]] * dd[i]


@kernel("s4115", "indirect-addressing")
def s4115(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    ip = k.array("ip", dtype=DType.I32)
    s = k.scalar("sum")
    i = k.loop(d.n)
    s.set(s + a[i] * b[ip[i]])


@kernel("s4116", "indirect-addressing")
def s4116(k: KernelBuilder, d: Dims) -> None:
    # Indirect row index into a matrix column.
    aa = k.array2("aa")
    ip = k.array("ip", dtype=DType.I32, extents=(d.n2,))
    s = k.scalar("sum")
    j = d.n2 // 2
    i = k.loop(d.n2 - 1)
    s.set(s + aa[ip[i], j])


@kernel("s4117", "indirect-addressing")
def s4117(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    ip = k.array("ip", dtype=DType.I32)
    s = k.scalar("sum")
    i = k.loop(d.n)
    s.set(s + a[i] * c[ip[i]] + b[i] * dd[i])


@kernel("s4121", "call-statements", notes="f2(b[i], c[i]) = b[i]*c[i] inlined")
def s4121(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    a[i] = a[i] + b[i] * c[i]


# ---------------------------------------------------------------------------
# Vector control loops
# ---------------------------------------------------------------------------


@kernel("va", "control-loops")
def va(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = b[i]


@kernel("vag", "control-loops")
def vag(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    ip = k.array("ip", dtype=DType.I32)
    i = k.loop(d.n)
    a[i] = b[ip[i]]


@kernel("vas", "control-loops")
def vas(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    ip = k.array("ip", dtype=DType.I32)
    i = k.loop(d.n)
    a[ip[i]] = b[i]


@kernel("vif", "control-loops")
def vif(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    with k.if_(b[i] > 0.0):
        a[i] = b[i]


@kernel("vpv", "control-loops")
def vpv(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = a[i] + b[i]


@kernel("vtv", "control-loops")
def vtv(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = a[i] * b[i]


@kernel("vpvtv", "control-loops")
def vpvtv(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    a[i] = a[i] + b[i] * c[i]


@kernel("vpvts", "control-loops")
def vpvts(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    s = k.param("s", value=0.5)
    i = k.loop(d.n)
    a[i] = a[i] + b[i] * s


@kernel("vpvpv", "control-loops")
def vpvpv(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    a[i] = a[i] + b[i] + c[i]


@kernel("vtvtv", "control-loops")
def vtvtv(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    a[i] = a[i] * b[i] * c[i]


@kernel("vsumr", "control-loops")
def vsumr(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    s = k.scalar("sum")
    i = k.loop(d.n)
    s.set(s + a[i])


@kernel("vdotr", "control-loops")
def vdotr(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    dot = k.scalar("dot")
    i = k.loop(d.n)
    dot.set(dot + a[i] * b[i])


@kernel("vbor", "control-loops", notes="high arithmetic intensity: ~24 flops per element")
def vbor(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e, f = k.arrays("a", "b", "c", "d", "e", "f")
    x = k.array("x")
    i = k.loop(d.n)
    a1 = b[i]
    b1 = c[i]
    c1 = dd[i]
    d1 = e[i]
    e1 = f[i]
    f1 = a[i]
    s1 = a1 * b1 * c1 + a1 * b1 * d1 + a1 * b1 * e1 + a1 * b1 * f1
    s2 = a1 * c1 * d1 + a1 * c1 * e1 + a1 * c1 * f1 + a1 * d1 * e1
    s3 = a1 * d1 * f1 + a1 * e1 * f1 + b1 * c1 * d1 + b1 * c1 * e1
    x[i] = s1 + s2 + s3
