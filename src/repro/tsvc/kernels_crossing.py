"""TSVC §2.8/§2.9/§2.10/§2.11 — crossing thresholds, wrap-around
variables, and diagonals (s281…s2111).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder, select
from ..ir.expr import CmpKind, Compare, IterValue
from ..ir.builder import EH
from .suite import Dims, kernel


@kernel("s281", "crossing-thresholds")
def s281(k: KernelBuilder, d: Dims) -> None:
    # The a[LEN-1-i] load crosses the a[i] store at i = LEN/2.
    a, b, c = k.arrays("a", "b", "c")
    x = k.scalar("x")
    n = d.n
    i = k.loop(n)
    x.set(a[(n - 1) - i] + b[i] * c[i])
    a[i] = x - 1.0
    b[i] = x.ref


@kernel("s1281", "crossing-thresholds")
def s1281(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    x = k.scalar("x")
    i = k.loop(d.n)
    x.set(b[i] * c[i] + a[i] * dd[i] + e[i])
    a[i] = x - 1.0
    b[i] = x.ref


@kernel("s291", "wraparound", notes="im1 = i-1 wrap-around recognized into the subscript")
def s291(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = (b[i] + b[i - 1]) * 0.5


@kernel("s292", "wraparound", notes="im1/im2 wrap-arounds recognized into subscripts")
def s292(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = (b[i] + b[i - 1] + b[i - 2]) * 0.333


@kernel("s293", "wraparound")
def s293(k: KernelBuilder, d: Dims) -> None:
    # a[i] = a[0]: every iteration reads what iteration 0 wrote.
    a = k.array("a")
    i = k.loop(d.n)
    a[i] = a[0]


@kernel("s2101", "diagonals")
def s2101(k: KernelBuilder, d: Dims) -> None:
    # Diagonal walk: stride n2+1 through the matrices.
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2)
    aa[i, i] = aa[i, i] + bb[i, i] * cc[i, i]


@kernel(
    "s2102",
    "diagonals",
    notes="imperfect nest (zero matrix, then unit diagonal) expressed "
    "as a select on j == i",
)
def s2102(k: KernelBuilder, d: Dims) -> None:
    aa = k.array2("aa")
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    aa[i, j] = select(
        EH(Compare(CmpKind.EQ, IterValue(0), IterValue(1))), 1.0, 0.0
    )


@kernel("s2111", "wavefronts")
def s2111(k: KernelBuilder, d: Dims) -> None:
    # aa[j][i] = (aa[j][i-1] + aa[j-1][i]) / 1.9 — true wavefront.
    aa = k.array2("aa")
    j = k.loop(d.n2 - 1)
    i = k.loop(d.n2 - 1)
    aa[j + 1, i + 1] = (aa[j + 1, i] + aa[j, i + 1]) / 1.9
