"""TSVC §1.2/§1.3 — induction variable recognition and global data flow
(s121…s128, s131, s132, s141, s151, s152).

The original loops drive subscripts through auxiliary induction
variables (``j = i+1``, ``k += 2`` …); strength-reduced forms are what
any vectorizer sees after induction recognition, so the kernels here
carry the recognized affine subscripts directly.  Inductions that only
advance under *control flow* (s123) cannot be recognized and stay
serial — represented by an explicit running counter that the loop
stores (the compiler-visible equivalent of the data-dependent write
position).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .suite import Dims, kernel


@kernel("s121", "induction", notes="j = i+1 folded into the subscript")
def s121(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n - 1)
    a[i] = a[i + 1] + b[i]


@kernel("s122", "induction", notes="k += j induction folded (n1=1, n3=1)")
def s122(k: KernelBuilder, d: Dims) -> None:
    # a[i] += b[LEN - k] with k = i+1 → reversed read of b.
    a, b = k.arrays("a", "b")
    n = d.n
    i = k.loop(n)
    a[i] = a[i] + b[(n - 1) - i]


@kernel(
    "s123",
    "induction",
    notes="conditional induction (compress); running position kept as a "
    "stored counter, which serializes the loop exactly like the "
    "data-dependent store position does",
)
def s123(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    j = k.scalar("j")
    i = k.loop(d.n // 2)
    j.set(j + 1.0)
    a[2 * i] = b[i] + dd[i] * e[i]
    with k.if_(c[i] > 0.0):
        j.set(j + 1.0)
        a[2 * i + 1] = c[i] + dd[i] * e[i]
    b[i] = j  # the compress cursor is live-out


@kernel("s124", "induction", notes="both branches advance j, so j == i")
def s124(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    with k.if_(b[i] > 0.0):
        a[i] = b[i] + dd[i] * e[i]
    with k.else_():
        a[i] = c[i] + dd[i] * e[i]


@kernel("s125", "induction", notes="k = i*n2 + j flattening folded")
def s125(k: KernelBuilder, d: Dims) -> None:
    flat = k.array("flat", extents=(d.n2 * d.n2,))
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    flat[i * d.n2 + j] = aa[i, j] + bb[i, j] * cc[i, j]


@kernel("s126", "induction", notes="k = i*(n2-1)+j flattening folded")
def s126(k: KernelBuilder, d: Dims) -> None:
    # Column recurrence: bb[j][i] = bb[j-1][i] + flat[k-1]*cc[j][i].
    flat = k.array("flat", extents=(d.n2 * d.n2,))
    bb, cc = k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2)
    j = k.loop(d.n2 - 1)
    bb[j + 1, i] = bb[j, i] + flat[i * (d.n2 - 1) + j] * cc[j + 1, i]


@kernel("s127", "induction", notes="j advances twice per iteration (j = 2i, 2i+1)")
def s127(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n // 2)
    a[2 * i] = b[i] + c[i] * dd[i]
    a[2 * i + 1] = b[i] + dd[i] * e[i]


@kernel("s128", "induction", notes="k = 2i folded")
def s128(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n // 2)
    a[i] = b[2 * i] - dd[i]
    b[2 * i] = a[i] + c[2 * i]


@kernel("s131", "global-dataflow", notes="m = 1 forward-substituted")
def s131(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n - 1)
    a[i] = a[i + 1] + b[i]


@kernel("s132", "global-dataflow", notes="m=0: j=m, k=m+1 forward-substituted")
def s132(k: KernelBuilder, d: Dims) -> None:
    aa = k.array2("aa")
    b, c = k.arrays("b", "c")
    i = k.loop(d.n2 - 1)
    aa[0, i + 1] = aa[1, i] + b[i + 1] * c[1]


@kernel(
    "s141",
    "nonlinear-dependence",
    notes="triangular packing subscript j(j+1)/2+i is non-affine; "
    "modelled as an indirect read-modify-write through an index "
    "array, which preserves the unanalyzable-store verdict",
)
def s141(k: KernelBuilder, d: Dims) -> None:
    flat = k.array("flat", extents=(d.n2 * d.n2,))
    bb = k.array2("bb")
    ix = k.array("ix", dtype=DType.I32, extents=(d.n2,))
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    flat[ix[j]] = flat[ix[j]] + bb[j, i]


@kernel("s151", "interprocedural", notes="s151s(a, b, 1) inlined")
def s151(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n - 1)
    a[i] = a[i + 1] + b[i]


@kernel("s152", "interprocedural", notes="s152s(a, b, c, i) inlined")
def s152(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    b[i] = dd[i] * e[i]
    a[i] = a[i] + b[i] * c[i]
