"""TSVC §3.4/§3.5/§4.x — packing, loop rerolling, equivalenced storage,
non-logical ifs, intrinsics and calls (s341…s491).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder, fexp
from ..ir.types import DType
from .suite import Dims, kernel

_PACK_NOTE = (
    "pack/unpack position is data-dependent; the running cursor is kept "
    "as a stored counter, which serializes the loop exactly like the "
    "original compress write position"
)


@kernel("s341", "packing", notes=_PACK_NOTE)
def s341(k: KernelBuilder, d: Dims) -> None:
    # Pack positive elements of b into a.
    a, b = k.arrays("a", "b")
    j = k.scalar("j")
    i = k.loop(d.n)
    with k.if_(b[i] > 0.0):
        j.set(j + 1.0)
        a[i] = b[i]
    b[i] = j  # cursor is live-out


@kernel("s342", "packing", notes=_PACK_NOTE)
def s342(k: KernelBuilder, d: Dims) -> None:
    # Unpack a into the positive positions of itself.
    a, b = k.arrays("a", "b")
    j = k.scalar("j")
    i = k.loop(d.n)
    with k.if_(a[i] > 0.0):
        j.set(j + 1.0)
        a[i] = b[i]
    b[i] = j


@kernel("s343", "packing", notes=_PACK_NOTE)
def s343(k: KernelBuilder, d: Dims) -> None:
    # 2-D pack of positive bb entries into flat storage.
    flat = k.array("flat", extents=(d.n2 * d.n2,))
    aa, bb = k.array2("aa"), k.array2("bb")
    j = k.scalar("j")
    i = k.loop(d.n2)
    jj = k.loop(d.n2)
    with k.if_(bb[jj, i] > 0.0):
        j.set(j + 1.0)
        flat[i * d.n2 + jj] = aa[jj, i]
    aa[jj, i] = j


@kernel("s351", "loop-rerolling")
def s351(k: KernelBuilder, d: Dims) -> None:
    # Hand-unrolled saxpy, 5 statements per iteration.
    a, b = k.arrays("a", "b")
    alpha = k.param("alpha", value=0.75)
    i = k.loop(d.n // 5)
    a[5 * i] = a[5 * i] + alpha * b[5 * i]
    a[5 * i + 1] = a[5 * i + 1] + alpha * b[5 * i + 1]
    a[5 * i + 2] = a[5 * i + 2] + alpha * b[5 * i + 2]
    a[5 * i + 3] = a[5 * i + 3] + alpha * b[5 * i + 3]
    a[5 * i + 4] = a[5 * i + 4] + alpha * b[5 * i + 4]


@kernel("s1351", "loop-rerolling", notes="pointer-walk form of plain vector add")
def s1351(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    a[i] = b[i] + c[i]


@kernel("s352", "loop-rerolling")
def s352(k: KernelBuilder, d: Dims) -> None:
    # Hand-unrolled dot product.
    a, b = k.arrays("a", "b")
    dot = k.scalar("dot")
    i = k.loop(d.n // 5)
    dot.set(
        dot
        + a[5 * i] * b[5 * i]
        + a[5 * i + 1] * b[5 * i + 1]
        + a[5 * i + 2] * b[5 * i + 2]
        + a[5 * i + 3] * b[5 * i + 3]
        + a[5 * i + 4] * b[5 * i + 4]
    )


@kernel("s353", "loop-rerolling", notes="hand-unrolled indirect saxpy")
def s353(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    ip = k.array("ip", dtype=DType.I32)
    alpha = k.param("alpha", value=0.75)
    i = k.loop(d.n // 5)
    a[5 * i] = a[5 * i] + alpha * b[ip[5 * i]]
    a[5 * i + 1] = a[5 * i + 1] + alpha * b[ip[5 * i + 1]]
    a[5 * i + 2] = a[5 * i + 2] + alpha * b[ip[5 * i + 2]]
    a[5 * i + 3] = a[5 * i + 3] + alpha * b[ip[5 * i + 3]]
    a[5 * i + 4] = a[5 * i + 4] + alpha * b[ip[5 * i + 4]]


@kernel("s421", "storage-classes", notes="xx/yy equivalenced onto one array")
def s421(k: KernelBuilder, d: Dims) -> None:
    x = k.array("x")
    a = k.array("a")
    i = k.loop(d.n - 1)
    x[i] = x[i + 1] + a[i]


@kernel("s1421", "storage-classes", notes="xx = &b[LEN/2] folded into the subscript")
def s1421(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    half = d.n // 2
    i = k.loop(half)
    b[i] = b[i + half] + a[i]


@kernel("s422", "storage-classes", notes="xx = flat + 8 folded; distance-8 recurrence")
def s422(k: KernelBuilder, d: Dims) -> None:
    x = k.array("x")
    a = k.array("a")
    i = k.loop(d.n - 8)
    x[i + 8] = x[i] + a[i]


@kernel("s423", "storage-classes", notes="xx = flat + 4 folded")
def s423(k: KernelBuilder, d: Dims) -> None:
    x = k.array("x")
    a = k.array("a")
    i = k.loop(d.n - 4)
    x[i + 1] = x[i + 4] + a[i]


@kernel("s424", "storage-classes", notes="xx = flat + 3 folded; distance-4 output recurrence")
def s424(k: KernelBuilder, d: Dims) -> None:
    x = k.array("x")
    a = k.array("a")
    i = k.loop(d.n - 4)
    x[i + 4] = x[i] + a[i]


@kernel("s431", "loop-recognition", notes="k = 0 after constant folding")
def s431(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = a[i] + b[i]


@kernel("s441", "non-logical-ifs")
def s441(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n)
    with k.if_(dd[i] < 0.0):
        a[i] = a[i] + b[i] * c[i]
    with k.else_():
        with k.if_(dd[i] == 0.0):
            a[i] = a[i] + b[i] * b[i]
        with k.else_():
            a[i] = a[i] + c[i] * c[i]


@kernel("s442", "non-logical-ifs", notes="the switch statement becomes nested ifs on an index array")
def s442(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    ix = k.array("ix", dtype=DType.I32)
    i = k.loop(d.n)
    with k.if_((ix[i] & 1) == 0):
        with k.if_((ix[i] & 2) == 0):
            a[i] = a[i] + b[i] * b[i]
        with k.else_():
            a[i] = a[i] + c[i] * c[i]
    with k.else_():
        with k.if_((ix[i] & 2) == 0):
            a[i] = a[i] + dd[i] * dd[i]
        with k.else_():
            a[i] = a[i] + e[i] * e[i]


@kernel("s443", "non-logical-ifs")
def s443(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n)
    with k.if_(dd[i] <= 0.0):
        a[i] = a[i] + b[i] * c[i]
    with k.else_():
        a[i] = a[i] + b[i] * b[i]


@kernel("s451", "intrinsics", notes="sin/cos stand-in: exp (scalarized vector call)")
def s451(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    a[i] = fexp(b[i]) + c[i] * b[i]


@kernel("s452", "intrinsics")
def s452(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    a[i] = b[i] + c[i] * (i + 1)


@kernel(
    "s453",
    "induction",
    notes="s += 2 is an induction the original compilers recognize; kept "
    "as a literal recurrence here, so this kernel stays scalar (a "
    "documented divergence from LLVM, which vectorizes it)",
)
def s453(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    s = k.scalar("s")
    i = k.loop(d.n)
    s.set(s + 2.0)
    a[i] = s * b[i]


@kernel(
    "s471",
    "call-statements",
    notes="the s471s() call is modelled by an opaque serializing scalar "
    "(a call is a vectorization barrier)",
)
def s471(k: KernelBuilder, d: Dims) -> None:
    b, c, dd, e, x = k.arrays("b", "c", "d", "e", "x")
    barrier = k.scalar("side_effect")
    i = k.loop(d.n)
    x[i] = b[i] + dd[i] * dd[i]
    barrier.set(barrier * 0.5 + x[i])
    b[i] = c[i] + dd[i] * e[i]


@kernel(
    "s481",
    "control-flow",
    notes="the original exits the program on d[i] < 0; the exit flag is "
    "a guarded non-reduction write, preserving the serial verdict",
)
def s481(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    flag = k.scalar("flag")
    i = k.loop(d.n)
    with k.if_(dd[i] < 0.0):
        flag.set(1.0)
    a[i] = a[i] + b[i] * c[i]
    c[i] = flag.ref


@kernel(
    "s482",
    "control-flow",
    notes="loop breaks when c[i] > b[i]; modelled like s481",
)
def s482(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    flag = k.scalar("flag")
    i = k.loop(d.n)
    a[i] = a[i] + b[i] * c[i]
    with k.if_(c[i] > b[i]):
        flag.set(1.0)
    b[i] = flag.ref


@kernel("s491", "indirect-addressing")
def s491(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    ip = k.array("ip", dtype=DType.I32)
    i = k.loop(d.n)
    a[ip[i]] = b[i] + c[i] * dd[i]
