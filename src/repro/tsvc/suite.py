"""TSVC kernel registry.

The Test Suite for Vectorizing Compilers (Callahan/Dongarra/Levine,
extended by Maleki et al.) is the workload of every experiment in the
paper: 151 small loops organized by the compiler capability they probe.
Kernels register through the :func:`kernel` decorator and are built
lazily (construction involves verification) and cached.

Fidelity notes: the kernels are re-expressed in our loop IR from the C
originals.  Loops are normalized to start at 0 with unit step (TSVC's
``i=1`` starts appear as wrapped ``a[i-1]`` accesses at the boundary —
harmless for both correctness testing and dependence structure).
Constructs outside the IR — ``goto``/``break`` early exits, real
function calls, explicit induction variables — are approximated and
carry a note; the approximations preserve each kernel's vectorization
verdict except where a note says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..ir.builder import KernelBuilder
from ..ir.kernel import LoopKernel

#: Standard TSVC 1-D array length and 2-D matrix edge.
LEN = 32000
LEN2 = 256


@dataclass(frozen=True)
class Dims:
    """Suite sizes; tests build shrunken suites for functional runs.

    ``n`` must stay divisible by 8 and ≥ 40 (kernels derive strides and
    offsets like n//2 and n//5 from it).
    """

    n: int = LEN
    n2: int = LEN2

    def __post_init__(self) -> None:
        if self.n % 8 or self.n < 40:
            raise ValueError(f"n must be a multiple of 8 and >= 40, got {self.n}")
        if self.n2 % 8 or self.n2 < 16:
            raise ValueError(f"n2 must be a multiple of 8 and >= 16, got {self.n2}")


STANDARD_DIMS = Dims()


@dataclass
class KernelEntry:
    name: str
    category: str
    factory: Callable[[KernelBuilder, Dims], None]
    notes: str = ""

    def __post_init__(self) -> None:
        self._cache: dict[Dims, LoopKernel] = {}

    def build(self, dims: Dims = STANDARD_DIMS) -> LoopKernel:
        if dims not in self._cache:
            kb = KernelBuilder(
                self.name,
                category=self.category,
                default_len=dims.n,
                default_len2=dims.n2,
            )
            self.factory(kb, dims)
            self._cache[dims] = kb.build()
        return self._cache[dims]


_REGISTRY: dict[str, KernelEntry] = {}


def kernel(name: str, category: str, notes: str = ""):
    """Register a TSVC kernel builder function."""

    def deco(fn: Callable[[KernelBuilder], None]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate TSVC kernel {name!r}")
        _REGISTRY[name] = KernelEntry(name, category, fn, notes)
        return fn

    return deco


def _ensure_loaded() -> None:
    # Import the kernel definition modules exactly once.
    from . import (  # noqa: F401
        kernels_linear,
        kernels_induction,
        kernels_globalflow,
        kernels_distribution,
        kernels_expansion,
        kernels_crossing,
        kernels_reductions,
        kernels_packing,
        kernels_indirect,
    )


def get_kernel(name: str, dims: Dims = STANDARD_DIMS) -> LoopKernel:
    _ensure_loaded()
    try:
        return _REGISTRY[name].build(dims)
    except KeyError:
        pass
    # Synthetic corpus kernels (``gx{seed}_{index}_{category}``) resolve
    # through the generator; they carry their own sizes, so ``dims`` is
    # ignored.  The delegation is what lets pool workers, checkpoint
    # journals, and the chaos harness rebuild generated kernels by name
    # exactly like suite kernels.
    from ..gen import generate_kernel, is_generated_name

    if is_generated_name(name):
        return generate_kernel(name)
    raise KeyError(f"unknown TSVC kernel {name!r}") from None


def get_entry(name: str) -> KernelEntry:
    _ensure_loaded()
    return _REGISTRY[name]


def kernel_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_kernels(dims: Dims = STANDARD_DIMS) -> Iterator[LoopKernel]:
    _ensure_loaded()
    for name in sorted(_REGISTRY):
        yield _REGISTRY[name].build(dims)


def kernels_by_category() -> dict[str, list[str]]:
    _ensure_loaded()
    out: dict[str, list[str]] = {}
    for name in sorted(_REGISTRY):
        out.setdefault(_REGISTRY[name].category, []).append(name)
    return out


def suite_size() -> int:
    _ensure_loaded()
    return len(_REGISTRY)
