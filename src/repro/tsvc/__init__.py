"""The TSVC benchmark suite re-expressed in the loop IR."""

from .suite import (
    Dims,
    KernelEntry,
    LEN,
    LEN2,
    STANDARD_DIMS,
    all_kernels,
    get_entry,
    get_kernel,
    kernel,
    kernel_names,
    kernels_by_category,
    suite_size,
)

__all__ = [
    "Dims",
    "KernelEntry",
    "LEN",
    "LEN2",
    "STANDARD_DIMS",
    "all_kernels",
    "get_entry",
    "get_kernel",
    "kernel",
    "kernel_names",
    "kernels_by_category",
    "suite_size",
]
