"""TSVC §2.2/§2.3/§2.4 — loop distribution, interchange, node splitting
(s221…s235, s241…s2244).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder
from .suite import Dims, kernel


@kernel("s221", "loop-distribution")
def s221(k: KernelBuilder, d: Dims) -> None:
    # Distribution would split the saxpy from the b-recurrence; as one
    # loop the recurrence serializes everything (LLV is all-or-nothing,
    # SLP can still pack the first statement).
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n - 1)
    a[i + 1] = a[i + 1] + c[i + 1] * dd[i + 1]
    b[i + 1] = b[i] + a[i + 1] + dd[i + 1]


@kernel("s1221", "loop-distribution")
def s1221(k: KernelBuilder, d: Dims) -> None:
    # Distance-4 recurrence: safe at VF 4 (NEON f32), unsafe at VF 8
    # (AVX2 f32) — a genuinely target-dependent verdict.
    a, b = k.arrays("a", "b")
    i = k.loop(d.n - 4)
    b[i + 4] = b[i] + a[i + 4]


@kernel("s222", "loop-distribution")
def s222(k: KernelBuilder, d: Dims) -> None:
    a, b, c, e = k.arrays("a", "b", "c", "e")
    i = k.loop(d.n - 1)
    a[i + 1] = a[i + 1] + b[i + 1] * c[i + 1]
    e[i + 1] = e[i] * e[i]
    a[i + 1] = a[i + 1] - b[i + 1] * c[i + 1]


@kernel("s231", "loop-interchange")
def s231(k: KernelBuilder, d: Dims) -> None:
    # Column recurrence in the inner loop; interchange would fix it.
    aa, bb = k.array2("aa"), k.array2("bb")
    i = k.loop(d.n2)
    j = k.loop(d.n2 - 1)
    aa[j + 1, i] = aa[j, i] + bb[j + 1, i]


@kernel("s232", "loop-interchange", notes="triangular bound expressed as a guard")
def s232(k: KernelBuilder, d: Dims) -> None:
    aa, bb = k.array2("aa"), k.array2("bb")
    j = k.loop(d.n2 - 1)
    i = k.loop(d.n2 - 1)
    with k.if_(i <= j):
        aa[j + 1, i + 1] = aa[j + 1, i] * aa[j + 1, i] + bb[j + 1, i + 1]


@kernel("s1232", "loop-interchange")
def s1232(k: KernelBuilder, d: Dims) -> None:
    # Independent, but the inner loop walks columns (strided access).
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    j = k.loop(d.n2)
    i = k.loop(d.n2)
    aa[i, j] = bb[i, j] + cc[i, j]


@kernel("s233", "loop-interchange")
def s233(k: KernelBuilder, d: Dims) -> None:
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2 - 1)
    j = k.loop(d.n2 - 1)
    aa[j + 1, i + 1] = aa[j, i + 1] + cc[j + 1, i + 1]
    bb[j + 1, i + 1] = bb[j + 1, i] + cc[j + 1, i + 1]


@kernel("s2233", "loop-interchange")
def s2233(k: KernelBuilder, d: Dims) -> None:
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2 - 1)
    j = k.loop(d.n2 - 1)
    aa[j + 1, i + 1] = aa[j, i + 1] + cc[j + 1, i + 1]
    bb[i + 1, j + 1] = bb[i, j + 1] + cc[i + 1, j + 1]


@kernel(
    "s235",
    "loop-interchange",
    notes="imperfect nest: the outer-loop statement a[i] += b[i]*c[i] is "
    "dropped (with the b/c declarations it used); the inner column "
    "recurrence decides the verdict either way",
)
def s235(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    aa, bb = k.array2("aa"), k.array2("bb")
    i = k.loop(d.n2)
    j = k.loop(d.n2 - 1)
    aa[j + 1, i] = aa[j, i] + bb[j + 1, i] * a[i]


@kernel("s241", "node-splitting")
def s241(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n - 1)
    a[i] = b[i] * c[i] * dd[i]
    b[i] = a[i] * a[i + 1] * dd[i]


@kernel("s242", "node-splitting")
def s242(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    s1 = k.param("s1", value=1.0)
    s2 = k.param("s2", value=2.0)
    i = k.loop(d.n - 1)
    a[i + 1] = a[i] + s1.ref + s2.ref + b[i + 1] + c[i + 1] + dd[i + 1]


@kernel("s243", "node-splitting")
def s243(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n - 1)
    a[i] = b[i] + c[i] * dd[i]
    b[i] = a[i] + dd[i] * e[i]
    a[i] = b[i] + a[i + 1] * dd[i]


@kernel("s244", "node-splitting")
def s244(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n - 1)
    a[i] = b[i] + c[i] * dd[i]
    b[i] = c[i] + b[i]
    a[i + 1] = b[i] + a[i + 1] * dd[i]


@kernel("s1244", "node-splitting")
def s1244(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n - 1)
    a[i] = b[i] + c[i] * c[i] + b[i] * b[i] + c[i]
    dd[i] = a[i] + a[i + 1]


@kernel("s2244", "node-splitting")
def s2244(k: KernelBuilder, d: Dims) -> None:
    # Forward output dependence — safe to vectorize as-is.
    a, b, c, e = k.arrays("a", "b", "c", "e")
    i = k.loop(d.n - 1)
    a[i + 1] = b[i] + e[i]
    a[i] = b[i] + c[i]
