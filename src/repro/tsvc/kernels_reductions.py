"""TSVC §3.1–§3.3 — reductions, recurrences, and searches
(s311…s3113, s321…s323, s331, s332).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder, fabs
from ..ir.types import DType
from .suite import Dims, kernel


@kernel("s311", "reductions")
def s311(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    s = k.scalar("sum")
    i = k.loop(d.n)
    s.set(s + a[i])


@kernel("s31111", "reductions", notes="test(a+4i) partial-sum calls inlined")
def s31111(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    s = k.scalar("sum")
    i = k.loop(d.n // 4)
    s.set(s + a[4 * i] + a[4 * i + 1] + a[4 * i + 2] + a[4 * i + 3])


@kernel("s312", "reductions")
def s312(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    prod = k.scalar("prod", init=1.0)
    i = k.loop(d.n)
    prod.set(prod * a[i])


@kernel("s313", "reductions")
def s313(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    dot = k.scalar("dot")
    i = k.loop(d.n)
    dot.set(dot + a[i] * b[i])


@kernel("s314", "reductions")
def s314(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    x = k.scalar("x", init=-1e30)
    i = k.loop(d.n)
    with k.if_(a[i] > x):
        x.set(a[i])


@kernel("s315", "reductions", notes="argmax: the index recurrence blocks vectorization")
def s315(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    x = k.scalar("x", init=-1e30)
    index = k.scalar("index", dtype=DType.I32)
    i = k.loop(d.n)
    with k.if_(a[i] > x):
        x.set(a[i])
        index.set(i.as_value())


@kernel("s316", "reductions")
def s316(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    x = k.scalar("x", init=1e30)
    i = k.loop(d.n)
    with k.if_(a[i] < x):
        x.set(a[i])


@kernel("s317", "reductions", notes="geometric series: a product reduction with no arrays")
def s317(k: KernelBuilder, d: Dims) -> None:
    q = k.scalar("q", init=1.0)
    k.loop(d.n // 2)
    q.set(q * 0.99)


@kernel("s318", "reductions", notes="index of max |a[i]|; the index recurrence blocks vectorization")
def s318(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    x = k.scalar("max", init=-1.0)
    index = k.scalar("index", dtype=DType.I32)
    i = k.loop(d.n)
    with k.if_(fabs(a[i]) > x):
        x.set(fabs(a[i]))
        index.set(i.as_value())


@kernel("s319", "reductions")
def s319(k: KernelBuilder, d: Dims) -> None:
    # One sum, fed by two chained updates per iteration.
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    s = k.scalar("sum")
    i = k.loop(d.n)
    a[i] = c[i] + dd[i]
    s.set(s + a[i])
    b[i] = c[i] + e[i]
    s.set(s + b[i])


@kernel("s3110", "reductions", notes="2-D argmax; index recurrences block vectorization")
def s3110(k: KernelBuilder, d: Dims) -> None:
    aa = k.array2("aa")
    x = k.scalar("max", init=-1e30)
    xindex = k.scalar("xindex", dtype=DType.I32)
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    with k.if_(aa[i, j] > x):
        x.set(aa[i, j])
        xindex.set(i.as_value())


@kernel("s13110", "reductions", notes="2-D max without index tracking — vectorizable")
def s13110(k: KernelBuilder, d: Dims) -> None:
    aa = k.array2("aa")
    x = k.scalar("max", init=-1e30)
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    with k.if_(aa[i, j] > x):
        x.set(aa[i, j])


@kernel("s3111", "reductions")
def s3111(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    s = k.scalar("sum")
    i = k.loop(d.n)
    with k.if_(a[i] > 0.0):
        s.set(s + a[i])


@kernel("s3112", "reductions")
def s3112(k: KernelBuilder, d: Dims) -> None:
    # Running (prefix) sum stored every iteration — a true recurrence.
    a, b = k.arrays("a", "b")
    s = k.scalar("sum")
    i = k.loop(d.n)
    s.set(s + a[i])
    b[i] = s.ref


@kernel("s3113", "reductions")
def s3113(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    x = k.scalar("max", init=-1.0)
    i = k.loop(d.n)
    with k.if_(fabs(a[i]) > x):
        x.set(fabs(a[i]))


@kernel("s321", "recurrences")
def s321(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n - 1)
    a[i + 1] = a[i + 1] + a[i] * b[i + 1]


@kernel("s322", "recurrences")
def s322(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n - 2)
    a[i + 2] = a[i + 2] + a[i + 1] * b[i + 2] + a[i] * c[i + 2]


@kernel("s323", "recurrences")
def s323(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n - 1)
    a[i + 1] = b[i] + c[i + 1] * dd[i + 1]
    b[i + 1] = a[i + 1] + c[i + 1] * e[i + 1]


@kernel("s331", "search", notes="last index with a[i] < 0; the index recurrence is serial")
def s331(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    j = k.scalar("j", dtype=DType.I32, init=-1)
    i = k.loop(d.n)
    with k.if_(a[i] < 0.0):
        j.set(i.as_value())


@kernel(
    "s332",
    "search",
    notes="first value > t; the original breaks out of the loop — the "
    "early exit is modelled as guarded result updates, preserving the "
    "not-vectorizable verdict",
)
def s332(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    t = k.param("t", value=0.9)
    index = k.scalar("index", dtype=DType.I32, init=-2)
    value = k.scalar("value", init=-1.0)
    i = k.loop(d.n)
    with k.if_(a[i] > t):
        index.set(i.as_value())
        value.set(a[i])
