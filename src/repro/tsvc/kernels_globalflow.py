"""TSVC §1.6/§1.7/§2.1 — control flow, symbolics, statement reordering
(s161…s176, s211, s212, s1213).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder
from .suite import Dims, kernel


@kernel("s161", "control-flow", notes="goto converted to if/else")
def s161(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n - 1)
    with k.if_(b[i] < 0.0):
        c[i + 1] = a[i] + dd[i] * dd[i]
    with k.else_():
        a[i] = c[i] + dd[i] * e[i]


@kernel("s1161", "control-flow", notes="goto converted to if/else")
def s1161(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    with k.if_(c[i] < 0.0):
        b[i] = a[i] + dd[i] * dd[i]
    with k.else_():
        a[i] = c[i] + dd[i] * e[i]


@kernel("s162", "control-flow", notes="k = 1: the guarded recurrence is real")
def s162(k: KernelBuilder, d: Dims) -> None:
    # if (k > 0) a[i] = a[i-k] + b[i] — with k = 1 a serial chain.
    a, b = k.arrays("a", "b")
    i = k.loop(d.n - 1)
    a[i + 1] = a[i] + b[i + 1]


@kernel("s171", "symbolics", notes="symbolic stride inc instantiated to 2")
def s171(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n // 2)
    a[2 * i] = a[2 * i] + b[i]


@kernel("s172", "symbolics", notes="n1=1, n3=1: unit-stride after substitution")
def s172(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = a[i] + b[i]


@kernel("s173", "symbolics")
def s173(k: KernelBuilder, d: Dims) -> None:
    # a[i + LEN/2] = a[i] + b[i] — distance LEN/2 is always safe.
    a, b = k.arrays("a", "b")
    half = d.n // 2
    i = k.loop(half)
    a[i + half] = a[i] + b[i]


@kernel("s174", "symbolics", notes="M = LEN/2 (the call argument)")
def s174(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    half = d.n // 2
    i = k.loop(half)
    a[i + half] = a[i] + b[i]


@kernel("s175", "symbolics", notes="inc = 1 substituted")
def s175(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    i = k.loop(d.n - 1)
    a[i] = a[i + 1] + b[i]


@kernel("s176", "symbolics", notes="convolution, m scaled to n2 to bound runtime")
def s176(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    m = d.n2
    j = k.loop(m)
    i = k.loop(m)
    a[i] = a[i] + b[i - j + (m - 1)] * c[j]


@kernel("s211", "statement-reordering")
def s211(k: KernelBuilder, d: Dims) -> None:
    # Needs the b-store sunk above the b-load to vectorize; a
    # straight-line vectorizer must refuse.
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n - 2)
    a[i + 1] = b[i] + c[i + 1] * dd[i + 1]
    b[i + 1] = b[i + 2] - e[i + 1]


@kernel("s212", "statement-reordering")
def s212(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n - 1)
    a[i] = a[i] * c[i]
    b[i] = b[i] + a[i + 1] * dd[i]


@kernel("s1213", "statement-reordering")
def s1213(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n - 2)
    a[i + 1] = b[i - 1 + 1] + c[i + 1]
    b[i + 1] = a[i + 2] * dd[i + 1]
