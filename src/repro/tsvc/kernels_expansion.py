"""TSVC §2.5/§2.6/§2.7 — scalar/array expansion and control flow
(s251…s261, s271…s2712).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder
from .suite import Dims, kernel


@kernel("s251", "scalar-expansion")
def s251(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    s = k.scalar("s")
    i = k.loop(d.n)
    s.set(b[i] + c[i] * dd[i])
    a[i] = s * s


@kernel("s1251", "scalar-expansion")
def s1251(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    s = k.scalar("s")
    i = k.loop(d.n)
    s.set(b[i] + c[i])
    b[i] = a[i] + dd[i]
    a[i] = s * e[i]


@kernel("s2251", "scalar-expansion")
def s2251(k: KernelBuilder, d: Dims) -> None:
    # s is read before it is (re)defined: its value crosses iterations.
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    s = k.scalar("s")
    i = k.loop(d.n)
    a[i] = s * e[i]
    s.set(b[i] + c[i])
    b[i] = a[i] + dd[i]


@kernel("s3251", "scalar-expansion")
def s3251(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n - 1)
    a[i + 1] = b[i] + c[i]
    b[i] = c[i] * e[i]
    dd[i] = a[i] * e[i]


@kernel("s252", "scalar-expansion")
def s252(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    s = k.scalar("s")
    t = k.scalar("t")
    i = k.loop(d.n)
    s.set(b[i] * c[i])
    a[i] = s + t
    t.set(s)


@kernel("s253", "scalar-expansion")
def s253(k: KernelBuilder, d: Dims) -> None:
    # s only defined under the guard — LLVM 6 cannot expand it.
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    s = k.scalar("s")
    i = k.loop(d.n)
    with k.if_(a[i] > b[i]):
        s.set(a[i] - b[i] * dd[i])
        c[i] = c[i] + s
        a[i] = s


@kernel("s254", "scalar-expansion", notes="wrap-around x = b[i-1] kept as a recurrence")
def s254(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    x = k.scalar("x")
    i = k.loop(d.n)
    a[i] = (b[i] + x) * 0.5
    x.set(b[i])


@kernel("s255", "scalar-expansion")
def s255(k: KernelBuilder, d: Dims) -> None:
    a, b = k.arrays("a", "b")
    x = k.scalar("x")
    y = k.scalar("y")
    i = k.loop(d.n)
    a[i] = (b[i] + x + y) * 0.333
    y.set(x.ref)
    x.set(b[i])


@kernel("s256", "array-expansion")
def s256(k: KernelBuilder, d: Dims) -> None:
    a = k.array("a")
    aa, bb = k.array2("aa"), k.array2("bb")
    i = k.loop(d.n2)
    j = k.loop(d.n2 - 1)
    a[j + 1] = aa[j + 1, i] - a[j]
    aa[j + 1, i] = a[j + 1] + bb[j + 1, i]


@kernel("s257", "array-expansion")
def s257(k: KernelBuilder, d: Dims) -> None:
    # The store a[i] is invariant in the inner loop.
    a = k.array("a")
    aa, bb = k.array2("aa"), k.array2("bb")
    i = k.loop(d.n2 - 1)
    j = k.loop(d.n2)
    a[i + 1] = aa[j, i + 1] - a[i]
    aa[j, i + 1] = a[i + 1] + bb[j, i + 1]


@kernel("s258", "array-expansion")
def s258(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    aa = k.array2("aa")
    s = k.scalar("s")
    i = k.loop(d.n2)
    with k.if_(a[i] > 0.0):
        s.set(dd[i] * dd[i])
    b[i] = s * c[i] + dd[i]
    e[i] = (s + 1.0) * aa[0, i]


@kernel("s261", "scalar-expansion")
def s261(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    t = k.scalar("t")
    i = k.loop(d.n - 1)
    t.set(a[i + 1] + b[i + 1])
    a[i + 1] = t + c[i]
    t.set(c[i + 1] * dd[i + 1])
    c[i + 1] = t.ref


@kernel("s271", "control-flow")
def s271(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    with k.if_(b[i] > 0.0):
        a[i] = a[i] + b[i] * c[i]


@kernel("s272", "control-flow")
def s272(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    t = k.param("t", value=0.0)
    i = k.loop(d.n)
    with k.if_(e[i] >= t):
        a[i] = a[i] + c[i] * dd[i]
        b[i] = b[i] + c[i] * c[i]


@kernel("s273", "control-flow")
def s273(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    a[i] = a[i] + dd[i] * e[i]
    with k.if_(a[i] < 0.0):
        b[i] = b[i] + dd[i] * e[i]
    c[i] = c[i] + a[i] * dd[i]


@kernel("s274", "control-flow")
def s274(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    a[i] = c[i] + e[i] * dd[i]
    with k.if_(a[i] > 0.0):
        b[i] = a[i] + b[i]
    with k.else_():
        a[i] = dd[i] * e[i]


@kernel(
    "s275",
    "control-flow",
    notes="the original guards a whole inner loop; the guard is pushed "
    "into the loop body (same predicate each inner iteration)",
)
def s275(k: KernelBuilder, d: Dims) -> None:
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2)
    j = k.loop(d.n2 - 1)
    with k.if_(aa[0, i] > 0.0):
        aa[j + 1, i] = aa[j, i] + bb[j + 1, i] * cc[j + 1, i]


@kernel(
    "s2275",
    "control-flow",
    notes="imperfect nest: the 1-D statement is dropped; the 2-D "
    "statement's column-strided accesses dominate either way",
)
def s2275(k: KernelBuilder, d: Dims) -> None:
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    aa[j, i] = aa[j, i] + bb[j, i] * cc[j, i]


@kernel("s276", "control-flow")
def s276(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    mid = d.n // 2
    i = k.loop(d.n)
    with k.if_(i + 1 < mid):
        a[i] = a[i] + b[i] * c[i]
    with k.else_():
        a[i] = a[i] + b[i] * dd[i]


@kernel("s277", "control-flow", notes="gotos converted to nested ifs")
def s277(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n - 1)
    with k.if_(a[i] < 0.0):
        with k.if_(b[i] < 0.0):
            a[i] = a[i] + c[i] * dd[i]
        b[i + 1] = c[i] + dd[i] * e[i]


@kernel("s278", "control-flow")
def s278(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    with k.if_(a[i] > 0.0):
        c[i] = -c[i] + dd[i] * e[i]
    with k.else_():
        b[i] = -b[i] + dd[i] * e[i]
    a[i] = b[i] + c[i] * dd[i]


@kernel("s279", "control-flow")
def s279(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    with k.if_(a[i] > 0.0):
        c[i] = -c[i] + e[i] * e[i]
    with k.else_():
        b[i] = -b[i] + dd[i] * dd[i]
        c[i] = -c[i] + e[i] * e[i]
    a[i] = b[i] + c[i] * dd[i]


@kernel("s1279", "control-flow")
def s1279(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    i = k.loop(d.n)
    with k.if_(a[i] < 0.0):
        with k.if_(b[i] > a[i]):
            c[i] = c[i] + dd[i] * e[i]


@kernel("s2710", "control-flow", notes="x is a scalar argument (x = 1)")
def s2710(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd, e = k.arrays("a", "b", "c", "d", "e")
    x = k.param("x", value=1.0)
    i = k.loop(d.n)
    with k.if_(a[i] > b[i]):
        a[i] = a[i] + b[i] * dd[i]
        with k.if_(x > 0.0):
            c[i] = c[i] + dd[i] * dd[i]
        with k.else_():
            c[i] = dd[i] * e[i] + 1.0
    with k.else_():
        b[i] = a[i] + e[i] * e[i]
        with k.if_(x > 0.0):
            c[i] = a[i] + dd[i] * dd[i]
        with k.else_():
            c[i] = c[i] + e[i] * e[i]


@kernel("s2711", "control-flow")
def s2711(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    with k.if_(b[i] != 0.0):
        a[i] = a[i] + b[i] * c[i]


@kernel("s2712", "control-flow")
def s2712(k: KernelBuilder, d: Dims) -> None:
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(d.n)
    with k.if_(a[i] > b[i]):
        a[i] = a[i] + b[i] * c[i]
