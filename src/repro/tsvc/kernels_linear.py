"""TSVC §1.1 — linear dependence testing (s000, s111…s1119).

These kernels probe whether the compiler's dependence tests can prove
independence (even/odd interleavings, reversed loops, crossing loads,
diagonal 2-D dependences) or must give up (true recurrences, transposed
accesses).
"""

from __future__ import annotations

from ..ir.builder import KernelBuilder
from .suite import Dims, kernel


@kernel("s000", "linear-dependence")
def s000(k: KernelBuilder, d: Dims) -> None:
    # The paper's running example (slide 6): a[i] = b[i] + 1.
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = b[i] + 1.0


@kernel("s111", "linear-dependence")
def s111(k: KernelBuilder, d: Dims) -> None:
    # Odd/even interleaving: a[2i+1] = a[2i] + b[2i+1] — no real dep.
    a, b = k.arrays("a", "b")
    i = k.loop(d.n // 2 - 1)
    a[2 * i + 1] = a[2 * i] + b[2 * i + 1]


@kernel("s1111", "linear-dependence")
def s1111(k: KernelBuilder, d: Dims) -> None:
    a, b, c, dd = k.arrays("a", "b", "c", "d")
    i = k.loop(d.n // 2)
    a[2 * i] = (
        c[i] * b[i] + dd[i] * b[i] + c[i] * c[i] + dd[i] * b[i] + dd[i] * c[i]
    )


@kernel("s112", "linear-dependence", notes="descending loop normalized to reversed subscripts")
def s112(k: KernelBuilder, d: Dims) -> None:
    # for (i = LEN-2; i >= 0; i--) a[i+1] = a[i] + b[i]
    a, b = k.arrays("a", "b")
    n = d.n
    i = k.loop(n - 1)
    a[(n - 1) - i] = a[(n - 2) - i] + b[(n - 2) - i]


@kernel("s1112", "linear-dependence", notes="descending loop normalized to reversed subscripts")
def s1112(k: KernelBuilder, d: Dims) -> None:
    # for (i = LEN-1; i >= 0; i--) a[i] = b[i] + 1
    a, b = k.arrays("a", "b")
    n = d.n
    i = k.loop(n)
    a[(n - 1) - i] = b[(n - 1) - i] + 1.0


@kernel("s113", "linear-dependence")
def s113(k: KernelBuilder, d: Dims) -> None:
    # a[i] = a[LEN/2] + b[i] — the load crosses the store at i = LEN/2.
    a, b = k.arrays("a", "b")
    i = k.loop(d.n)
    a[i] = a[d.n // 2] + b[i]


@kernel("s1113", "linear-dependence")
def s1113(k: KernelBuilder, d: Dims) -> None:
    # a[i] = a[LEN/2] + b[i], starting mid-array in the original.
    a, b = k.arrays("a", "b")
    i = k.loop(d.n // 2)
    a[i] = a[d.n // 2] + b[i]


@kernel("s114", "linear-dependence", notes="triangular bound expressed as a guard")
def s114(k: KernelBuilder, d: Dims) -> None:
    # aa[i][j] = aa[j][i] + bb[i][j] for j < i — transposed access.
    aa, bb = k.array2("aa"), k.array2("bb")
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    with k.if_(j < i):
        aa[i, j] = aa[j, i] + bb[i, j]


@kernel("s115", "linear-dependence", notes="triangular bound expressed as a guard")
def s115(k: KernelBuilder, d: Dims) -> None:
    # Back substitution: a[i] -= aa[j][i] * a[j] for i > j.
    a = k.array("a")
    aa = k.array2("aa")
    j = k.loop(d.n2)
    i = k.loop(d.n2)
    with k.if_(i > j):
        a[i] = a[i] - aa[j, i] * a[j]


@kernel("s1115", "linear-dependence")
def s1115(k: KernelBuilder, d: Dims) -> None:
    aa, bb, cc = k.array2("aa"), k.array2("bb"), k.array2("cc")
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    aa[i, j] = aa[i, j] * cc[j, i] + bb[i, j]


@kernel("s116", "linear-dependence")
def s116(k: KernelBuilder, d: Dims) -> None:
    # Five-statement multiply chain — a genuine serial recurrence.
    a = k.array("a")
    i = k.loop(d.n // 5 - 1)
    a[5 * i] = a[5 * i + 1] * a[5 * i]
    a[5 * i + 1] = a[5 * i + 2] * a[5 * i + 1]
    a[5 * i + 2] = a[5 * i + 3] * a[5 * i + 2]
    a[5 * i + 3] = a[5 * i + 4] * a[5 * i + 3]
    a[5 * i + 4] = a[5 * i + 5] * a[5 * i + 4]


@kernel("s118", "linear-dependence", notes="triangular bound expressed as a guard")
def s118(k: KernelBuilder, d: Dims) -> None:
    # a[i] += bb[j][i] * a[i-j-1] for j <= i-1.
    a = k.array("a")
    bb = k.array2("bb")
    i = k.loop(d.n2)
    j = k.loop(d.n2)
    with k.if_(j <= i - 1):
        a[i] = a[i] + bb[j, i] * a[i - j - 1]


@kernel("s119", "linear-dependence")
def s119(k: KernelBuilder, d: Dims) -> None:
    # Diagonal dependence aa[i-1][j-1]: distance n2+1 in the linearized
    # space — far beyond any VF, so the inner loop vectorizes.
    aa, bb = k.array2("aa"), k.array2("bb")
    i = k.loop(d.n2 - 1)
    j = k.loop(d.n2 - 1)
    aa[i + 1, j + 1] = aa[i, j] + bb[i + 1, j + 1]


@kernel("s1119", "linear-dependence")
def s1119(k: KernelBuilder, d: Dims) -> None:
    # Row-to-row dependence — carried by the outer loop only.
    aa, bb = k.array2("aa"), k.array2("bb")
    i = k.loop(d.n2 - 1)
    j = k.loop(d.n2)
    aa[i + 1, j] = aa[i, j] + bb[i + 1, j]
