"""Machine instruction classes.

This taxonomy plays two roles:

1. it is the vocabulary code generation lowers kernels into, and
2. it is the *feature space* of the paper's linear cost models — one
   weight per instruction class (``cost = Σ nᵢ·wᵢ`` over these classes).

The split mirrors the categories LLVM's TargetTransformInfo costs at
the basic-block level: memory ops (with the expensive irregular forms
separated out), arithmetic by unit, data movement between lanes and
register files, and the horizontal operations vectorization introduces.
"""

from __future__ import annotations

import enum


class IClass(enum.Enum):
    # -- memory ------------------------------------------------------------
    LOAD = "load"            # packed/contiguous (or scalar) load
    STORE = "store"          # packed/contiguous (or scalar) store
    GATHER = "gather"        # hardware indexed vector load (AVX2)
    SCATTER = "scatter"      # hardware indexed vector store (none here)
    MASKLOAD = "maskload"    # hardware masked load (AVX2 vmaskmov)
    MASKSTORE = "maskstore"  # hardware masked store
    BROADCAST = "broadcast"  # splat a scalar across lanes

    # -- arithmetic ----------------------------------------------------------
    ADD = "add"              # add/sub/neg
    MUL = "mul"
    FMA = "fma"
    DIV = "div"
    SQRT = "sqrt"
    EXP = "exp"              # transcendental call (always scalarized)
    ABS = "abs"
    MINMAX = "minmax"

    # -- compare / select / bitwise -------------------------------------------
    CMP = "cmp"
    BLEND = "blend"          # select / bsl / vblendv
    LOGIC = "logic"          # and/or/xor
    SHIFT = "shift"
    CVT = "cvt"              # int<->float / width conversions

    # -- lane movement ---------------------------------------------------------
    SHUFFLE = "shuffle"      # permute / interleave / reverse
    INSERT = "insert"        # GPR/scalar -> vector lane
    EXTRACT = "extract"      # vector lane -> GPR/scalar
    REDUCE = "reduce"        # horizontal reduction of one vector


#: Classes that move data to/from memory (drive the bandwidth model).
MEMORY_CLASSES = frozenset(
    {
        IClass.LOAD,
        IClass.STORE,
        IClass.GATHER,
        IClass.SCATTER,
        IClass.MASKLOAD,
        IClass.MASKSTORE,
        IClass.BROADCAST,
    }
)

#: Classes introduced by vectorization itself (packing overhead); a key
#: motivation for modelling cost at the block level.
OVERHEAD_CLASSES = frozenset(
    {
        IClass.GATHER,
        IClass.SCATTER,
        IClass.BROADCAST,
        IClass.SHUFFLE,
        IClass.INSERT,
        IClass.EXTRACT,
        IClass.REDUCE,
        IClass.BLEND,
        IClass.MASKLOAD,
        IClass.MASKSTORE,
    }
)

#: Fixed feature ordering used by every cost model in this package.
FEATURE_ORDER: tuple[IClass, ...] = tuple(IClass)


def feature_index(iclass: IClass) -> int:
    return FEATURE_ORDER.index(iclass)
