"""Name-based lookup of target machine descriptions."""

from __future__ import annotations

from .armv8_neon import ARMV8_NEON
from .armv9_sve import ARMV9_SVE
from .base import Target
from .x86_avx2 import X86_AVX2

_TARGETS: dict[str, Target] = {
    "armv8-neon": ARMV8_NEON,
    "armv9-sve": ARMV9_SVE,
    "x86-avx2": X86_AVX2,
}

_ALIASES = {
    "arm": "armv8-neon",
    "armv8": "armv8-neon",
    "neon": "armv8-neon",
    "sve": "armv9-sve",
    "armv9": "armv9-sve",
    "x86": "x86-avx2",
    "avx2": "x86-avx2",
}


def get_target(name: str) -> Target:
    """Look up a target by name or alias (case-insensitive)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _TARGETS[key]
    except KeyError:
        known = sorted(set(_TARGETS) | set(_ALIASES))
        raise KeyError(f"unknown target {name!r}; known: {', '.join(known)}") from None


def available_targets() -> tuple[str, ...]:
    return tuple(sorted(_TARGETS))


def register_target(target: Target, *aliases: str) -> None:
    """Register a custom target (used by tests and tuning examples)."""
    _TARGETS[target.name] = target
    for alias in aliases:
        _ALIASES[alias.lower()] = target.name
