"""Generic IR-level pseudo-target for feature extraction.

The paper's cost models run where LLVM's does: on the *IR* of the
vectorized block, before target lowering.  At that level an indirect
vector load is one ``masked.gather`` call, a guarded store is one
``masked.store``, and a transcendental is one vector intrinsic —
regardless of whether the backend later scalarizes them lane by lane.

Lowering a plan against this pseudo-target therefore yields the
instruction-type counts the models should see, while the real machine
targets keep producing the streams the timing simulator prices.  The
pseudo-target has no timing tables on purpose: trying to *time* an
IR-level stream is a bug.
"""

from __future__ import annotations

from .base import CacheHierarchy, CacheLevel, Target

GENERIC_IR = Target(
    name="generic-ir",
    vector_bits=128,  # unused: plans carry their VF explicitly
    issue_width=1,
    ports={},
    timings={},
    int_timings={},
    cache=CacheHierarchy((CacheLevel("L1", 1, 1.0),), 1.0),
    has_gather=True,
    has_scatter=True,
    has_masked_mem=True,
    scalarize_calls=False,
    max_interleave_stride=4,
)
