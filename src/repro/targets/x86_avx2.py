"""x86 AVX2 machine description (Haswell-Xeon-E5-class).

256-bit vectors, two FP pipes plus a single dedicated shuffle port,
two load ports, 4-wide issue.  Distinguishing modelling choices:

* hardware gather exists but is slow (Haswell's vgatherdps), so
  gather-heavy kernels vectorize "successfully" with mediocre payoff —
  a classic source of static-cost-model mispredictions;
* masked loads/stores exist (vmaskmov), making if-converted stores far
  cheaper than on NEON;
* all cross-lane traffic funnels through the one shuffle port, so
  interleave/packing-heavy blocks bottleneck there.
"""

from __future__ import annotations

from .base import CacheHierarchy, CacheLevel, InstrTiming, Target
from .classes import IClass

_T = InstrTiming


def _timings() -> dict:
    return {
        # memory
        (IClass.LOAD, "s"): _T(4, 1, "ld"),
        (IClass.LOAD, "v"): _T(5, 1, "ld"),
        (IClass.STORE, "s"): _T(1, 1, "st"),
        (IClass.STORE, "v"): _T(2, 1, "st"),
        (IClass.GATHER, "v"): _T(18, 6, "ld"),
        (IClass.MASKLOAD, "v"): _T(6, 1, "ld"),
        (IClass.MASKSTORE, "v"): _T(5, 1, "st"),
        (IClass.BROADCAST, "v"): _T(4, 1, "ld"),
        # arithmetic
        (IClass.ADD, "s"): _T(3, 1, "fp"),
        (IClass.ADD, "v"): _T(3, 1, "fp"),
        (IClass.MUL, "s"): _T(5, 1, "fp"),
        (IClass.MUL, "v"): _T(5, 1, "fp"),
        (IClass.FMA, "s"): _T(5, 1, "fp"),
        (IClass.FMA, "v"): _T(5, 1, "fp"),
        (IClass.DIV, "s"): _T(11, 4, "fp"),
        (IClass.DIV, "v"): _T(19, 12, "fp"),
        (IClass.SQRT, "s"): _T(12, 5, "fp"),
        (IClass.SQRT, "v"): _T(21, 12, "fp"),
        (IClass.EXP, "s"): _T(40, 20, "fp"),
        (IClass.ABS, "s"): _T(1, 1, "fp"),
        (IClass.ABS, "v"): _T(1, 1, "fp"),
        (IClass.MINMAX, "s"): _T(3, 1, "fp"),
        (IClass.MINMAX, "v"): _T(3, 1, "fp"),
        # compare / select / bitwise
        (IClass.CMP, "s"): _T(3, 1, "fp"),
        (IClass.CMP, "v"): _T(3, 1, "fp"),
        (IClass.BLEND, "s"): _T(2, 1, "int"),
        (IClass.BLEND, "v"): _T(2, 1, "fp"),
        (IClass.LOGIC, "s"): _T(1, 1, "int"),
        (IClass.LOGIC, "v"): _T(1, 1, "fp"),
        (IClass.SHIFT, "s"): _T(1, 1, "int"),
        (IClass.SHIFT, "v"): _T(1, 1, "fp"),
        (IClass.CVT, "s"): _T(4, 1, "fp"),
        (IClass.CVT, "v"): _T(4, 1, "fp"),
        # lane movement (shuffle port)
        (IClass.SHUFFLE, "v"): _T(1, 1, "shuf"),
        (IClass.INSERT, "v"): _T(3, 1, "shuf"),
        (IClass.EXTRACT, "v"): _T(3, 1, "shuf"),
        (IClass.REDUCE, "v"): _T(10, 3, "shuf"),
    }


def _int_timings() -> dict:
    return {
        (IClass.ADD, "s"): _T(1, 1, "int"),
        (IClass.ADD, "v"): _T(1, 1, "fp"),
        (IClass.MUL, "s"): _T(3, 1, "int"),
        (IClass.MUL, "v"): _T(5, 1, "fp"),
        (IClass.CMP, "s"): _T(1, 1, "int"),
        (IClass.CMP, "v"): _T(1, 1, "fp"),
        (IClass.MINMAX, "s"): _T(1, 1, "int"),
        (IClass.MINMAX, "v"): _T(1, 1, "fp"),
        (IClass.ABS, "s"): _T(1, 1, "int"),
        (IClass.ABS, "v"): _T(1, 1, "fp"),
        (IClass.BLEND, "s"): _T(1, 1, "int"),
        (IClass.BLEND, "v"): _T(1, 1, "fp"),
    }


X86_AVX2 = Target(
    name="x86-avx2",
    vector_bits=256,
    issue_width=4,
    ports={"fp": 2, "shuf": 1, "ld": 2, "st": 1, "int": 3},
    timings=_timings(),
    int_timings=_int_timings(),
    cache=CacheHierarchy(
        levels=(
            CacheLevel("L1", 32 * 1024, 48.0),
            CacheLevel("L2", 256 * 1024, 32.0),
            CacheLevel("L3", 20 * 1024 * 1024, 16.0),
        ),
        dram_bytes_per_cycle=8.0,
    ),
    has_gather=True,
    has_scatter=False,
    has_masked_mem=True,
    max_interleave_stride=4,
)
