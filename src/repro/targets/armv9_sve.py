"""Hypothetical ARMv9 SVE machine description (256-bit vectors).

An *extension* target, not part of the paper's evaluation: the paper
was presented at the ARM Research Summit while SVE was arriving, and
the natural follow-on question is how the cost-model landscape shifts
on a core with everything NEON lacks — hardware gather *and* scatter,
native predication (masked loads/stores), wider vectors.

Modelled as an A57-style pipeline scaled up: two wider vector pipes,
gathers priced like one element per cycle plus setup (in line with
early SVE implementations), predicated memory ops nearly free.  Used
by `examples/sve_outlook.py` and the SVE bench to re-run the study on
a third target.
"""

from __future__ import annotations

from .base import CacheHierarchy, CacheLevel, InstrTiming, Target
from .classes import IClass

_T = InstrTiming


def _timings() -> dict:
    return {
        # memory
        (IClass.LOAD, "s"): _T(4, 1, "ld"),
        (IClass.LOAD, "v"): _T(6, 1, "ld"),
        (IClass.STORE, "s"): _T(1, 1, "st"),
        (IClass.STORE, "v"): _T(2, 1, "st"),
        (IClass.GATHER, "v"): _T(14, 8, "ld"),
        (IClass.SCATTER, "v"): _T(12, 8, "st"),
        (IClass.MASKLOAD, "v"): _T(6, 1, "ld"),
        (IClass.MASKSTORE, "v"): _T(3, 1, "st"),
        (IClass.BROADCAST, "v"): _T(4, 1, "ld"),
        # arithmetic
        (IClass.ADD, "s"): _T(3, 1, "fp"),
        (IClass.ADD, "v"): _T(3, 1, "fp"),
        (IClass.MUL, "s"): _T(4, 1, "fp"),
        (IClass.MUL, "v"): _T(4, 1, "fp"),
        (IClass.FMA, "s"): _T(6, 1, "fp"),
        (IClass.FMA, "v"): _T(6, 1, "fp"),
        (IClass.DIV, "s"): _T(12, 6, "fp"),
        (IClass.DIV, "v"): _T(24, 12, "fp"),
        (IClass.SQRT, "s"): _T(11, 5, "fp"),
        (IClass.SQRT, "v"): _T(22, 11, "fp"),
        (IClass.EXP, "s"): _T(36, 18, "fp"),
        (IClass.ABS, "s"): _T(2, 1, "fp"),
        (IClass.ABS, "v"): _T(2, 1, "fp"),
        (IClass.MINMAX, "s"): _T(2, 1, "fp"),
        (IClass.MINMAX, "v"): _T(2, 1, "fp"),
        # compare / select / bitwise — predicates are first-class on SVE
        (IClass.CMP, "s"): _T(2, 1, "fp"),
        (IClass.CMP, "v"): _T(2, 1, "fp"),
        (IClass.BLEND, "s"): _T(2, 1, "fp"),
        (IClass.BLEND, "v"): _T(2, 1, "fp"),
        (IClass.LOGIC, "s"): _T(1, 1, "int"),
        (IClass.LOGIC, "v"): _T(2, 1, "fp"),
        (IClass.SHIFT, "s"): _T(1, 1, "int"),
        (IClass.SHIFT, "v"): _T(2, 1, "fp"),
        (IClass.CVT, "s"): _T(3, 1, "fp"),
        (IClass.CVT, "v"): _T(3, 1, "fp"),
        # lane movement
        (IClass.SHUFFLE, "v"): _T(3, 1, "fp"),
        (IClass.INSERT, "v"): _T(6, 1.5, "fp"),
        (IClass.EXTRACT, "v"): _T(5, 1, "fp"),
        (IClass.REDUCE, "v"): _T(9, 2, "fp"),
    }


def _int_timings() -> dict:
    return {
        (IClass.ADD, "s"): _T(1, 1, "int"),
        (IClass.ADD, "v"): _T(2, 1, "fp"),
        (IClass.MUL, "s"): _T(3, 1, "int"),
        (IClass.MUL, "v"): _T(4, 1, "fp"),
        (IClass.CMP, "s"): _T(1, 1, "int"),
        (IClass.CMP, "v"): _T(2, 1, "fp"),
        (IClass.MINMAX, "s"): _T(1, 1, "int"),
        (IClass.ABS, "s"): _T(1, 1, "int"),
        (IClass.BLEND, "s"): _T(1, 1, "int"),
    }


ARMV9_SVE = Target(
    name="armv9-sve",
    vector_bits=256,
    issue_width=4,
    ports={"fp": 2, "ld": 2, "st": 1, "int": 2},
    timings=_timings(),
    int_timings=_int_timings(),
    cache=CacheHierarchy(
        levels=(
            CacheLevel("L1", 64 * 1024, 48.0),
            CacheLevel("L2", 1 * 1024 * 1024, 24.0),
        ),
        dram_bytes_per_cycle=8.0,
    ),
    has_gather=True,
    has_scatter=True,
    has_masked_mem=True,
    max_interleave_stride=4,
)
