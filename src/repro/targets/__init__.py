"""Target machine descriptions and the instruction-class taxonomy."""

from .classes import (
    FEATURE_ORDER,
    IClass,
    MEMORY_CLASSES,
    OVERHEAD_CLASSES,
    feature_index,
)
from .base import (
    CacheHierarchy,
    CacheLevel,
    InstrTiming,
    Target,
    TargetError,
)
from .armv8_neon import ARMV8_NEON
from .armv9_sve import ARMV9_SVE
from .x86_avx2 import X86_AVX2
from .registry import available_targets, get_target, register_target

__all__ = [
    "FEATURE_ORDER",
    "IClass",
    "MEMORY_CLASSES",
    "OVERHEAD_CLASSES",
    "feature_index",
    "CacheHierarchy",
    "CacheLevel",
    "InstrTiming",
    "Target",
    "TargetError",
    "ARMV8_NEON",
    "ARMV9_SVE",
    "X86_AVX2",
    "available_targets",
    "get_target",
    "register_target",
]

from .generic_ir import GENERIC_IR  # noqa: E402

__all__.append("GENERIC_IR")
