"""ARMv8 NEON machine description (Cortex-A57-class).

128-bit ASIMD, two FP/ASIMD pipes, one load and one store pipe,
3-wide issue.  The distinguishing modelling choices, all drawn from the
A57 software optimization guide's structure:

* no hardware gather/scatter or masked memory ops — indirect and
  wide-strided vector accesses must be scalarized through lane
  inserts/extracts, and masked stores become load+blend+store;
* GPR→SIMD transfers (lane INSERT) are expensive, which is what makes
  scalarized gathers so costly on this core;
* small constant strides are lowered as interleaved loads plus
  shuffles (the ld2/ld3/ld4 idiom LLVM uses on NEON).
"""

from __future__ import annotations

from .base import CacheHierarchy, CacheLevel, InstrTiming, Target
from .classes import IClass

_T = InstrTiming


def _timings() -> dict:
    return {
        # memory
        (IClass.LOAD, "s"): _T(4, 1, "ld"),
        (IClass.LOAD, "v"): _T(5, 1, "ld"),
        (IClass.STORE, "s"): _T(1, 1, "st"),
        (IClass.STORE, "v"): _T(2, 1, "st"),
        (IClass.BROADCAST, "v"): _T(5, 1, "ld"),
        # arithmetic (FP pipes)
        (IClass.ADD, "s"): _T(4, 1, "fp"),
        (IClass.ADD, "v"): _T(4, 1, "fp"),
        (IClass.MUL, "s"): _T(4, 1, "fp"),
        (IClass.MUL, "v"): _T(4, 1, "fp"),
        (IClass.FMA, "s"): _T(8, 1, "fp"),
        (IClass.FMA, "v"): _T(8, 1, "fp"),
        (IClass.DIV, "s"): _T(13, 7, "fp"),
        (IClass.DIV, "v"): _T(27, 14, "fp"),
        (IClass.SQRT, "s"): _T(12, 6, "fp"),
        (IClass.SQRT, "v"): _T(24, 12, "fp"),
        (IClass.EXP, "s"): _T(40, 20, "fp"),
        (IClass.ABS, "s"): _T(3, 1, "fp"),
        (IClass.ABS, "v"): _T(3, 1, "fp"),
        (IClass.MINMAX, "s"): _T(3, 1, "fp"),
        (IClass.MINMAX, "v"): _T(3, 1, "fp"),
        # compare / select / bitwise
        (IClass.CMP, "s"): _T(3, 1, "fp"),
        (IClass.CMP, "v"): _T(3, 1, "fp"),
        (IClass.BLEND, "s"): _T(3, 1, "fp"),
        (IClass.BLEND, "v"): _T(3, 1, "fp"),
        (IClass.LOGIC, "s"): _T(1, 1, "int"),
        (IClass.LOGIC, "v"): _T(3, 1, "fp"),
        (IClass.SHIFT, "s"): _T(1, 1, "int"),
        (IClass.SHIFT, "v"): _T(3, 1, "fp"),
        (IClass.CVT, "s"): _T(4, 1, "fp"),
        (IClass.CVT, "v"): _T(4, 1, "fp"),
        # lane movement
        (IClass.SHUFFLE, "v"): _T(3, 1, "fp"),
        (IClass.INSERT, "v"): _T(8, 2, "fp"),
        (IClass.EXTRACT, "v"): _T(6, 1.5, "fp"),
        (IClass.REDUCE, "v"): _T(8, 2, "fp"),
    }


def _int_timings() -> dict:
    return {
        (IClass.ADD, "s"): _T(1, 1, "int"),
        (IClass.ADD, "v"): _T(3, 1, "fp"),
        (IClass.MUL, "s"): _T(3, 1, "int"),
        (IClass.MUL, "v"): _T(4, 1, "fp"),
        (IClass.CMP, "s"): _T(1, 1, "int"),
        (IClass.CMP, "v"): _T(3, 1, "fp"),
        (IClass.MINMAX, "s"): _T(1, 1, "int"),
        (IClass.MINMAX, "v"): _T(3, 1, "fp"),
        (IClass.ABS, "s"): _T(1, 1, "int"),
        (IClass.ABS, "v"): _T(3, 1, "fp"),
        (IClass.BLEND, "s"): _T(1, 1, "int"),
        (IClass.BLEND, "v"): _T(3, 1, "fp"),
        (IClass.LOGIC, "v"): _T(3, 1, "fp"),
        (IClass.SHIFT, "v"): _T(3, 1, "fp"),
    }


ARMV8_NEON = Target(
    name="armv8-neon",
    vector_bits=128,
    issue_width=3,
    ports={"fp": 2, "ld": 1, "st": 1, "int": 2},
    timings=_timings(),
    int_timings=_int_timings(),
    cache=CacheHierarchy(
        levels=(
            CacheLevel("L1", 32 * 1024, 32.0),
            CacheLevel("L2", 1 * 1024 * 1024, 16.0),
        ),
        dram_bytes_per_cycle=6.0,
    ),
    has_gather=False,
    has_scatter=False,
    has_masked_mem=False,
    max_interleave_stride=4,
)
