"""Target machine descriptions.

A :class:`Target` is everything the code generator and the timing
simulator need to know about a core: vector width, which irregular
memory operations exist in hardware, per-instruction-class timings on
an execution-port model, and a cache/bandwidth hierarchy.

The timing numbers are *plausible* for the cores the paper measured
(Cortex-A57-class for ARMv8 NEON, Haswell-Xeon-class for AVX2) rather
than cycle-exact: the study only needs a ground truth with realistic
structure — see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.types import DType
from .classes import IClass


@dataclass(frozen=True)
class InstrTiming:
    """Timing of one instruction class on one target.

    ``latency`` is producer→consumer cycles; ``occupancy`` is how many
    cycles the instruction blocks its port (1 = fully pipelined); and
    ``port`` names the execution-port group it issues to.
    """

    latency: float
    occupancy: float
    port: str


@dataclass(frozen=True)
class CacheLevel:
    name: str
    size_bytes: int
    bytes_per_cycle: float  # sustainable bandwidth at this level


@dataclass(frozen=True)
class CacheHierarchy:
    levels: tuple[CacheLevel, ...]
    dram_bytes_per_cycle: float

    def bandwidth_for(self, working_set_bytes: int) -> float:
        """Sustainable bytes/cycle for a streaming working set."""
        for level in self.levels:
            if working_set_bytes <= level.size_bytes:
                return level.bytes_per_cycle
        return self.dram_bytes_per_cycle

    def level_for(self, working_set_bytes: int) -> str:
        for level in self.levels:
            if working_set_bytes <= level.size_bytes:
                return level.name
        return "DRAM"


class TargetError(Exception):
    """Unsupported operation for a target."""


@dataclass(frozen=True)
class Target:
    """A machine description.

    ``timings`` maps ``(iclass, form)`` → :class:`InstrTiming`, where
    ``form`` is ``"s"`` (scalar) or ``"v"`` (vector).  Integer scalar
    arithmetic is distinguished via ``int_timings`` overrides because it
    runs on different ports with different latencies.
    """

    name: str
    vector_bits: int
    issue_width: int
    ports: dict[str, int]  # port-group name -> number of units
    timings: dict[tuple[IClass, str], InstrTiming]
    int_timings: dict[tuple[IClass, str], InstrTiming] = field(default_factory=dict)
    cache: CacheHierarchy = field(
        default_factory=lambda: CacheHierarchy(
            (CacheLevel("L1", 32 * 1024, 16.0), CacheLevel("L2", 1024 * 1024, 8.0)),
            4.0,
        )
    )
    has_gather: bool = False
    has_scatter: bool = False
    has_masked_mem: bool = False
    #: True when vector math calls (exp, …) must be expanded lane by
    #: lane; the IR-level pseudo-target keeps them as single intrinsics.
    scalarize_calls: bool = True
    #: f64 cost multipliers for iterative units (div/sqrt take ~2x).
    f64_slow_classes: frozenset = frozenset({IClass.DIV, IClass.SQRT, IClass.EXP})
    f64_slow_factor: float = 1.8
    #: largest constant stride lowered as interleaved loads+shuffles
    #: (NEON ld2/ld3/ld4-style); beyond this the access is scalarized
    #: or gathered.
    max_interleave_stride: int = 4

    def lanes(self, dtype: DType) -> int:
        """Full-width lane count for ``dtype``."""
        return self.vector_bits // (dtype.size * 8)

    def timing(self, iclass: IClass, dtype: DType, lanes: int) -> InstrTiming:
        """Timing for an instruction of ``iclass`` on ``lanes`` lanes."""
        form = "s" if lanes == 1 else "v"
        t: Optional[InstrTiming] = None
        if dtype.is_int or dtype.is_bool:
            t = self.int_timings.get((iclass, form))
        if t is None:
            t = self.timings.get((iclass, form))
        if t is None:
            raise TargetError(
                f"{self.name} has no timing for {iclass.value}/{form}"
            )
        if dtype is DType.F64 and iclass in self.f64_slow_classes:
            t = InstrTiming(
                t.latency * self.f64_slow_factor,
                t.occupancy * self.f64_slow_factor,
                t.port,
            )
        return t

    def port_count(self, port: str) -> int:
        try:
            return self.ports[port]
        except KeyError:
            raise TargetError(f"{self.name} has no port group {port!r}") from None
