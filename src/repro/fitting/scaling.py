"""Feature scaling utilities.

Raw counts and rated fractions live on different scales; SVR in
particular benefits from standardized inputs.  The scaler follows the
fit/transform convention and composes with any regressor via
:class:`ScaledRegressor`.
"""

from __future__ import annotations

import numpy as np

from .base import Regressor, check_Xy


class StandardScaler:
    """Column-wise (x − μ)/σ with σ floored to keep constants finite."""

    def __init__(self, with_mean: bool = True):
        self.with_mean = with_mean
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        std = X.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("transform() before fit()")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class ScaledRegressor:
    """Standardize features, then delegate to an inner regressor.

    Note scaling breaks the sign interpretation of coefficients, so the
    non-negative fits (NNLS, non-negative SVR) are used *unscaled* in
    the experiments; this wrapper exists for the unconstrained fits.
    """

    def __init__(self, inner: Regressor, with_mean: bool = True):
        self.inner = inner
        self.name = f"scaled-{inner.name}"
        self._scaler = StandardScaler(with_mean=with_mean)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ScaledRegressor":
        X, y = check_Xy(X, y)
        self.inner.fit(self._scaler.fit_transform(X), y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.inner.predict(self._scaler.transform(X))

    @property
    def coef_(self) -> np.ndarray:
        return self.inner.coef_
