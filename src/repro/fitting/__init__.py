"""Fitting backends: L2 least squares, NNLS, linear ε-SVR, scaling."""

from .base import FitError, Regressor, check_Xy, residual_norm
from .l2 import LeastSquares
from .nnls import KKT_TOL, NonNegativeLeastSquares, nnls_warm_start
from .svr import (
    CERT_REL_GAP,
    LinearSVR,
    SVRWarmStats,
    svr_fold_objective,
    svr_warm_loocv,
)
from .scaling import ScaledRegressor, StandardScaler


def make_regressor(name: str, **kwargs) -> Regressor:
    """Regressor factory by the paper's method names: l2 | nnls | svr."""
    key = name.lower()
    if key == "l2":
        return LeastSquares(**kwargs)
    if key == "nnls":
        return NonNegativeLeastSquares(**kwargs)
    if key == "svr":
        return LinearSVR(**kwargs)
    raise ValueError(f"unknown fitting method {name!r} (use l2, nnls, or svr)")


__all__ = [
    "FitError",
    "Regressor",
    "check_Xy",
    "residual_norm",
    "LeastSquares",
    "NonNegativeLeastSquares",
    "KKT_TOL",
    "nnls_warm_start",
    "LinearSVR",
    "CERT_REL_GAP",
    "SVRWarmStats",
    "svr_fold_objective",
    "svr_warm_loocv",
    "ScaledRegressor",
    "StandardScaler",
    "make_regressor",
]
