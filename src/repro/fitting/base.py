"""Common regressor interface for the fitting backends."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


class FitError(Exception):
    """Fitting failed (degenerate inputs, no convergence)."""


@runtime_checkable
class Regressor(Protocol):
    """Linear regressor: fit weights w so that ``X @ w ≈ y``."""

    name: str

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...

    @property
    def coef_(self) -> np.ndarray: ...


def check_Xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2:
        raise FitError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise FitError(f"y shape {y.shape} does not match X shape {X.shape}")
    if X.shape[0] == 0:
        raise FitError("empty training set")
    if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
        raise FitError("non-finite values in training data")
    return X, y


def residual_norm(reg: Regressor, X: np.ndarray, y: np.ndarray) -> float:
    r = reg.predict(X) - y
    return float(np.sqrt(np.mean(r * r)))
