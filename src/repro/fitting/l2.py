"""L2 fitting: ordinary least squares (minimizes the Euclidean norm).

The paper's "L2" fit — unconstrained, so instruction-type weights may
come out negative when types are correlated in the training set.
"""

from __future__ import annotations

import numpy as np

from .base import check_Xy


class LeastSquares:
    """min_w ||X w − y||₂ via numpy's lstsq (rank-robust)."""

    name = "L2"

    def __init__(self, ridge: float = 0.0):
        #: small Tikhonov term stabilizes near-collinear feature sets
        self.ridge = ridge
        self._coef: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LeastSquares":
        X, y = check_Xy(X, y)
        if self.ridge > 0:
            n = X.shape[1]
            Xa = np.vstack([X, np.sqrt(self.ridge) * np.eye(n)])
            ya = np.concatenate([y, np.zeros(n)])
        else:
            Xa, ya = X, y
        self._coef, *_ = np.linalg.lstsq(Xa, ya, rcond=None)
        if not np.all(np.isfinite(self._coef)):
            # Columns with denormal norms underflow inside the SVD and
            # poison every coefficient with NaN.  Drop them (their
            # contribution to X @ w is below representable precision
            # anyway), refit the rest, and report 0 for the dropped.
            norms = np.linalg.norm(Xa, axis=0)
            keep = norms > np.sqrt(np.finfo(np.float64).tiny)
            coef = np.zeros(Xa.shape[1])
            if keep.any():
                coef[keep], *_ = np.linalg.lstsq(Xa[:, keep], ya, rcond=None)
            self._coef = coef
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("predict() before fit()")
        return np.asarray(X, dtype=np.float64) @ self._coef

    @property
    def coef_(self) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("coef_ before fit()")
        return self._coef
