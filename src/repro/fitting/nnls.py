"""NNLS fitting: non-negative least squares.

The paper's preferred fit — constraining all coefficients to be ≥ 0
keeps the weights physically interpretable (an instruction type cannot
have negative cost / negative speedup contribution) and, per slides
8/11, removes the false negatives that unconstrained L2 produces.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .base import FitError, check_Xy


class NonNegativeLeastSquares:
    """min_w ||X w − y||₂  s.t.  w ≥ 0 (Lawson–Hanson via SciPy)."""

    name = "NNLS"

    def __init__(self):
        self._coef: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NonNegativeLeastSquares":
        X, y = check_Xy(X, y)
        try:
            self._coef, _ = scipy.optimize.nnls(X, y)
        except Exception as exc:  # pragma: no cover - scipy internal failure
            raise FitError(f"NNLS failed: {exc}") from exc
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("predict() before fit()")
        return np.asarray(X, dtype=np.float64) @ self._coef

    @property
    def coef_(self) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("coef_ before fit()")
        return self._coef
