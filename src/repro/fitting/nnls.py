"""NNLS fitting: non-negative least squares.

The paper's preferred fit — constraining all coefficients to be ≥ 0
keeps the weights physically interpretable (an instruction type cannot
have negative cost / negative speedup contribution) and, per slides
8/11, removes the false negatives that unconstrained L2 produces.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .base import FitError, check_Xy


#: KKT slack for certifying a warm-started solution as the NNLS
#: optimum; scaled by the data magnitude before use.
KKT_TOL = 1e-8


def nnls_warm_start(
    X: np.ndarray,
    y: np.ndarray,
    support: np.ndarray,
    *,
    tol: float = KKT_TOL,
    validate: bool = True,
) -> np.ndarray | None:
    """Solve min ||Xw − y||₂ s.t. w ≥ 0, guessing the active set.

    ``support`` holds the indices believed nonzero (typically the
    positive coefficients of a previous full fit).  The unconstrained
    least-squares problem restricted to those columns is solved once,
    then certified against the NNLS KKT conditions:

    * primal feasibility: ``w[support] ≥ −tol`` (clipped to 0 after),
    * dual feasibility: ``X_jᵀ(Xw − y) ≥ −tol`` for every j ∉ support.

    Returns the full-length coefficient vector when the certificate
    holds, else ``None`` so the caller can fall back to a cold
    Lawson–Hanson solve.  A correct guess collapses the active-set
    search to one ``lstsq`` — deleting a single row rarely changes the
    active set, which is what makes the LOOCV refit loop cheap.

    ``validate=False`` skips the ``check_Xy`` coercion for callers that
    already hold validated float64 arrays (the LOOCV fold loop passes
    row-masked views of a checked matrix; re-checking every fold costs
    more than the restricted solve).
    """
    if validate:
        X, y = check_Xy(X, y)
    support = np.unique(np.asarray(support, dtype=np.intp))
    if support.size and (support[0] < 0 or support[-1] >= X.shape[1]):
        raise FitError(f"support out of range for {X.shape[1]} columns")
    scale = max(1.0, float(np.abs(X).max()) * max(1.0, float(np.abs(y).max())))
    slack = tol * scale
    w = np.zeros(X.shape[1])
    if support.size:
        Xs = X[:, support]
        try:
            # Normal equations + Cholesky: the restricted problem has
            # only |support| columns, so this is ~10× cheaper than the
            # SVD-based lstsq and the KKT certificate below still
            # validates the result.  Singular Gram (rank-deficient
            # support) falls back to the minimum-norm lstsq solve.
            try:
                ws = np.linalg.solve(Xs.T @ Xs, Xs.T @ y)
            except np.linalg.LinAlgError:
                ws, *_ = np.linalg.lstsq(Xs, y, rcond=None)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(ws)) or np.any(ws < -slack):
            return None
        w[support] = np.maximum(ws, 0.0)
    grad = X.T @ (X @ w - y)
    off = np.ones(X.shape[1], dtype=bool)
    off[support] = False
    if np.any(grad[off] < -slack):
        return None
    return w


class NonNegativeLeastSquares:
    """min_w ||X w − y||₂  s.t.  w ≥ 0 (Lawson–Hanson via SciPy)."""

    name = "NNLS"

    def __init__(self):
        self._coef: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NonNegativeLeastSquares":
        X, y = check_Xy(X, y)
        try:
            self._coef, _ = scipy.optimize.nnls(X, y)
        except Exception as exc:  # pragma: no cover - scipy internal failure
            raise FitError(f"NNLS failed: {exc}") from exc
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("predict() before fit()")
        return np.asarray(X, dtype=np.float64) @ self._coef

    @property
    def coef_(self) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("coef_ before fit()")
        return self._coef

    @property
    def support_(self) -> np.ndarray:
        """Indices of the strictly positive fitted coefficients."""
        return np.nonzero(self.coef_ > 0.0)[0]
