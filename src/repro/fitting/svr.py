"""SVR fitting: linear ε-insensitive support vector regression.

The paper's third fitting method.  We solve the primal problem

    min_w  ½‖w‖² + C Σᵢ L_ε(w·xᵢ − yᵢ)

with the ε-insensitive loss L_ε(r) = max(0, |r| − ε), smoothed with a
small pseudo-Huber term so L-BFGS-B has continuous gradients (the
smoothing δ is far below the data scale and does not change which
points are support vectors in practice).  Bounds on w give the
non-negative variant for free, matching how NNLS is used.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .base import FitError, check_Xy


class LinearSVR:
    """Linear ε-SVR solved in the primal with smoothed loss."""

    name = "SVR"

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.1,
        nonneg: bool = False,
        smoothing: float = 1e-3,
        max_iter: int = 500,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.C = C
        self.epsilon = epsilon
        self.nonneg = nonneg
        self.smoothing = smoothing
        self.max_iter = max_iter
        self._coef: np.ndarray | None = None

    def _objective(self, w: np.ndarray, X: np.ndarray, y: np.ndarray):
        r = X @ w - y
        excess = np.abs(r) - self.epsilon
        active = excess > 0
        d = self.smoothing
        # pseudo-Huber on the active excess: sqrt(e² + δ²) − δ
        e = np.where(active, excess, 0.0)
        loss = np.sqrt(e * e + d * d) - d
        obj = 0.5 * float(w @ w) + self.C * float(loss.sum())
        # gradient
        dloss_de = e / np.sqrt(e * e + d * d)
        dr = np.where(active, dloss_de * np.sign(r), 0.0)
        grad = w + self.C * (X.T @ dr)
        return obj, grad

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVR":
        X, y = check_Xy(X, y)
        n_features = X.shape[1]
        # Scale-only column normalization (no centering): X' = X/s with
        # w = w'/s afterwards — an equivalent model family (it keeps
        # the no-intercept structure and the sign of each weight) that
        # conditions the optimization when counts span decades.
        col_scale = np.abs(X).max(axis=0)
        col_scale = np.where(col_scale > 1e-12, col_scale, 1.0)
        Xs = X / col_scale
        # The loss scale should also be invariant to the target range.
        y_scale = max(float(np.abs(y).max()), 1e-12)
        ys = y / y_scale
        eps = self.epsilon / y_scale if y_scale > 1.0 else self.epsilon

        self_eps = self.epsilon
        try:
            self.epsilon = eps
            # Warm-start from ridge-regularized least squares.
            w0, *_ = np.linalg.lstsq(
                np.vstack([Xs, 1e-3 * np.eye(n_features)]),
                np.concatenate([ys, np.zeros(n_features)]),
                rcond=None,
            )
            if self.nonneg:
                w0 = np.clip(w0, 0.0, None)
            bounds = [(0.0, None)] * n_features if self.nonneg else None
            result = scipy.optimize.minimize(
                self._objective,
                w0,
                args=(Xs, ys),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": self.max_iter, "ftol": 1e-14, "gtol": 1e-10},
            )
        finally:
            self.epsilon = self_eps
        if not np.all(np.isfinite(result.x)):
            raise FitError("SVR optimization produced non-finite weights")
        self._coef = result.x * y_scale / col_scale
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("predict() before fit()")
        return np.asarray(X, dtype=np.float64) @ self._coef

    @property
    def coef_(self) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("coef_ before fit()")
        return self._coef
