"""SVR fitting: linear ε-insensitive support vector regression.

The paper's third fitting method.  We solve the primal problem

    min_w  ½‖w‖² + C Σᵢ L_ε(w·xᵢ − yᵢ)

with the ε-insensitive loss L_ε(r) = max(0, |r| − ε), smoothed with a
small pseudo-Huber term so L-BFGS-B has continuous gradients (the
smoothing δ is far below the data scale and does not change which
points are support vectors in practice).  Bounds on w give the
non-negative variant for free, matching how NNLS is used.

The module also provides the warm-started LOOCV solver
(:func:`svr_warm_loocv`): every fold's L-BFGS-B run is seeded from a
polished full fit and certified via strong convexity, mirroring the
NNLS warm-start contract (:func:`repro.fitting.nnls.nnls_warm_start`) —
a fold either proves its solution optimal or reports failure so the
caller can refit it cold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from .base import FitError, check_Xy

#: Iteration cap for one warm-started fold solve.  A seed that kept
#: the fold's support typically converges in a handful of steps; folds
#: that need more fail the certificate and are refit cold.
WARM_MAXITER = 200

#: L-BFGS-B history size for the polished seed fit and the fold
#: solves.  The fold problems are small (≤ ~50 columns), so a deep
#: history is nearly a full quasi-Newton method and converges in far
#: fewer iterations than the default memory of 10.
WARM_MAXCOR = 30

#: Relative optimality gap a fold must certify:
#: ‖∇f‖²/2 ≤ CERT_REL_GAP · (1 + |f|).
CERT_REL_GAP = 1e-6


@dataclass
class SVRWarmStats:
    """Certificate accounting for one warm-started LOOCV run."""

    folds: int = 0
    accepted: int = 0

    @property
    def rejected(self) -> int:
        return self.folds - self.accepted

    @property
    def acceptance(self) -> float:
        return self.accepted / self.folds if self.folds else 0.0

    def __str__(self) -> str:
        return (
            f"{self.accepted}/{self.folds} folds warm-certified "
            f"({100.0 * self.acceptance:.0f}%)"
        )


class LinearSVR:
    """Linear ε-SVR solved in the primal with smoothed loss."""

    name = "SVR"

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.1,
        nonneg: bool = False,
        smoothing: float = 1e-3,
        max_iter: int = 500,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.C = C
        self.epsilon = epsilon
        self.nonneg = nonneg
        self.smoothing = smoothing
        self.max_iter = max_iter
        self._coef: np.ndarray | None = None

    def _objective(self, w: np.ndarray, X: np.ndarray, y: np.ndarray, epsilon: float):
        """Smoothed primal objective and gradient at ``w``.

        ``epsilon`` is passed explicitly (it is the *scaled* tube width
        of the caller's normalized problem) so concurrent fits and the
        warm LOOCV solver can share one instance without mutating
        ``self.epsilon`` around the optimizer call.
        """
        r = X @ w - y
        excess = np.abs(r) - epsilon
        active = excess > 0
        d = self.smoothing
        # pseudo-Huber on the active excess: sqrt(e² + δ²) − δ
        e = np.where(active, excess, 0.0)
        loss = np.sqrt(e * e + d * d) - d
        obj = 0.5 * float(w @ w) + self.C * float(loss.sum())
        # gradient
        dloss_de = e / np.sqrt(e * e + d * d)
        dr = np.where(active, dloss_de * np.sign(r), 0.0)
        grad = w + self.C * (X.T @ dr)
        return obj, grad

    def _prepare(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
        """Canonical scaling of a (sub)problem: (Xs, ys, col_scale,
        y_scale, scaled epsilon).

        Scale-only column normalization (no centering): X' = X/s with
        w = w'/s afterwards — an equivalent model family (it keeps the
        no-intercept structure and the sign of each weight) that
        conditions the optimization when counts span decades.  The
        loss scale is likewise made invariant to the target range.
        """
        col_scale = np.abs(X).max(axis=0)
        col_scale = np.where(col_scale > 1e-12, col_scale, 1.0)
        Xs = X / col_scale
        y_scale = max(float(np.abs(y).max()), 1e-12)
        ys = y / y_scale
        eps = self.epsilon / y_scale if y_scale > 1.0 else self.epsilon
        return Xs, ys, col_scale, y_scale, eps

    def _ridge_start(self, Xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Warm-start from ridge-regularized least squares."""
        n_features = Xs.shape[1]
        w0, *_ = np.linalg.lstsq(
            np.vstack([Xs, 1e-3 * np.eye(n_features)]),
            np.concatenate([ys, np.zeros(n_features)]),
            rcond=None,
        )
        if self.nonneg:
            w0 = np.clip(w0, 0.0, None)
        return w0

    def _solve(
        self,
        Xs: np.ndarray,
        ys: np.ndarray,
        eps: float,
        w0: np.ndarray,
        maxiter: int,
        maxcor: int = 10,
        gtol: float = 1e-10,
    ):
        bounds = [(0.0, None)] * Xs.shape[1] if self.nonneg else None
        return scipy.optimize.minimize(
            self._objective,
            w0,
            args=(Xs, ys, eps),
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={
                "maxiter": maxiter,
                "maxcor": maxcor,
                "ftol": 1e-14,
                "gtol": gtol,
            },
        )

    def _newton_solve(
        self,
        Xs: np.ndarray,
        ys: np.ndarray,
        eps: float,
        w0: np.ndarray,
        gtol: float,
        maxiter: int = 50,
    ) -> np.ndarray | None:
        """Damped Newton for the unconstrained smoothed primal.

        The fold problems are tiny (d ≲ 50 columns) and the smoothed
        loss is stiff (curvature ~ C/δ near the tube boundary), which
        is exactly where a quasi-Newton method pays dozens of
        iterations to relearn the Hessian every fold.  The exact
        Hessian

            H = I + C · Xₐᵀ diag(δ²/(e²+δ²)^{3/2}) Xₐ   (active rows)

        is SPD (≥ I) and costs O(n·d²) to form, so full Newton steps
        with Armijo backtracking converge in a handful of iterations.
        Returns the iterate once max|∇f| ≤ gtol, or ``None`` when it
        fails to converge (caller falls back to L-BFGS-B).  Only valid
        for the unconstrained problem — bounds need the projected
        solver.
        """
        if self.nonneg:
            return None
        d = self.smoothing
        w = np.asarray(w0, dtype=np.float64).copy()
        obj, grad = self._objective(w, Xs, ys, eps)
        for _ in range(maxiter):
            if not np.isfinite(obj):
                return None
            if np.abs(grad).max() <= gtol:
                return w
            r = Xs @ w - ys
            e = np.abs(r) - eps
            active = e > 0
            h = np.zeros_like(r)
            if np.any(active):
                ea = e[active]
                h[active] = d * d / np.power(ea * ea + d * d, 1.5)
            Xa = Xs * np.sqrt(self.C * h)[:, None]
            H = Xa.T @ Xa
            H[np.diag_indices_from(H)] += 1.0
            try:
                step = np.linalg.solve(H, -grad)
            except np.linalg.LinAlgError:
                return None
            slope = float(grad @ step)
            if slope >= 0.0:  # not a descent direction (numerical)
                return None
            t = 1.0
            for _ in range(30):
                obj_new, grad_new = self._objective(w + t * step, Xs, ys, eps)
                if obj_new <= obj + 1e-4 * t * slope:
                    break
                t *= 0.5
            else:
                return None
            w = w + t * step
            obj, grad = obj_new, grad_new
        return w if np.abs(grad).max() <= gtol else None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVR":
        X, y = check_Xy(X, y)
        Xs, ys, col_scale, y_scale, eps = self._prepare(X, y)
        w0 = self._ridge_start(Xs, ys)
        result = self._solve(Xs, ys, eps, w0, maxiter=self.max_iter)
        if not np.all(np.isfinite(result.x)):
            raise FitError("SVR optimization produced non-finite weights")
        self._coef = result.x * y_scale / col_scale
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("predict() before fit()")
        return np.asarray(X, dtype=np.float64) @ self._coef

    @property
    def coef_(self) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("coef_ before fit()")
        return self._coef


def svr_fold_objective(
    svr: LinearSVR, X: np.ndarray, y: np.ndarray, coef: np.ndarray
) -> float:
    """The fold's scaled primal objective at an *unscaled* coefficient
    vector — the quantity the warm-start certificate bounds.  Used by
    the equivalence tests to compare warm and cold fold solutions on
    the exact objective both solvers minimize."""
    X, y = check_Xy(X, y)
    Xs, ys, col_scale, y_scale, eps = svr._prepare(X, y)
    w = np.asarray(coef, dtype=np.float64) * col_scale / y_scale
    obj, _ = svr._objective(w, Xs, ys, eps)
    return obj


def svr_warm_loocv(
    svr: LinearSVR, X: np.ndarray, y: np.ndarray
) -> tuple[np.ndarray, SVRWarmStats] | None:
    """Leave-one-out raw predictions via warm-started fold solves.

    One polished full-data solve seeds every fold; each fold then runs
    a short L-BFGS-B from the seed (transformed into the fold's own
    canonical scaling, so warm and cold paths minimize the *same*
    objective) and must pass the strong-convexity certificate

        ‖∇f(w)‖² / 2  ≤  CERT_REL_GAP · (1 + |f(w)|).

    The scaled objective has Hessian ⪰ I (the ½‖w‖² term), i.e. it is
    1-strongly convex, so f(w) − f* ≤ ‖∇f(w)‖²/2: an accepted fold is
    provably within the gap of the unique fold optimum — and therefore
    of whatever a cold solve would return.  Folds that fail are left
    NaN for the caller's cold-refit fallback, mirroring the NNLS
    warm-start contract.  Returns ``None`` when the configuration is
    outside the warm contract (bounded/non-negative weights) or the
    seed solve is unusable.
    """
    if svr.nonneg:
        return None
    X, y = check_Xy(X, y)
    n = X.shape[0]
    if n < 3:
        return None
    # Polished seed: same objective as fit(), pushed to a smaller
    # gradient (deep L-BFGS-B memory, generous iteration budget) so
    # fold solves start inside their certificate basin.
    Xs, ys, _, y_scale, eps = svr._prepare(X, y)
    full = svr._solve(
        Xs,
        ys,
        eps,
        svr._ridge_start(Xs, ys),
        maxiter=max(4 * svr.max_iter, 2000),
        maxcor=WARM_MAXCOR,
    )
    if not np.all(np.isfinite(full.x)):
        return None
    col_scale = np.abs(X).max(axis=0)
    col_scale = np.where(col_scale > 1e-12, col_scale, 1.0)
    coef_full = full.x * y_scale / col_scale  # unscaled seed weights
    # Certificate-matched fold tolerance: acceptance needs
    # ‖∇f‖²/2 ≤ CERT_REL_GAP · (1 + |f|), and L-BFGS-B stops on
    # max|∇f_i| ≤ gtol, so gtol = √(2·CERT_REL_GAP/d) guarantees the
    # certificate at the stopping point for any f (the ‖·‖₂ ≤ √d·‖·‖∞
    # bound, dropping the favorable 1 + |f| ≥ 1 slack).  Running the
    # folds to the full-fit 1e-10 tolerance instead costs several times
    # more iterations for precision the certificate never uses.
    fold_gtol = float(np.sqrt(2.0 * CERT_REL_GAP / X.shape[1]))
    raw = np.full(n, np.nan)
    stats = SVRWarmStats(folds=n)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        mask[i] = False
        Xi, yi = X[mask], y[mask]
        mask[i] = True
        try:
            Xi, yi = check_Xy(Xi, yi)
        except FitError:
            continue
        Xsi, ysi, cs_i, ysc_i, eps_i = svr._prepare(Xi, yi)
        # The fold recomputes its own canonical scaling (deleting a row
        # can move a column/target max); the seed is transformed into
        # that space so the fold minimizes exactly the cold objective.
        w_sol = coef_full * cs_i / ysc_i
        obj, grad = svr._objective(w_sol, Xsi, ysi, eps_i)
        gap_bound = 0.5 * float(grad @ grad)
        if gap_bound > CERT_REL_GAP * (1.0 + abs(obj)):
            # The deleted point was a support vector (or moved the
            # scaling): the seed is not the fold optimum.  A few exact
            # Newton steps from the seed, with a short warm L-BFGS-B
            # run as fallback; then re-certify.
            w_new = svr._newton_solve(Xsi, ysi, eps_i, w_sol, gtol=fold_gtol)
            if w_new is None:
                res = svr._solve(
                    Xsi,
                    ysi,
                    eps_i,
                    w_sol,
                    maxiter=WARM_MAXITER,
                    maxcor=WARM_MAXCOR,
                    gtol=fold_gtol,
                )
                if not np.all(np.isfinite(res.x)):
                    continue
                w_new = res.x
            w_sol = w_new
            obj, grad = svr._objective(w_sol, Xsi, ysi, eps_i)
            gap_bound = 0.5 * float(grad @ grad)
            if gap_bound > CERT_REL_GAP * (1.0 + abs(obj)):
                continue
        # Points inside the ε-tube contribute neither loss nor
        # gradient, so deleting one leaves the full-fit optimum the
        # fold optimum: the seed certifies directly and the fold costs
        # one objective evaluation, no solver call.
        stats.accepted += 1
        w = w_sol * ysc_i / cs_i
        raw[i] = float(X[i] @ w)
    return raw, stats
