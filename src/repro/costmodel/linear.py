"""Linear block-cost model fitted from measurements (paper slides 5–6).

Each vectorized basic block is a linear equation over its instruction
type counts, ``cost = Σ nᵢ·wᵢ``.  The *target* cost of a block is
implied by measurement: the static scalar block cost (the same
count-based cost LLVM uses) divided by the measured speedup,

    c_vector_target = VF · c_scalar / S_measured

— slide 6's worked examples (c_scalar = 8, c_vector = 2.76 against a
measured 2.89) follow exactly this construction.  Fitting the weight
vector across the suite then yields a cost model whose speedup estimate
is ``VF · c_scalar / (n·w)``.

The known weakness (slide 7) is that these cost targets span a large
interval across kernels, which strains the fit — the motivation for the
speedup-target model in :mod:`repro.costmodel.speedup`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..fitting.base import Regressor
from . import matrix
from .base import EPS, Sample
from .llvm_like import LLVMLikeCostModel
from .speedup import vector_count_features

#: Default-table static model used for batch target construction; the
#: cost tables are module constants, so one instance serves all.
_STATIC = LLVMLikeCostModel()

matrix.register_target(
    "implied_cost",
    lambda b: b.vf
    * (b.scalar_features @ _STATIC._scalar_w)
    / np.maximum(b.measured, EPS),
)


class LinearCostModel:
    """Fitted vector-block-cost model: targets are implied block costs."""

    def __init__(self, regressor: Regressor):
        self.regressor = regressor
        self.name = f"cost-{regressor.name}"
        self._static = LLVMLikeCostModel()
        self._fitted = False

    # -- target construction -------------------------------------------------

    def implied_vector_cost(self, sample: Sample) -> float:
        """The block cost the measurement implies for the vector block."""
        return (
            sample.vf
            * self._static.scalar_cost(sample)
            / max(sample.measured_speedup, EPS)
        )

    def training_data(
        self, samples: Sequence[Sample]
    ) -> tuple[np.ndarray, np.ndarray]:
        # Shared (read-only) matrices from the dataset bundle: the raw
        # vector-block counts and the measurement-implied cost targets.
        X = matrix.design_matrix(samples, vector_count_features)
        y = matrix.target_vector(samples, "implied_cost")
        return X, y

    # -- model interface ------------------------------------------------------

    def fit(self, samples: Sequence[Sample]) -> "LinearCostModel":
        X, y = self.training_data(samples)
        self.regressor.fit(X, y)
        self._fitted = True
        return self

    def vector_cost(self, sample: Sample) -> float:
        if not self._fitted:
            raise RuntimeError("predict before fit")
        return float(self.regressor.predict(sample.vector_features[None, :])[0])

    def predict_speedup(self, sample: Sample) -> float:
        cost = max(self.vector_cost(sample), EPS)
        return sample.vf * self._static.scalar_cost(sample) / cost

    def predict_batch(self, samples: Sequence[Sample]) -> np.ndarray:
        """All speedup estimates in one matrix product."""
        if not self._fitted:
            raise RuntimeError("predict before fit")
        b = matrix.get_bundle(samples)
        costs = np.maximum(
            np.asarray(self.regressor.predict(b.vector_features)), EPS
        )
        return b.vf * (b.scalar_features @ self._static._scalar_w) / costs

    @property
    def weights(self) -> np.ndarray:
        return self.regressor.coef_
