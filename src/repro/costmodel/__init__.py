"""Vectorization cost models: the static baseline and the fitted family."""

from .base import (
    EPS,
    CostModel,
    FittedModel,
    Sample,
    measured_speedups,
    predict_all,
    sample_from_measurement,
)
from .featurize import (
    FEATURE_NAMES,
    N_FEATURES,
    class_count,
    describe,
    feature_vector,
    features_matrix,
    rated,
)
from .llvm_like import LLVMLikeCostModel, SCALAR_COSTS, VECTOR_COSTS
from .matrix import (
    MatrixBundle,
    clear_matrix_cache,
    design_matrix,
    get_bundle,
    matrix_cache_disabled,
    matrix_cache_info,
    samples_fingerprint,
)
from .linear import LinearCostModel
from .speedup import SpeedupModel, count_features, vector_count_features
from .rated import RatedSpeedupModel, rated_features, rated_with_vf
from .extended import EXTENDED_SUFFIX, ExtendedSpeedupModel, extended_features

# Importing the ``.rated`` submodule shadows the ``rated`` function from
# featurize at package level; restore the function binding.
from .featurize import rated  # noqa: E402,F811

__all__ = [
    "EPS",
    "CostModel",
    "FittedModel",
    "Sample",
    "measured_speedups",
    "predict_all",
    "sample_from_measurement",
    "FEATURE_NAMES",
    "N_FEATURES",
    "class_count",
    "describe",
    "feature_vector",
    "features_matrix",
    "rated",
    "LLVMLikeCostModel",
    "SCALAR_COSTS",
    "VECTOR_COSTS",
    "MatrixBundle",
    "clear_matrix_cache",
    "design_matrix",
    "get_bundle",
    "matrix_cache_disabled",
    "matrix_cache_info",
    "samples_fingerprint",
    "LinearCostModel",
    "SpeedupModel",
    "count_features",
    "vector_count_features",
    "RatedSpeedupModel",
    "EXTENDED_SUFFIX",
    "ExtendedSpeedupModel",
    "extended_features",
    "rated_features",
    "rated_with_vf",
]
