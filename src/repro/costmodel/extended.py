"""Extended feature sets — the paper's stated next step.

The conclusion slide ends with "Next steps: add more code features and
tests to cover all instruction types."  This module implements that
extension on top of the rated model:

* the vectorization factor (pure fractions lose the scale of the
  achievable speedup);
* arithmetic intensity of the vector block (ops per byte — the
  quantity slide 9 gestures at through composition);
* the memory-op share and the lane-movement (packing-overhead) share
  as aggregate super-features;
* the scalar block's composition, so the model sees what the loop
  looked like *before* vectorization.

`ExtendedSpeedupModel` plugs into everything the base models do
(fitting backends, LOOCV, policies); the ablation bench
(`benchmarks/bench_ablations.py`) quantifies each feature group's
contribution.
"""

from __future__ import annotations

import numpy as np

from ..fitting.base import Regressor
from ..targets.classes import (
    FEATURE_ORDER,
    MEMORY_CLASSES,
    OVERHEAD_CLASSES,
)
from . import matrix
from .base import Sample
from .featurize import rated
from .speedup import SpeedupModel

_MEM_MASK = np.array([c in MEMORY_CLASSES for c in FEATURE_ORDER])
_OVH_MASK = np.array([c in OVERHEAD_CLASSES for c in FEATURE_ORDER])
_COMPUTE_MASK = ~(_MEM_MASK | _OVH_MASK)

#: Names of the appended feature columns, for weight inspection.
EXTENDED_SUFFIX = (
    "vf",
    "intensity",
    "mem_share",
    "overhead_share",
    "compute_share",
)


def intensity_of(counts: np.ndarray, elem_bytes: float = 4.0) -> float:
    """Ops-per-byte proxy from a feature vector alone.

    Memory classes are charged ``elem_bytes`` per count; compute
    classes one op per count.  Streams are featurized per VF elements,
    so the ratio is scale-free.
    """
    mem_bytes = float(counts[_MEM_MASK].sum()) * elem_bytes
    ops = float(counts[_COMPUTE_MASK].sum())
    if mem_bytes <= 0:
        return ops  # compute-only block: already ops "per free byte"
    return ops / mem_bytes


def extended_features(sample: Sample) -> np.ndarray:
    """Rated vector + rated scalar composition + engineered features."""
    vec = np.asarray(sample.vector_features, dtype=np.float64)
    scal = np.asarray(sample.scalar_features, dtype=np.float64)
    vec_rated = rated(vec)
    scal_rated = rated(scal)
    total = max(vec.sum(), 1e-12)
    engineered = np.array(
        [
            float(sample.vf),
            intensity_of(vec),
            float(vec[_MEM_MASK].sum()) / total,
            float(vec[_OVH_MASK].sum()) / total,
            float(vec[_COMPUTE_MASK].sum()) / total,
        ]
    )
    return np.concatenate([vec_rated, scal_rated, engineered])


def _extended_batch(b: "matrix.MatrixBundle") -> np.ndarray:
    """Row-for-row vectorization of :func:`extended_features`."""
    vec = b.vector_features
    mem_bytes = vec[:, _MEM_MASK].sum(axis=1) * 4.0
    ops = vec[:, _COMPUTE_MASK].sum(axis=1)
    intensity = np.where(
        mem_bytes <= 0, ops, ops / np.where(mem_bytes > 0, mem_bytes, 1.0)
    )
    total = np.maximum(vec.sum(axis=1), 1e-12)
    engineered = np.stack(
        [
            b.vf,
            intensity,
            vec[:, _MEM_MASK].sum(axis=1) / total,
            vec[:, _OVH_MASK].sum(axis=1) / total,
            vec[:, _COMPUTE_MASK].sum(axis=1) / total,
        ],
        axis=1,
    )
    return np.concatenate([rated(vec), rated(b.scalar_features), engineered], axis=1)


matrix.register_featurizer(extended_features, "extended", _extended_batch)


class ExtendedSpeedupModel(SpeedupModel):
    """Rated model plus scalar-side composition and engineered features."""

    def __init__(self, regressor: Regressor, clip_to_vf: bool = True):
        super().__init__(
            regressor,
            feature_fn=extended_features,
            clip_to_vf=clip_to_vf,
            label="extended",
        )
