"""Shared feature-matrix cache: materialize (X, y, vf) once per dataset.

Every hot path of the experiment suite — ``fit``, ``predict_all``,
``loocv_predictions``, the decision policies — used to re-walk the
``Sample`` list and re-run the per-sample featurizer for every model it
touched.  The feature matrices only depend on the *dataset content*,
not on which model asks, so this module materializes them once per
(dataset fingerprint, featurization, target kind) and hands out the
shared arrays.

Contract:

* :func:`samples_fingerprint` hashes everything a matrix can depend on
  (kernel names, targets, VFs, measurements, raw feature bytes), so
  any change to the sample list — including ``Sample.with_speedup``
  jitter replays — yields a new fingerprint and a fresh bundle.
* Cached arrays are **shared**: consumers must treat them as
  immutable.  Everything handed out is marked read-only; derive a
  writable copy (``arr.copy()``) before mutating.
* Featurizers are registered by *function object* (see
  :func:`register_featurizer`).  Unregistered callables — ad-hoc
  lambdas in tests, user extensions — fall back to the per-sample loop
  and are never cached, so custom models keep their exact semantics.
* ``REPRO_MATRIX_CACHE=0`` (or :func:`matrix_cache_disabled`) disables
  the cross-call memo; bundles are then rebuilt per call, which is the
  seed-path behavior the benchmarks compare against.
* ``REPRO_MATRIX_CACHE_DIR`` adds an on-disk tier for warm starts
  across processes (the advisor service uses it).  Writes follow the
  native artifact cache's contract — serialized to a tmp file and
  installed with ``os.replace``, digest recorded in a sha256 sidecar —
  and loads are corruption-safe: a torn or tampered bundle is evicted
  and rebuilt from the samples, never served and never fatal.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

#: Bundles kept in the process-wide LRU (suites touch 2–3 datasets;
#: the slack absorbs test fixtures without unbounded growth).
CACHE_CAPACITY = 16

_LOCK = threading.Lock()
_BUNDLES: "OrderedDict[str, MatrixBundle]" = OrderedDict()
_ENABLED = os.environ.get("REPRO_MATRIX_CACHE", "1") != "0"
_HITS = 0
_MISSES = 0


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


def samples_fingerprint(samples: Sequence) -> str:
    """Content hash of everything a feature/target matrix depends on."""
    h = hashlib.sha1()
    h.update(str(len(samples)).encode())
    for s in samples:
        h.update(s.name.encode())
        h.update(s.target.encode())
        h.update(np.asarray(s.scalar_features, dtype=np.float64).tobytes())
        h.update(np.asarray(s.vector_features, dtype=np.float64).tobytes())
        if s.lowered_features is not None:
            h.update(np.asarray(s.lowered_features, dtype=np.float64).tobytes())
        else:
            h.update(b"-")
    meta = np.array(
        [
            (
                float(s.vf),
                s.measured_speedup,
                s.measured_scalar_cpi,
                s.measured_vector_cpi,
            )
            for s in samples
        ],
        dtype=np.float64,
    )
    h.update(meta.tobytes())
    return h.hexdigest()


@dataclass
class MatrixBundle:
    """The stacked per-dataset arrays every model draws from.

    ``derived`` holds lazily-built matrices keyed by featurization or
    target kind ("X:rated", "y:speedup", …) so each is computed once
    per dataset no matter how many models consume it.
    """

    fingerprint: str
    n: int
    vf: np.ndarray
    measured: np.ndarray
    scalar_cpi: np.ndarray
    vector_cpi: np.ndarray
    scalar_features: np.ndarray
    vector_features: np.ndarray
    _derived: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def derived(
        self, key: str, build: Callable[["MatrixBundle"], np.ndarray]
    ) -> np.ndarray:
        """The matrix for ``key``, built on first request."""
        with self._lock:
            arr = self._derived.get(key)
            if arr is None:
                arr = _readonly(np.asarray(build(self), dtype=np.float64))
                self._derived[key] = arr
        return arr


def _build_bundle(samples: Sequence, fingerprint: str) -> MatrixBundle:
    return MatrixBundle(
        fingerprint=fingerprint,
        n=len(samples),
        vf=_readonly(np.array([float(s.vf) for s in samples])),
        measured=_readonly(np.array([s.measured_speedup for s in samples])),
        scalar_cpi=_readonly(
            np.array([s.measured_scalar_cpi for s in samples])
        ),
        vector_cpi=_readonly(
            np.array([s.measured_vector_cpi for s in samples])
        ),
        scalar_features=_readonly(
            np.stack([s.scalar_features for s in samples]).astype(np.float64)
        ),
        vector_features=_readonly(
            np.stack([s.vector_features for s in samples]).astype(np.float64)
        ),
    )


def get_bundle(samples: Sequence) -> MatrixBundle:
    """The (cached) matrix bundle for a sample list.

    With the cache disabled a fresh bundle is built per call — same
    values, no sharing across calls.  With ``REPRO_MATRIX_CACHE_DIR``
    set, a memory miss consults the on-disk tier before rebuilding, and
    a rebuild is persisted for the next process.
    """
    global _HITS, _MISSES
    if not samples:
        raise ValueError("cannot bundle an empty sample list")
    fp = samples_fingerprint(samples)
    if not _ENABLED:
        return _build_bundle(samples, fp)
    with _LOCK:
        bundle = _BUNDLES.get(fp)
        if bundle is not None:
            _BUNDLES.move_to_end(fp)
            _HITS += 1
            return bundle
        _MISSES += 1
    # Build outside the lock (stacking ~100×24 floats is cheap but the
    # fingerprint walk above already cost more than a dict race would).
    bundle = _load_disk_bundle(fp)
    if bundle is None:
        bundle = _build_bundle(samples, fp)
        _save_disk_bundle(bundle)
    with _LOCK:
        bundle = _BUNDLES.setdefault(fp, bundle)
        _BUNDLES.move_to_end(fp)
        while len(_BUNDLES) > CACHE_CAPACITY:
            _BUNDLES.popitem(last=False)
    return bundle


# -- on-disk tier (corruption-safe, same contract as the native cache) -------

#: Bump when the serialized layout changes; foreign-schema files are
#: evicted and rebuilt, never deserialized into the wrong shape.
DISK_SCHEMA = 1

#: Array fields persisted per bundle (``derived`` stays lazy/in-memory).
_DISK_FIELDS = (
    "vf",
    "measured",
    "scalar_cpi",
    "vector_cpi",
    "scalar_features",
    "vector_features",
)


def disk_cache_dir() -> Optional[Path]:
    """The on-disk bundle directory, or ``None`` when the tier is off."""
    env = os.environ.get("REPRO_MATRIX_CACHE_DIR")
    if not env:
        return None
    return Path(env).expanduser()


def _disk_paths(root: Path, fp: str) -> tuple[Path, Path]:
    path = root / f"bundle-{fp}.pkl"
    return path, path.with_suffix(".pkl.sha256")


def _evict_disk_bundle(root: Path, fp: str) -> None:
    for path in _disk_paths(root, fp):
        try:
            path.unlink()
        except OSError:
            pass


def _load_disk_bundle(fp: str) -> Optional[MatrixBundle]:
    """A verified on-disk bundle, or ``None`` (evicting anything corrupt).

    A torn write, a flipped bit, a missing sidecar, or a foreign schema
    all count as a miss: the files are evicted and the caller rebuilds
    from the samples — the warm start degrades, nothing poisons it.
    """
    root = disk_cache_dir()
    if root is None:
        return None
    path, sidecar = _disk_paths(root, fp)
    try:
        blob = path.read_bytes()
        recorded = sidecar.read_text().strip()
        if hashlib.sha256(blob).hexdigest() != recorded:
            raise ValueError("sha256 mismatch")
        payload = pickle.loads(blob)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != DISK_SCHEMA
            or payload.get("fingerprint") != fp
        ):
            raise ValueError("foreign schema or fingerprint")
        arrays = {
            key: _readonly(np.asarray(payload[key])) for key in _DISK_FIELDS
        }
        return MatrixBundle(fingerprint=fp, n=int(payload["n"]), **arrays)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, pickle.UnpicklingError, EOFError):
        _evict_disk_bundle(root, fp)
        return None


def _save_disk_bundle(bundle: MatrixBundle) -> None:
    """Atomically persist a bundle (tmp + ``os.replace``, sidecar last).

    The sidecar is written *after* the payload lands, so a reader never
    sees a digest without its bytes; an unwritable directory degrades
    to no persistence.
    """
    root = disk_cache_dir()
    if root is None:
        return
    payload = {
        "schema": DISK_SCHEMA,
        "fingerprint": bundle.fingerprint,
        "n": bundle.n,
    }
    for key in _DISK_FIELDS:
        payload[key] = np.asarray(getattr(bundle, key))
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    path, sidecar = _disk_paths(root, bundle.fingerprint)
    try:
        root.mkdir(parents=True, exist_ok=True)
        for target, data in (
            (path, blob),
            (sidecar, hashlib.sha256(blob).hexdigest().encode()),
        ):
            tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
    except OSError:
        pass


# -- featurizer registry -----------------------------------------------------

#: feature_fn → (derived-matrix key, batch builder over a bundle).
_FEATURIZERS: dict = {}
#: featurization key → feature_fn (the registry/advisor lookup: model
#: weights are versioned by this key, so a stored model can recover the
#: exact row builder it was fitted with).
_FEATURIZERS_BY_KEY: dict[str, Callable] = {}


def register_featurizer(
    feature_fn: Callable,
    key: str,
    batch: Callable[[MatrixBundle], np.ndarray],
) -> None:
    """Teach the cache to batch-build ``feature_fn``'s design matrix.

    ``batch(bundle)`` must return exactly ``np.stack([feature_fn(s)
    for s in samples])`` — row-for-row equality is what lets the loop
    and matrix paths interchange bit-identically.
    """
    _FEATURIZERS[feature_fn] = (f"X:{key}", batch)
    _FEATURIZERS_BY_KEY[key] = feature_fn


def featurizer_by_key(key: str) -> Callable:
    """The feature function registered under a featurization key.

    Raises ``KeyError`` naming the known keys — a model registry entry
    recorded under an unknown featurization must fail loudly, not
    silently featurize differently than it was fitted.
    """
    try:
        return _FEATURIZERS_BY_KEY[key]
    except KeyError:
        known = ", ".join(sorted(_FEATURIZERS_BY_KEY))
        raise KeyError(
            f"unknown featurization {key!r}; registered: {known}"
        ) from None


def featurization_keys() -> tuple[str, ...]:
    return tuple(sorted(_FEATURIZERS_BY_KEY))


def design_matrix(samples: Sequence, feature_fn: Callable) -> np.ndarray:
    """The stacked feature matrix for a featurizer over ``samples``.

    Registered featurizers come from the shared bundle; unknown ones
    are stacked per-sample, uncached.
    """
    reg = _FEATURIZERS.get(feature_fn)
    if reg is None:
        return np.stack([feature_fn(s) for s in samples])
    key, batch = reg
    return get_bundle(samples).derived(key, batch)


def target_vector(samples: Sequence, kind: str) -> np.ndarray:
    """The shared target vector of the given kind ("speedup", …)."""
    bundle = get_bundle(samples)
    if kind == "speedup":
        return bundle.measured
    builder = _TARGETS.get(kind)
    if builder is None:
        raise KeyError(f"unknown target kind {kind!r}")
    return bundle.derived(f"y:{kind}", builder)


#: target kind → batch builder (populated by the model modules).
_TARGETS: dict = {}


def register_target(kind: str, batch: Callable[[MatrixBundle], np.ndarray]) -> None:
    _TARGETS[kind] = batch


# -- cache control -----------------------------------------------------------


def clear_matrix_cache() -> None:
    """Drop every cached bundle (fingerprints recompute from scratch)."""
    global _HITS, _MISSES
    with _LOCK:
        _BUNDLES.clear()
        _HITS = 0
        _MISSES = 0


def matrix_cache_info() -> dict:
    with _LOCK:
        return {
            "enabled": _ENABLED,
            "bundles": len(_BUNDLES),
            "hits": _HITS,
            "misses": _MISSES,
        }


@contextmanager
def matrix_cache_disabled() -> Iterator[None]:
    """Temporarily rebuild bundles per call (seed-path emulation)."""
    global _ENABLED
    prior = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = prior
