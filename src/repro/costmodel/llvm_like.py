"""The baseline under study: an LLVM-TTI-style static cost model.

LLVM's vectorization cost model sums coarse per-opcode costs over the
scalar and would-be-vector blocks and vectorizes when
``vf * scalar_cost > vector_cost``.  The table below mirrors the shape
of LLVM 6.0's ARM/X86 TTI defaults: almost everything costs 1, with
crude penalties for division, sqrt, calls, gathers and horizontal
reductions.  Its mispredictions — it knows nothing about latency
chains, port pressure, or memory bandwidth — are exactly what the
paper's slide 4 ("state of the art") exhibits and what the fitted
models repair.
"""

from __future__ import annotations

import numpy as np

from ..targets.classes import FEATURE_ORDER, IClass
from . import matrix
from .base import EPS, Sample

#: Static per-class costs for scalar instructions.
SCALAR_COSTS: dict[IClass, float] = {
    IClass.LOAD: 1,
    IClass.STORE: 1,
    IClass.GATHER: 1,
    IClass.SCATTER: 1,
    IClass.MASKLOAD: 1,
    IClass.MASKSTORE: 1,
    IClass.BROADCAST: 1,
    IClass.ADD: 1,
    IClass.MUL: 1,
    IClass.FMA: 1,
    IClass.DIV: 4,
    IClass.SQRT: 4,
    IClass.EXP: 10,
    IClass.ABS: 1,
    IClass.MINMAX: 1,
    IClass.CMP: 1,
    IClass.BLEND: 1,
    IClass.LOGIC: 1,
    IClass.SHIFT: 1,
    IClass.CVT: 1,
    IClass.SHUFFLE: 1,
    IClass.INSERT: 1,
    IClass.EXTRACT: 1,
    IClass.REDUCE: 1,
}

#: Static per-class costs for vector instructions.
VECTOR_COSTS: dict[IClass, float] = {
    **SCALAR_COSTS,
    IClass.DIV: 8,
    IClass.SQRT: 8,
    IClass.GATHER: 4,
    IClass.SCATTER: 4,
    IClass.MASKLOAD: 2,
    IClass.MASKSTORE: 2,
    IClass.REDUCE: 2,
}


def _cost_vector(table: dict[IClass, float]) -> np.ndarray:
    return np.array([table[c] for c in FEATURE_ORDER], dtype=np.float64)


class LLVMLikeCostModel:
    """Static block-cost ratio model (the paper's baseline)."""

    name = "llvm-static"

    def __init__(self):
        self._scalar_w = _cost_vector(SCALAR_COSTS)
        self._vector_w = _cost_vector(VECTOR_COSTS)

    def scalar_cost(self, sample: Sample) -> float:
        """Static cost of one scalar iteration."""
        return float(sample.scalar_features @ self._scalar_w)

    def vector_cost(self, sample: Sample) -> float:
        """Static cost of one vector iteration (VF elements)."""
        return float(sample.vector_features @ self._vector_w)

    def predict_speedup(self, sample: Sample) -> float:
        """Estimated speedup = VF · scalar_cost / vector_cost."""
        return sample.vf * self.scalar_cost(sample) / max(
            self.vector_cost(sample), EPS
        )

    def predict_batch(self, samples) -> np.ndarray:
        """All static speedup estimates from the shared feature bundle."""
        b = matrix.get_bundle(samples)
        scalar = b.scalar_features @ self._scalar_w
        vector = np.maximum(b.vector_features @ self._vector_w, EPS)
        return b.vf * scalar / vector

    def fit(self, samples) -> "LLVMLikeCostModel":
        """No-op: the baseline is table-driven, not fitted."""
        return self
