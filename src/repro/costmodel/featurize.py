"""Feature extraction: instruction streams → model feature vectors.

The paper's models are linear in per-instruction-type counts of the
*vectorized* basic block (slide 5), optionally replaced by the type's
share of the block ("rated instruction count", slide 9).  Features here
are the per-iteration class counts of an :class:`MStream` with
prologue/epilogue amortized, laid out in the fixed
:data:`repro.targets.classes.FEATURE_ORDER`.
"""

from __future__ import annotations

import numpy as np

from ..codegen.minstr import MStream
from ..targets.classes import FEATURE_ORDER, IClass

FEATURE_NAMES: tuple[str, ...] = tuple(c.value for c in FEATURE_ORDER)
N_FEATURES = len(FEATURE_ORDER)


def feature_vector(stream: MStream, include_overhead: bool = True) -> np.ndarray:
    """Per-iteration weighted class counts of ``stream``."""
    counts = stream.counts(include_overhead=include_overhead)
    return np.array(
        [counts.get(c, 0.0) for c in FEATURE_ORDER], dtype=np.float64
    )


def rated(features: np.ndarray) -> np.ndarray:
    """Composition features: each class as a fraction of the block.

    ``S_est = Σ (cᵢ / c_total) · ωᵢ`` — this exposes arithmetic
    intensity (a block that is 60% memory ops looks different from one
    that is 20% memory ops even when the raw counts scale together).
    """
    arr = np.asarray(features, dtype=np.float64)
    total = arr.sum(axis=-1, keepdims=True)
    safe = np.where(total > 0, total, 1.0)
    return arr / safe


def features_matrix(streams: list[MStream]) -> np.ndarray:
    return np.stack([feature_vector(s) for s in streams])


def describe(features: np.ndarray, min_count: float = 1e-9) -> str:
    """Human-readable non-zero feature summary (for reports)."""
    parts = [
        f"{name}={val:.2f}"
        for name, val in zip(FEATURE_NAMES, np.asarray(features))
        if abs(val) > min_count
    ]
    return ", ".join(parts)


def class_count(features: np.ndarray, iclass: IClass) -> float:
    return float(np.asarray(features)[FEATURE_ORDER.index(iclass)])
