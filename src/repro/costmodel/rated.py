"""Rated-instruction-count model (paper slides 9–10).

A count-based model cannot see arithmetic intensity: doubling every
count doubles nothing about the *shape* of the block, yet it is the
shape (what fraction of the block is memory traffic vs arithmetic)
that decides whether vectorization pays off on a bandwidth-limited
machine.  The rated model therefore replaces each count with the
type's share of the block:

    S_est = Σ (cᵢ / c_total) · ωᵢ

making "this block is 40% loads" a feature the fit can weight.
"""

from __future__ import annotations

import numpy as np

from ..fitting.base import Regressor
from . import matrix
from .base import Sample
from .featurize import rated
from .speedup import SpeedupModel


def rated_features(sample: Sample) -> np.ndarray:
    """Composition (fraction-of-block) features of the vector block."""
    return rated(sample.vector_features)


matrix.register_featurizer(
    rated_features, "rated", lambda b: rated(b.vector_features)
)


class RatedSpeedupModel(SpeedupModel):
    """Speedup model over composition features."""

    def __init__(self, regressor: Regressor, clip_to_vf: bool = True):
        super().__init__(
            regressor,
            feature_fn=rated_features,
            clip_to_vf=clip_to_vf,
            label="rated",
        )


def rated_with_vf(sample: Sample) -> np.ndarray:
    """Composition features extended with the VF.

    With pure fractions the model loses the scale of the achievable
    speedup; appending VF restores it.  Used by the ablation bench.
    """
    return np.concatenate([rated(sample.vector_features), [float(sample.vf)]])


matrix.register_featurizer(
    rated_with_vf,
    "rated+vf",
    lambda b: np.concatenate([rated(b.vector_features), b.vf[:, None]], axis=1),
)
