"""Speedup-target linear model (paper slide 7).

Instead of fitting block *costs* — whose targets vary over a large
interval — fit the measured *speedup* directly:

    S_est = Σ cᵢ · ωᵢ

with cᵢ the vector block's instruction-type counts.  Targets now live
in the small interval (0, VF], which fits markedly better (slide 8).
Predictions are clipped to that interval, matching the physical range
of a VF-wide vectorization.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..fitting.base import Regressor
from . import matrix
from .base import EPS, Sample


def vector_count_features(sample: Sample) -> np.ndarray:
    """Raw per-class instruction counts of the vector block only."""
    return sample.vector_features


def count_features(sample: Sample) -> np.ndarray:
    """Instruction counts of the scalar and vector blocks, concatenated.

    The paper's worked example (slide 6) writes one linear equation per
    *block* — the scalar original and its vectorized counterpart — so
    the speedup fit sees both mixes.  Empirically the scalar block's
    counts are what anchor the achievable speedup of small blocks
    (dropping them inflates false negatives dramatically).
    """
    return np.concatenate([sample.scalar_features, sample.vector_features])


matrix.register_featurizer(
    vector_count_features, "vector-counts", lambda b: b.vector_features
)
matrix.register_featurizer(
    count_features,
    "counts",
    lambda b: np.concatenate([b.scalar_features, b.vector_features], axis=1),
)


class SpeedupModel:
    """Linear speedup model over vector-block features."""

    def __init__(
        self,
        regressor: Regressor,
        feature_fn: Optional[Callable[[Sample], np.ndarray]] = None,
        clip_to_vf: bool = True,
        label: str = "speedup",
    ):
        self.regressor = regressor
        self.feature_fn = feature_fn or count_features
        self.clip_to_vf = clip_to_vf
        self.name = f"{label}-{regressor.name}"
        self._fitted = False

    def training_data(
        self, samples: Sequence[Sample]
    ) -> tuple[np.ndarray, np.ndarray]:
        # Registered featurizers draw from the shared matrix bundle
        # (built once per dataset fingerprint); custom feature_fns are
        # stacked per-sample exactly as before.  The returned arrays
        # may be shared — treat them as read-only.
        X = matrix.design_matrix(samples, self.feature_fn)
        y = matrix.target_vector(samples, "speedup")
        return X, y

    def fit(self, samples: Sequence[Sample]) -> "SpeedupModel":
        X, y = self.training_data(samples)
        self.regressor.fit(X, y)
        self._fitted = True
        return self

    def predict_speedup(self, sample: Sample) -> float:
        if not self._fitted:
            raise RuntimeError("predict before fit")
        raw = float(self.regressor.predict(self.feature_fn(sample)[None, :])[0])
        if self.clip_to_vf:
            return float(np.clip(raw, EPS, float(sample.vf)))
        return max(raw, EPS)

    def predict_batch(self, samples: Sequence[Sample]) -> np.ndarray:
        """All speedup predictions in one matrix product.

        Row-for-row this is ``[predict_speedup(s) for s in samples]``:
        the design matrix stacks the same per-sample feature rows and
        the clipping matches ``predict_speedup`` exactly.
        """
        if not self._fitted:
            raise RuntimeError("predict before fit")
        X = matrix.design_matrix(samples, self.feature_fn)
        raw = np.asarray(self.regressor.predict(X), dtype=np.float64)
        if self.clip_to_vf:
            vf = np.array([float(s.vf) for s in samples])
            return np.clip(raw, EPS, vf)
        return np.maximum(raw, EPS)

    def predict_rows(self, X: np.ndarray, vf: Sequence[float]) -> np.ndarray:
        """Predictions for pre-built feature rows (one row per plan point).

        The DSE oracle builds candidate rows itself — one kernel, many
        plan points sharing the scalar block — and clips each row to its
        *own* VF, matching ``predict_batch`` row-for-row.
        """
        if not self._fitted:
            raise RuntimeError("predict before fit")
        X = np.asarray(X, dtype=np.float64)
        raw = np.asarray(self.regressor.predict(X), dtype=np.float64)
        if self.clip_to_vf:
            return np.clip(raw, EPS, np.asarray(vf, dtype=np.float64))
        return np.maximum(raw, EPS)

    @property
    def weights(self) -> np.ndarray:
        return self.regressor.coef_
