"""Speedup-target linear model (paper slide 7).

Instead of fitting block *costs* — whose targets vary over a large
interval — fit the measured *speedup* directly:

    S_est = Σ cᵢ · ωᵢ

with cᵢ the vector block's instruction-type counts.  Targets now live
in the small interval (0, VF], which fits markedly better (slide 8).
Predictions are clipped to that interval, matching the physical range
of a VF-wide vectorization.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..fitting.base import Regressor
from .base import EPS, Sample


def vector_count_features(sample: Sample) -> np.ndarray:
    """Raw per-class instruction counts of the vector block only."""
    return sample.vector_features


def count_features(sample: Sample) -> np.ndarray:
    """Instruction counts of the scalar and vector blocks, concatenated.

    The paper's worked example (slide 6) writes one linear equation per
    *block* — the scalar original and its vectorized counterpart — so
    the speedup fit sees both mixes.  Empirically the scalar block's
    counts are what anchor the achievable speedup of small blocks
    (dropping them inflates false negatives dramatically).
    """
    return np.concatenate([sample.scalar_features, sample.vector_features])


class SpeedupModel:
    """Linear speedup model over vector-block features."""

    def __init__(
        self,
        regressor: Regressor,
        feature_fn: Optional[Callable[[Sample], np.ndarray]] = None,
        clip_to_vf: bool = True,
        label: str = "speedup",
    ):
        self.regressor = regressor
        self.feature_fn = feature_fn or count_features
        self.clip_to_vf = clip_to_vf
        self.name = f"{label}-{regressor.name}"
        self._fitted = False

    def training_data(
        self, samples: Sequence[Sample]
    ) -> tuple[np.ndarray, np.ndarray]:
        X = np.stack([self.feature_fn(s) for s in samples])
        y = np.array([s.measured_speedup for s in samples])
        return X, y

    def fit(self, samples: Sequence[Sample]) -> "SpeedupModel":
        X, y = self.training_data(samples)
        self.regressor.fit(X, y)
        self._fitted = True
        return self

    def predict_speedup(self, sample: Sample) -> float:
        if not self._fitted:
            raise RuntimeError("predict before fit")
        raw = float(self.regressor.predict(self.feature_fn(sample)[None, :])[0])
        if self.clip_to_vf:
            return float(np.clip(raw, EPS, float(sample.vf)))
        return max(raw, EPS)

    @property
    def weights(self) -> np.ndarray:
        return self.regressor.coef_
