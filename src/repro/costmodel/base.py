"""Cost-model interfaces and the dataset sample they consume.

A :class:`Sample` is one TSVC kernel's view for the modelling study:
the scalar and vector instruction-mix features, the VF, and the
measured timings.  Cost models implement ``predict_speedup(sample)``;
fitted models additionally implement ``fit(samples)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..sim.measure import MeasuredSample
from .featurize import feature_vector

#: Floor for predicted/implied costs and speedups (guards divisions).
EPS = 1e-9


@dataclass(frozen=True)
class Sample:
    """One kernel × target datapoint of the study."""

    name: str
    category: str
    target: str
    vf: int
    scalar_features: np.ndarray  # per scalar iteration
    #: IR-level instruction mix of the vector block (what LLVM's cost
    #: model sees: one gather, one masked store, one vector intrinsic)
    vector_features: np.ndarray  # per vector iteration (VF elements)
    measured_speedup: float
    measured_scalar_cpi: float  # cycles per scalar iteration
    measured_vector_cpi: float  # cycles per vector iteration
    vector_bound: str = ""      # "compute" | "memory" | "recurrence"
    #: machine-lowered instruction mix (post-scalarization; used by the
    #: ablation benches to quantify the IR-vs-machine feature choice)
    lowered_features: Optional[np.ndarray] = None

    @property
    def measured_beneficial(self) -> bool:
        return self.measured_speedup > 1.0

    def with_speedup(self, speedup: float) -> "Sample":
        return replace(self, measured_speedup=speedup)


def sample_from_measurement(m: MeasuredSample, category: str = "") -> Sample:
    """Convert a measurement into the model-facing datapoint."""
    return Sample(
        name=m.kernel.name,
        category=category or m.kernel.category,
        target=m.target.name,
        vf=m.vf,
        scalar_features=feature_vector(m.scalar_stream),
        vector_features=feature_vector(m.ir_vector_stream),
        lowered_features=feature_vector(m.vector_stream),
        measured_speedup=m.speedup,
        measured_scalar_cpi=m.scalar_breakdown.per_iter,
        measured_vector_cpi=m.vector_breakdown.per_iter,
        vector_bound=m.vector_breakdown.bound,
    )


@runtime_checkable
class CostModel(Protocol):
    """Anything that predicts a vectorization speedup for a sample."""

    name: str

    def predict_speedup(self, sample: Sample) -> float: ...


class FittedModel(CostModel, Protocol):
    def fit(self, samples: Sequence[Sample]) -> "FittedModel": ...


def predict_all(model: CostModel, samples: Sequence[Sample]) -> np.ndarray:
    """Predicted speedup for every sample.

    Models exposing ``predict_batch`` (the built-in family) answer
    with one matrix product over the shared feature bundle; anything
    else falls back to the per-sample loop.
    """
    batch = getattr(model, "predict_batch", None)
    if batch is not None and len(samples) > 0:
        return np.asarray(batch(samples), dtype=np.float64)
    return np.array([model.predict_speedup(s) for s in samples])


def measured_speedups(samples: Sequence[Sample]) -> np.ndarray:
    return np.array([s.measured_speedup for s in samples])
