"""Measurement pipeline: parallel suite sweeps over a persistent cache.

The package the experiment layer builds datasets through — see
DESIGN.md §"Measurement pipeline" for the architecture and
``python -m repro.experiments --help`` for the runtime knobs.
"""

from .build import (
    DatasetBuildStats,
    PipelineConfig,
    ScheduleDecision,
    choose_strategy,
    configure,
    estimate_kernel_work,
    measure_suite,
    resolve_timeout,
    resolve_workers,
)
from .corpus import (
    CorpusResult,
    measure_corpus,
    partition_names,
)
from .faultinject import (
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    parse_faults,
    plan_from_env,
)
from .resilience import (
    CheckpointJournal,
    FailureReport,
    KernelFailure,
    RetryPolicy,
    SweepError,
    default_checkpoint_dir,
    pipeline_diagnostics,
    run_supervised,
)
from .cache import (
    MISS,
    CacheStats,
    MeasurementCache,
    cache_enabled_by_env,
    default_cache,
    default_cache_dir,
    set_default_cache,
)
from .fingerprint import (
    PIPELINE_SCHEMA_VERSION,
    code_digest,
    measurement_fingerprint,
)

__all__ = [
    "DatasetBuildStats",
    "PipelineConfig",
    "ScheduleDecision",
    "choose_strategy",
    "estimate_kernel_work",
    "configure",
    "measure_suite",
    "resolve_timeout",
    "resolve_workers",
    "CorpusResult",
    "measure_corpus",
    "partition_names",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "parse_faults",
    "plan_from_env",
    "CheckpointJournal",
    "FailureReport",
    "KernelFailure",
    "RetryPolicy",
    "SweepError",
    "default_checkpoint_dir",
    "pipeline_diagnostics",
    "run_supervised",
    "MISS",
    "CacheStats",
    "MeasurementCache",
    "cache_enabled_by_env",
    "default_cache",
    "default_cache_dir",
    "set_default_cache",
    "PIPELINE_SCHEMA_VERSION",
    "code_digest",
    "measurement_fingerprint",
]
