"""Sharded, resumable sweeps over arbitrary kernel corpora.

``measure_suite`` sweeps one kernel set in one process tree;
``measure_corpus`` scales that to generated corpora an order of
magnitude larger than the TSVC suite by partitioning the corpus into
contiguous *shards* and sweeping them one after another, each shard a
full ``measure_suite`` run with its own supervised pool, retry budget,
and checkpoint journal (namespaced per shard, so an interrupted corpus
sweep resumes mid-shard without replaying finished shards).

Bit-identity with a serial sweep is a theorem, not an aspiration:
per-kernel measurements depend only on ``(kernel name, spec)`` — noise
is seeded from ``crc32(name)``, never from worker count or arrival
order — and shards are contiguous blocks of the input order, so
concatenating shard outputs reproduces the serial output exactly.  The
chaos harness (``repro.experiments chaos --corpus``) and the corpus
bench gate both assert this.

With ``stream_dir`` set, each finished shard's payload is pickled to
disk and dropped from memory; the merge phase streams the shard files
back in order.  Peak memory is then one shard, not the corpus — the
point of sharding a 1,500+ kernel sweep.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .build import DatasetBuildStats, measure_suite
from .cache import MeasurementCache
from .faultinject import FaultPlan
from .resilience import FailureReport, RetryPolicy

__all__ = ["CorpusResult", "measure_corpus", "partition_names"]


@dataclass
class CorpusResult:
    """One ``measure_corpus`` invocation: merged payloads + per-shard
    scheduling stats."""

    samples: list
    failures: list
    report: FailureReport
    shards: int
    shard_stats: list[DatasetBuildStats] = field(default_factory=list)

    @property
    def quarantined_names(self) -> list[str]:
        return self.report.names()


def partition_names(names: Sequence[str], shards: int) -> list[list[str]]:
    """Contiguous near-even blocks, preserving input order.

    Contiguity (rather than striding) is what lets the merge phase
    stream shard payloads back in order: shard k's outputs are exactly
    positions ``[lo_k, hi_k)`` of the serial sweep.
    """
    names = list(names)
    shards = max(1, min(int(shards), max(1, len(names))))
    base, extra = divmod(len(names), shards)
    blocks, lo = [], 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        blocks.append(names[lo:hi])
        lo = hi
    return [b for b in blocks if b]


def _corpus_digest(names: Sequence[str]) -> str:
    return hashlib.sha256("\0".join(names).encode()).hexdigest()[:12]


def _merge_report(into: FailureReport, part: FailureReport) -> None:
    into.quarantined.extend(part.quarantined)
    into.retries += part.retries
    into.pool_rebuilds += part.pool_rebuilds
    into.degraded_to_serial = into.degraded_to_serial or part.degraded_to_serial


def measure_corpus(
    names: Sequence[str],
    spec,
    *,
    shards: int = 1,
    workers: Optional[int] = None,
    cache: Optional[MeasurementCache] = None,
    prepass: Optional[bool] = None,
    timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    supervise: bool = True,
    faults: Union[FaultPlan, str, None] = None,
    stream_dir: Optional[str] = None,
    checkpoint_dir=None,
    resume: Optional[bool] = None,
) -> CorpusResult:
    """Sweep ``names`` (suite and/or generated kernels) for ``spec``.

    Every name must resolve through :func:`repro.tsvc.get_kernel` —
    suite names directly, generated ``gx…`` names via the corpus
    generator.  Shards always run with ``partial=True`` semantics:
    quarantines are collected into the merged :class:`FailureReport`
    rather than aborting remaining shards.
    """
    from ..tsvc import get_kernel

    names = list(names)
    blocks = partition_names(names, shards)
    digest = _corpus_digest(names)
    report = FailureReport()
    shard_stats: list[DatasetBuildStats] = []
    all_samples: list = []
    all_failures: list = []
    shard_files: list[str] = []
    if stream_dir:
        os.makedirs(stream_dir, exist_ok=True)

    for k, block in enumerate(blocks):
        kernels = [get_kernel(n) for n in block]
        stats = DatasetBuildStats()
        samples, failures, part = measure_suite(
            spec,
            workers=workers,
            cache=cache,
            prepass=prepass,
            timeout=timeout,
            max_attempts=max_attempts,
            retry=retry,
            partial=True,
            resume=resume,
            checkpoint_dir=checkpoint_dir,
            supervise=supervise,
            faults=faults,
            stats=stats,
            kernels=kernels,
            journal_tag=f"corpus:{digest}:{k + 1}/{len(blocks)}",
        )
        shard_stats.append(stats)
        _merge_report(report, part)
        if stream_dir:
            path = os.path.join(
                stream_dir, f"shard-{k:04d}-of-{len(blocks):04d}.pkl"
            )
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "wb") as fh:
                pickle.dump((samples, failures), fh)
            os.replace(tmp, path)
            shard_files.append(path)
            del samples, failures, kernels  # peak memory = one shard
        else:
            all_samples.extend(samples)
            all_failures.extend(failures)

    if stream_dir:
        # Stream the shard payloads back in corpus order; contiguity of
        # the blocks makes this concatenation the serial-sweep order.
        for path in shard_files:
            with open(path, "rb") as fh:
                samples, failures = pickle.load(fh)
            all_samples.extend(samples)
            all_failures.extend(failures)

    return CorpusResult(
        samples=all_samples,
        failures=all_failures,
        report=report,
        shards=len(blocks),
        shard_stats=shard_stats,
    )
