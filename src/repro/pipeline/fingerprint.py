"""Content fingerprints for persistent measurement-cache entries.

A cache entry is valid only while *everything* that shaped the
measurement is unchanged: the kernel's IR, the target, the vectorizer,
the jitter/seed pair, and the measurement code itself.  The fingerprint
folds all of those into one SHA-256 digest, so any drift — a retuned
timing table, an edited kernel, a different noise seed — lands in a
different cache slot instead of resurrecting a stale number.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from ..ir.kernel import LoopKernel
from ..ir.printer import kernel_to_source

#: Bump when the cache entry layout (not the measurement semantics)
#: changes; semantic drift is covered by :func:`code_digest`.
PIPELINE_SCHEMA_VERSION = 1

_CODE_DIGEST: str | None = None


def code_digest() -> str:
    """Digest of every ``repro`` source file, computed once per process.

    Measurement semantics live in code (timing tables, lowering rules,
    the functional executor), not in any versioned artifact — hashing
    the package source is the only invalidation signal that cannot go
    stale.  ~150 files hash in a few milliseconds.
    """
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        pkg_root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _CODE_DIGEST = h.hexdigest()
    return _CODE_DIGEST


def measurement_fingerprint(
    kernel: LoopKernel,
    target_name: str,
    vectorizer: str,
    jitter: float,
    seed: int,
) -> str:
    """Stable hex key for one (kernel, target, vectorizer, noise) cell.

    The kernel enters through its printed IR (arrays, dtypes, trip
    counts, body) *and* its name: the body because it decides the
    measurement, the name because the jitter RNG is seeded from
    ``crc32(kernel.name)`` in :mod:`repro.sim.measure`.
    """
    text = "\n".join(
        [
            f"schema={PIPELINE_SCHEMA_VERSION}",
            f"code={code_digest()}",
            f"target={target_name}",
            f"vectorizer={vectorizer}",
            f"jitter={float(jitter)!r}",
            f"seed={int(seed)}",
            f"kernel-name={kernel.name}",
            kernel_to_source(kernel),
        ]
    )
    return hashlib.sha256(text.encode()).hexdigest()
