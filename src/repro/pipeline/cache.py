"""Persistent, content-addressed measurement cache.

One entry per (kernel, target, vectorizer, jitter, seed) cell, keyed
by :func:`~repro.pipeline.fingerprint.measurement_fingerprint` and
stored as a pickle under ``<root>/<fp[:2]>/<fp>.pkl``.  The cache is
strictly an accelerator: a corrupt, truncated, or mismatched entry is
deleted and recomputed, never raised, so deleting files (or the whole
directory) at any time is always safe.

Configuration:

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro-vec``,
  honoring ``XDG_CACHE_HOME``);
* ``REPRO_CACHE=off`` (or ``0``/``false``/``no``) — bypass entirely:
  no reads, no writes, no stat counting.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .fingerprint import PIPELINE_SCHEMA_VERSION

#: Sentinel returned by :meth:`MeasurementCache.get` on a miss —
#: distinguishes "not cached" from a legitimately-``None`` payload.
MISS = object()

_OFF_VALUES = {"off", "0", "false", "no"}


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    base = Path(os.environ.get("XDG_CACHE_HOME") or "~/.cache").expanduser()
    return base / "repro-vec"


def cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "").strip().lower() not in _OFF_VALUES


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    write_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
        }

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.corrupt} corrupt, "
            f"{self.write_errors} write errors"
        )


@dataclass
class MeasurementCache:
    """On-disk cache of per-kernel measurement results."""

    root: Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- paths ---------------------------------------------------------------

    def _path(self, fp: str) -> Path:
        return self.root / fp[:2] / f"{fp}.pkl"

    # -- operations ----------------------------------------------------------

    def get(self, fp: str):
        """Payload for ``fp``, or the :data:`MISS` sentinel.

        Any load problem — unreadable file, truncated pickle, schema or
        fingerprint mismatch — deletes the entry and reports a miss.
        """
        if not self.enabled:
            return MISS
        path = self._path(fp)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != PIPELINE_SCHEMA_VERSION
                or entry.get("fingerprint") != fp
            ):
                raise ValueError("cache entry does not match its key")
            payload = entry["payload"]
        except OSError:
            # Missing entry or unreachable cache dir: a plain miss, not
            # a corrupt entry.
            self.stats.misses += 1
            return MISS
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.stats.hits += 1
        return payload

    def put(self, fp: str, payload) -> None:
        """Store ``payload`` atomically (unique tmp file + rename).

        A failed write — unwritable directory, full disk, a rename
        that loses a race with a permission change — degrades to a
        cold build and counts in ``stats.write_errors``; the temp file
        is unlinked on every failure path so no orphan accumulates.
        """
        if not self.enabled:
            return
        path = self._path(fp)
        entry = {
            "schema": PIPELINE_SCHEMA_VERSION,
            "fingerprint": fp,
            "payload": payload,
        }
        tmp_name: Optional[str] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tempfile.NamedTemporaryFile(
                mode="wb",
                dir=path.parent,
                prefix=f".{path.name}.",
                suffix=".tmp",
                delete=False,
            ) as f:
                tmp_name = f.name
                pickle.dump(entry, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
            tmp_name = None  # renamed away: nothing to clean up
        except OSError:
            self.stats.write_errors += 1
            return
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))


_DEFAULT: Optional[MeasurementCache] = None


def default_cache() -> MeasurementCache:
    """Process-wide cache honoring the ``REPRO_CACHE*`` environment."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MeasurementCache(
            root=default_cache_dir(), enabled=cache_enabled_by_env()
        )
    return _DEFAULT


def set_default_cache(cache: Optional[MeasurementCache]) -> None:
    """Override (or with ``None``, reset) the process-wide cache."""
    global _DEFAULT
    _DEFAULT = cache
