"""Supervised execution for the measurement sweep.

The raw ``ProcessPoolExecutor`` path treats any worker problem as
fatal: one crash raises ``BrokenProcessPool`` and throws away the
whole 151-kernel sweep, and a hang blocks it forever.  This module
wraps the pool in a supervisor that treats per-kernel failure as data:

* **deadlines** — each in-flight kernel gets ``timeout`` seconds; an
  overdue worker is killed and the kernel retried on a fresh pool;
* **retries** — failures back off exponentially (with deterministic
  per-kernel jitter) under a :class:`RetryPolicy`, and a retry is a
  *new attempt*: the fault-injection schedule draws again, so
  transient faults drain;
* **crash isolation** — ``BrokenProcessPool`` rebuilds the pool and
  requeues the victims; with an active fault plan the deterministic
  schedule identifies the culprit so innocent bystanders retry for
  free;
* **quarantine** — a kernel that exhausts its attempts is recorded in
  a structured :class:`FailureReport` (attempts, wall time, the whole
  exception chain) and the sweep continues;
* **checkpointing** — every completed payload streams into a
  :class:`CheckpointJournal` so an interrupted sweep resumes from the
  last completed kernel, surviving torn tail records;
* **degradation** — if the pool cannot be (re)built the supervisor
  drops to the serial in-process path and says so through the
  PR-2 diagnostics engine (``[-Rpass-missed=measurement-pipeline]``).

Because the per-kernel measurement is deterministic (noise seeded from
``crc32(kernel.name)``), none of this machinery can change a value:
once retries drain, a faulted sweep is bit-identical to a clean one —
the property ``tests/test_resilience.py`` and the CI chaos job pin.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..analysis.framework.diagnostics import Diagnostics
from . import faultinject
from .faultinject import FaultPlan

#: Pass name the supervisor emits remarks under.
PASS_NAME = "measurement-pipeline"

#: Pseudo-kernel location for sweep-wide remarks.
SUITE_LOC = "<suite>"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delay(name, attempt)`` is the pause before attempt ``attempt+1``
    of kernel ``name``: ``base_delay * 2**attempt`` capped at ``cap``,
    scaled by a ±25 % jitter hashed from the kernel name and attempt —
    reproducible, but de-synchronized across kernels so a retry
    stampede cannot re-align on a struggling worker pool.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.cap < 0:
            raise ValueError("base_delay and cap must be non-negative")

    def delay(self, name: str, attempt: int) -> float:
        if self.base_delay <= 0:
            return 0.0
        raw = min(self.base_delay * (2.0**attempt), self.cap)
        digest = hashlib.sha256(f"retry:{name}:{attempt}".encode()).digest()
        jitter = 0.75 + 0.5 * (digest[0] / 255.0)  # in [0.75, 1.25]
        return raw * jitter


@dataclass(frozen=True)
class KernelFailure:
    """One quarantined kernel: what was tried and how it died."""

    name: str
    attempts: int
    wall_time_s: float
    error_chain: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "attempts": self.attempts,
            "wall_time_s": round(self.wall_time_s, 4),
            "error_chain": list(self.error_chain),
        }


@dataclass
class FailureReport:
    """Structured record of everything the sweep survived.

    ``quarantined`` is the terminal list — kernels that exhausted their
    retry budget; ``retries``/``pool_rebuilds``/``degraded_to_serial``
    count the incidents the supervisor absorbed on the way.
    """

    quarantined: list[KernelFailure] = field(default_factory=list)
    retries: int = 0
    pool_rebuilds: int = 0
    degraded_to_serial: bool = False

    def __len__(self) -> int:
        return len(self.quarantined)

    def __bool__(self) -> bool:
        return bool(self.quarantined)

    def names(self) -> list[str]:
        return [f.name for f in self.quarantined]

    def summary(self) -> str:
        if not self.quarantined:
            return "no kernels quarantined"
        parts = [
            f"{f.name} ({f.attempts} attempts: {f.error_chain[-1]})"
            for f in self.quarantined
        ]
        return f"{len(self.quarantined)} quarantined — " + "; ".join(parts)

    def as_dict(self) -> dict:
        return {
            "quarantined": [f.as_dict() for f in self.quarantined],
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_to_serial": self.degraded_to_serial,
        }


class SweepError(RuntimeError):
    """Raised by a non-``partial`` sweep when kernels were quarantined."""

    def __init__(self, report: FailureReport):
        self.report = report
        super().__init__(
            "measurement sweep failed: " + report.summary()
            + " (pass partial=True to keep the surviving samples)"
        )


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------

_DIAG = Diagnostics()


def pipeline_diagnostics() -> Diagnostics:
    """The engine supervision remarks are emitted into (process-wide)."""
    return _DIAG


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------


def default_checkpoint_dir() -> Path:
    env = os.environ.get("REPRO_CHECKPOINT_DIR")
    if env:
        return Path(env).expanduser()
    from .cache import default_cache_dir

    return default_cache_dir() / "checkpoints"


def journal_key(*parts) -> str:
    """Stable short key naming one sweep's journal file."""
    text = "\0".join(str(p) for p in parts)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


#: Bump when the journal record layout changes.  A journal stamped
#: with a different schema is *skipped with a remark* on ``--resume``
#: (the sweep re-measures) — never misread, never a crash.
JOURNAL_SCHEMA = 1


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry so creates/renames survive power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class CheckpointJournal:
    """Append-only stream of completed payloads for one sweep.

    The first record is a schema header ``{"journal_schema": N}``;
    the rest are consecutive pickles ``{"fingerprint", "name",
    "payload"}``.  A torn tail (the process died mid-write) is
    detected on load and trimmed by rewriting the good prefix through
    a tmp file + ``os.replace`` + directory fsync — a crash during the
    trim itself leaves either the old or the new file, both loadable.
    Appends fsync the file, so an acknowledged checkpoint survives
    power loss.  The file is deleted once the sweep completes with
    nothing missing.
    """

    def __init__(self, path: Path):
        self.path = Path(path)

    @classmethod
    def for_sweep(cls, directory, key: str) -> "CheckpointJournal":
        return cls(Path(directory) / f"sweep-{key}.journal")

    def load(self, valid: Optional[set] = None) -> dict[str, object]:
        """Payloads by fingerprint; trims any torn tail atomically.

        ``valid`` (when given) drops records whose fingerprint is not
        in the set — stale entries from an earlier code state.  A
        journal whose header names a foreign schema version is skipped
        wholesale with a ``-Rpass-missed`` remark; a headerless
        journal (pre-versioning) still loads.
        """
        entries: dict[str, object] = {}
        if not self.path.exists():
            return entries
        good_end = 0
        first = True
        try:
            with open(self.path, "rb") as f:
                while True:
                    try:
                        record = pickle.load(f)
                    except EOFError:
                        break
                    except Exception:
                        break  # torn or garbled tail: keep the prefix
                    if first:
                        first = False
                        if (
                            isinstance(record, dict)
                            and "journal_schema" in record
                            and "payload" not in record
                        ):
                            schema = record["journal_schema"]
                            if schema != JOURNAL_SCHEMA:
                                _DIAG.warning(
                                    PASS_NAME,
                                    SUITE_LOC,
                                    f"checkpoint journal {self.path.name} "
                                    f"uses schema {schema!r} (this build "
                                    f"writes {JOURNAL_SCHEMA}); ignoring it "
                                    "and re-measuring",
                                    args=(("schema", schema),),
                                )
                                return {}
                            good_end = f.tell()
                            continue
                    try:
                        fp = record["fingerprint"]
                        payload = record["payload"]
                    except Exception:
                        break  # garbled record: keep the prefix
                    good_end = f.tell()
                    if valid is None or fp in valid:
                        entries[fp] = payload
        except OSError:
            return {}
        self._trim(good_end)
        return entries

    def _trim(self, good_end: int) -> None:
        """Drop everything past ``good_end`` via tmp + ``os.replace``."""
        try:
            if good_end >= self.path.stat().st_size:
                return
            with open(self.path, "rb") as f:
                prefix = f.read(good_end)
            tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
            with open(tmp, "wb") as f:
                f.write(prefix)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(self.path.parent)
        except OSError:
            pass

    def append(self, fingerprint: str, name: str, payload) -> None:
        record = {"fingerprint": fingerprint, "name": name, "payload": payload}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            with open(self.path, "ab") as f:
                if fresh:
                    pickle.dump(
                        {"journal_schema": JOURNAL_SCHEMA},
                        f,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                pickle.dump(record, f, protocol=pickle.HIGHEST_PROTOCOL)
                f.flush()
                os.fsync(f.fileno())
            if fresh:
                _fsync_dir(self.path.parent)
        except OSError:
            pass  # an unwritable journal degrades to no checkpointing

    def discard(self) -> None:
        try:
            self.path.unlink()
            _fsync_dir(self.path.parent)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


def _describe(exc: BaseException) -> str:
    """One line per link of the exception chain, innermost last."""
    chain: list[str] = []
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        chain.append(f"{type(exc).__name__}: {exc}")
        exc = exc.__cause__ or exc.__context__
    return " <- ".join(chain)


def run_supervised(
    tasks: dict[str, tuple],
    worker: Callable[[tuple], tuple[str, object]],
    *,
    workers: int,
    policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    plan: Optional[FaultPlan] = None,
    on_complete: Callable[[str, object], None],
) -> FailureReport:
    """Run every task to completion or quarantine; never raise for one.

    ``tasks`` maps kernel name → the measurement args; ``worker`` is a
    picklable function taking ``(args, attempt, plan)`` and returning
    ``(name, payload)``.  ``on_complete`` fires in the supervisor as
    each payload lands (cache write, journal append).  Returns the
    :class:`FailureReport`; completed names are exactly
    ``set(tasks) - set(report.names())``.
    """
    policy = policy or RetryPolicy()
    report = FailureReport()
    clock = time.monotonic
    #: (name, attempt, not_before) — attempt is 0-based.
    queue: deque[tuple[str, int, float]] = deque(
        (name, 0, 0.0) for name in tasks
    )
    errors: dict[str, list[str]] = {}
    started: dict[str, float] = {}

    def fail(name: str, attempt: int, message: str) -> None:
        errors.setdefault(name, []).append(message)
        nxt = attempt + 1
        if nxt >= policy.max_attempts:
            wall = clock() - started.get(name, clock())
            report.quarantined.append(
                KernelFailure(name, nxt, wall, tuple(errors[name]))
            )
            _DIAG.warning(
                PASS_NAME,
                name,
                f"kernel quarantined after {nxt} attempts: "
                f"{errors[name][-1]}",
                args=(("attempts", nxt),),
            )
        else:
            report.retries += 1
            queue.append((name, nxt, clock() + policy.delay(name, attempt)))

    def run_serial() -> None:
        """In-process fallback: retries and quarantine, no deadlines."""
        while queue:
            name, attempt, not_before = queue.popleft()
            pause = not_before - clock()
            if pause > 0:
                time.sleep(pause)
            started.setdefault(name, clock())
            try:
                _, payload = worker((tasks[name], attempt, plan))
            except Exception as exc:
                fail(name, attempt, _describe(exc))
                continue
            on_complete(name, payload)

    if workers <= 1 or len(tasks) <= 1:
        run_serial()
        return report

    pool: Optional[ProcessPoolExecutor] = None
    #: future -> (name, attempt, dispatch time)
    inflight: dict = {}

    def kill_pool() -> None:
        nonlocal pool
        if pool is None:
            return
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        # wait=True: the workers are dead (or dying), so the management
        # thread exits promptly — joining it here keeps the interpreter's
        # exit handlers from tripping over a half-torn-down executor.
        pool.shutdown(wait=True, cancel_futures=True)
        pool = None

    def pop_ready(now: float):
        for i, (name, attempt, not_before) in enumerate(queue):
            if not_before <= now:
                entry = queue[i]
                del queue[i]
                return entry
        return None

    def degrade(reason: str) -> None:
        report.degraded_to_serial = True
        _DIAG.warning(
            PASS_NAME,
            SUITE_LOC,
            f"process pool unavailable ({reason}); "
            "degrading to serial measurement",
        )

    while queue or inflight:
        now = clock()
        if pool is None:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=faultinject.mark_worker,
                )
            except (OSError, PermissionError, ImportError) as exc:
                degrade(_describe(exc))
                run_serial()
                return report

        # Fill to capacity — never more in flight than workers, so a
        # dispatch timestamp approximates an execution start time and
        # the per-kernel deadline measures the worker, not the queue.
        submit_broke = False
        while len(inflight) < workers:
            entry = pop_ready(now)
            if entry is None:
                break
            name, attempt, _ = entry
            started.setdefault(name, now)
            try:
                fut = pool.submit(worker, (tasks[name], attempt, plan))
            except Exception:  # pool broke between waits
                queue.appendleft((name, attempt, now))
                submit_broke = True
                break
            inflight[fut] = (name, attempt, clock())

        if submit_broke:
            report.pool_rebuilds += 1
            kill_pool()
            continue

        if not inflight:
            # Everything runnable is backing off; sleep to the nearest.
            wake = min(nb for _, _, nb in queue)
            time.sleep(max(0.0, min(wake - clock(), 0.25)))
            continue

        tick = 0.1
        if timeout is not None:
            oldest = min(t0 for _, _, t0 in inflight.values())
            tick = min(tick, max(0.005, oldest + timeout - now))
        done, _ = wait(
            set(inflight), timeout=tick, return_when=FIRST_COMPLETED
        )

        crashed: list[tuple[str, int]] = []
        for fut in done:
            name, attempt, _ = inflight.pop(fut)
            try:
                _, payload = fut.result()
            except BrokenProcessPool:
                crashed.append((name, attempt))
                continue
            except Exception as exc:
                fail(name, attempt, _describe(exc))
                continue
            on_complete(name, payload)

        if crashed:
            # The executor is dead; every remaining in-flight future is
            # doomed too.  With a fault plan active the deterministic
            # schedule identifies the culprit(s); bystanders requeue
            # without burning an attempt.  Without a plan we cannot
            # know who crashed, so everyone is charged (real crashes
            # repeat on the same kernel, so the culprit still drains
            # to quarantine instead of looping forever).
            for fut, (name, attempt, _) in list(inflight.items()):
                crashed.append((name, attempt))
                del inflight[fut]
            report.pool_rebuilds += 1
            kill_pool()
            for name, attempt in crashed:
                if plan is not None and not plan.decide(
                    "crash", name, attempt
                ):
                    queue.append((name, attempt, clock()))
                else:
                    fail(name, attempt, "worker process crashed")
            continue

        if timeout is not None:
            now = clock()
            overdue = [
                fut
                for fut, (_, _, t0) in inflight.items()
                if now - t0 > timeout
            ]
            if overdue:
                # Kill the pool (the hung worker ignores cancellation);
                # overdue kernels are charged an attempt, the rest ride
                # along for free on the fresh pool.
                for fut, (name, attempt, t0) in list(inflight.items()):
                    del inflight[fut]
                    if now - t0 > timeout:
                        fail(
                            name,
                            attempt,
                            f"TimeoutError: no result within {timeout:.3g}s",
                        )
                    else:
                        queue.append((name, attempt, now))
                report.pool_rebuilds += 1
                kill_pool()

    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    return report
