"""Deterministic fault injection for the measurement pipeline.

The chaos half of the resilience story: a :class:`FaultPlan` decides —
from a seeded hash, never a live RNG — whether a given (kernel,
attempt) cell suffers a worker crash, a hang, a transient exception,
or a corrupted cache write.  Determinism is the point: a fault either
fires or it doesn't for a given seed, so chaos tests can assert that
retries drain every injected failure and the surviving samples are
*bit-identical* to a fault-free sweep.

Configuration mirrors the rest of the pipeline:

* ``REPRO_FAULTS=crash:0.1,hang:0.05,corrupt_cache:0.1,flaky_exc:0.1``
  — per-fault firing rates in ``[0, 1]``;
* ``REPRO_FAULTS_SEED`` — plan seed (default 0);
* ``REPRO_FAULTS_HANG_S`` — how long an injected hang sleeps
  (default 30 s; set well above the supervisor's ``--timeout``).

Faults that need a sacrificial process (``crash`` hard-exits, ``hang``
sleeps) only fire inside pool workers (:func:`mark_worker` is the pool
initializer); in-process they degrade to a retryable
:class:`InjectedCrash` / no-op so a serial sweep can never kill or
stall the interpreter that supervises it.

``python -m repro.pipeline.faultinject --faults crash:0.05,flaky_exc:0.1``
runs the chaos self-check CI uses: a clean serial sweep and a faulted
supervised sweep, asserting zero quarantined kernels and bit-identical
samples.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import MeasurementCache

#: Fault kinds a plan may carry; anything else in ``REPRO_FAULTS`` is
#: a configuration error, not a silently-ignored typo.
FAULT_KINDS = ("crash", "hang", "corrupt_cache", "flaky_exc")

#: Request-scoped fault kinds for the advisor service (PR 8): a handler
#: that sleeps past its deadline, a worker thread that dies mid-request,
#: a registry entry whose bytes rot on disk, and a toolchain that
#: disappears mid-flight.  Scheduled by the same
#: ``sha256(seed:kind:request:attempt)`` draw as the sweep faults, so a
#: service chaos run is exactly reproducible.  ``repro.serve`` applies
#: them; ``REPRO_SERVE_FAULTS`` configures them.
SERVE_FAULT_KINDS = (
    "slow_handler",
    "worker_crash",
    "corrupt_registry",
    "toolchain_loss",
)

#: Every kind any plan may carry.
ALL_FAULT_KINDS = FAULT_KINDS + SERVE_FAULT_KINDS

#: Exit code an injected crash dies with — distinguishable from a real
#: segfault's negative signal status in worker post-mortems.
CRASH_EXIT_CODE = 113


class InjectedFault(RuntimeError):
    """A transient, injected failure; retrying must make it go away."""


class InjectedCrash(InjectedFault):
    """In-process stand-in for a worker crash (serial sweeps only)."""


class InjectedWorkerCrash(InjectedFault):
    """A service worker thread dying mid-request (see ``repro.serve``).

    Unlike :class:`InjectedCrash` this never kills a process: threads
    share the interpreter, so the service supervisor converts it into a
    retryable rejection and replaces the worker.
    """


_IN_WORKER = False


def mark_worker() -> None:
    """Pool-worker initializer: allow process-killing faults here."""
    global _IN_WORKER
    _IN_WORKER = True


@dataclass(frozen=True)
class FaultPlan:
    """Seeded per-(kernel, attempt) fault schedule.

    ``decide`` draws a uniform in ``[0, 1)`` from
    ``sha256(seed:kind:kernel:attempt)`` — the same cell always gives
    the same verdict, and a retry (``attempt + 1``) gets a fresh,
    independent draw, so any fault with rate < 1 drains under retries.
    """

    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if kind not in ALL_FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{', '.join(ALL_FAULT_KINDS)}"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"fault rate for {kind!r} must be in [0, 1], got {rate!r}"
                )

    def rate(self, kind: str) -> float:
        return float(self.rates.get(kind, 0.0))

    def decide(self, kind: str, kernel: str, attempt: int) -> bool:
        """Does ``kind`` fire for this (kernel, attempt) cell?"""
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        text = f"{self.seed}:{kind}:{kernel}:{attempt}"
        digest = hashlib.sha256(text.encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < rate

    def spec(self) -> str:
        """The ``REPRO_FAULTS``-style string this plan round-trips to."""
        return ",".join(f"{k}:{self.rates[k]:g}" for k in sorted(self.rates))


def parse_faults(
    spec: str, *, seed: int = 0, hang_seconds: float = 30.0
) -> Optional[FaultPlan]:
    """Parse ``"crash:0.1,hang:0.05"`` into a :class:`FaultPlan`.

    An empty/whitespace spec means "no faults" (``None``); malformed
    entries raise ``ValueError`` naming the offending piece.
    """
    spec = (spec or "").strip()
    if not spec:
        return None
    rates: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, value = part.partition(":")
        if not sep:
            raise ValueError(
                f"malformed fault spec {part!r}: expected 'kind:rate'"
            )
        try:
            rates[kind.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"malformed fault rate in {part!r}: {value!r} is not a number"
            ) from None
    if not rates:
        return None
    return FaultPlan(rates=rates, seed=seed, hang_seconds=hang_seconds)


def plan_from_env() -> Optional[FaultPlan]:
    """The plan ``REPRO_FAULTS``/``REPRO_FAULTS_SEED`` describes, if any."""
    spec = os.environ.get("REPRO_FAULTS", "")
    if not spec.strip():
        return None
    seed = int(os.environ.get("REPRO_FAULTS_SEED", "0"))
    hang = float(os.environ.get("REPRO_FAULTS_HANG_S", "30"))
    return parse_faults(spec, seed=seed, hang_seconds=hang)


def serve_plan_from_env() -> Optional[FaultPlan]:
    """The request-scoped plan ``REPRO_SERVE_FAULTS`` describes, if any.

    Kept separate from :func:`plan_from_env` so a chaos run can fault
    the serving layer without also faulting the measurement sweeps it
    may trigger underneath (and vice versa).  ``REPRO_SERVE_FAULTS_SEED``
    seeds it; the hang duration doubles as the ``slow_handler`` sleep
    (``REPRO_SERVE_FAULTS_HANG_S``, default 30 s — set it above the
    service deadline so an injected slowdown is indistinguishable from
    a real hang).
    """
    spec = os.environ.get("REPRO_SERVE_FAULTS", "")
    if not spec.strip():
        return None
    seed = int(os.environ.get("REPRO_SERVE_FAULTS_SEED", "0"))
    hang = float(os.environ.get("REPRO_SERVE_FAULTS_HANG_S", "30"))
    return parse_faults(spec, seed=seed, hang_seconds=hang)


def perturb(plan: Optional[FaultPlan], kernel: str, attempt: int) -> None:
    """Fire any scheduled pre-measurement fault for this cell.

    Called at the top of ``_measure_named`` so the injected failure
    lands exactly where a real one would: inside the worker, before
    the payload exists.
    """
    if plan is None:
        return
    if plan.decide("crash", kernel, attempt):
        if _IN_WORKER:
            os._exit(CRASH_EXIT_CODE)  # simulate a segfault: no cleanup
        raise InjectedCrash(
            f"injected crash in {kernel} (attempt {attempt})"
        )
    if plan.decide("hang", kernel, attempt) and _IN_WORKER:
        time.sleep(plan.hang_seconds)
    if plan.decide("flaky_exc", kernel, attempt):
        raise InjectedFault(
            f"injected transient failure in {kernel} (attempt {attempt})"
        )


def maybe_corrupt_cache(
    plan: Optional[FaultPlan],
    cache: "MeasurementCache",
    fingerprint: str,
    kernel: str,
) -> None:
    """Truncate the just-written cache entry if the plan says so.

    Runs in the supervisor right after ``cache.put`` — the torn entry
    must be *detected and re-measured* by the next sweep, never served.
    """
    if plan is None or not plan.decide("corrupt_cache", kernel, 0):
        return
    path = cache._path(fingerprint)
    try:
        size = path.stat().st_size
        with open(path, "r+b") as f:
            f.truncate(max(1, size // 2))
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Chaos self-check CLI (the CI `chaos` job)
# ---------------------------------------------------------------------------


def _samples_equal(left, right) -> bool:
    import numpy as np

    if [s.name for s in left] != [s.name for s in right]:
        return False
    for a, b in zip(left, right):
        if (
            a.measured_speedup != b.measured_speedup
            or a.measured_scalar_cpi != b.measured_scalar_cpi
            or a.measured_vector_cpi != b.measured_vector_cpi
            or not np.array_equal(a.scalar_features, b.scalar_features)
            or not np.array_equal(a.vector_features, b.vector_features)
            or not np.array_equal(a.lowered_features, b.lowered_features)
        ):
            return False
    return True


def main(argv: Optional[list[str]] = None) -> int:
    """Chaos parity check: faulted sweep ≡ clean sweep, nothing lost."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline.faultinject",
        description="Prove a faulted sweep converges to the clean sweep.",
    )
    parser.add_argument(
        "--faults",
        default="crash:0.05,flaky_exc:0.1",
        help="REPRO_FAULTS-style spec to inject (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-kernel deadline; defaults to 5s when hangs are injected",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=5, dest="max_attempts"
    )
    parser.add_argument(
        "--specs",
        default="both",
        choices=("arm", "x86", "both"),
        help="which dataset specs to sweep (default: both)",
    )
    parser.add_argument(
        "--corpus",
        type=int,
        default=0,
        metavar="N",
        help="also chaos-test a generated corpus of N kernels (suite + "
        "synthetic) through the sharded sweep (default: suite only)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=3,
        help="shard count for the faulted --corpus sweep (default: 3)",
    )
    parser.add_argument(
        "--gen-seed",
        type=int,
        default=0,
        dest="gen_seed",
        help="generator seed for the --corpus kernels (default: 0)",
    )
    args = parser.parse_args(argv)

    # Imported lazily: build imports resilience imports this module.
    from ..experiments.dataset import ARM_LLV, X86_SLP
    from .build import measure_suite
    from .cache import MeasurementCache
    from .resilience import RetryPolicy

    plan = parse_faults(args.faults, seed=args.seed, hang_seconds=6.0)
    timeout = args.timeout
    if timeout is None and plan is not None and plan.rate("hang") > 0:
        timeout = 5.0
    policy = RetryPolicy(max_attempts=args.max_attempts, base_delay=0.01)
    specs = {
        "arm": (ARM_LLV,),
        "x86": (X86_SLP,),
        "both": (ARM_LLV, X86_SLP),
    }[args.specs]

    no_cache = MeasurementCache(root="/nonexistent", enabled=False)
    failures = 0
    for spec in specs:
        clean, clean_fail = measure_suite(
            spec, workers=1, cache=no_cache, supervise=False
        )
        chaotic, chaos_fail, report = measure_suite(
            spec,
            workers=args.workers,
            cache=no_cache,
            timeout=timeout,
            retry=policy,
            faults=plan,
            partial=True,
        )
        parity = _samples_equal(clean, chaotic) and clean_fail == chaos_fail
        ok = parity and not report.quarantined
        print(
            f"[chaos] {spec.label}: {len(chaotic)} samples, "
            f"{len(chaos_fail)} not vectorizable, "
            f"{len(report)} quarantined, "
            f"parity={'ok' if parity else 'MISMATCH'}"
        )
        if report.quarantined:
            print(report.summary())
        if not ok:
            failures += 1

        if args.corpus > 0:
            # The generated-corpus leg: a faulted *sharded* sweep over
            # suite + synthetic kernels must converge bit-identically
            # to a clean serial sweep of the same names.
            from ..experiments.corpus import corpus_kernel_names
            from .corpus import measure_corpus

            names = corpus_kernel_names(args.corpus, seed=args.gen_seed)
            clean_res = measure_corpus(
                names,
                spec,
                shards=1,
                workers=1,
                cache=no_cache,
                supervise=False,
            )
            chaos_res = measure_corpus(
                names,
                spec,
                shards=args.shards,
                workers=args.workers,
                cache=no_cache,
                timeout=timeout,
                retry=policy,
                faults=plan,
            )
            c_parity = (
                _samples_equal(clean_res.samples, chaos_res.samples)
                and clean_res.failures == chaos_res.failures
            )
            c_ok = c_parity and not chaos_res.quarantined_names
            print(
                f"[chaos] {spec.label} corpus({len(names)}, "
                f"{chaos_res.shards} shards): "
                f"{len(chaos_res.samples)} samples, "
                f"{len(chaos_res.failures)} not vectorizable, "
                f"{len(chaos_res.quarantined_names)} quarantined, "
                f"parity={'ok' if c_parity else 'MISMATCH'}"
            )
            if chaos_res.quarantined_names:
                print(chaos_res.report.summary())
            if not c_ok:
                failures += 1
    if failures:
        print(f"[chaos] FAILED for {failures} spec(s)")
        return 1
    print("[chaos] faulted sweeps converged to clean results")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    import sys

    sys.exit(main())
