"""The measurement sweep: suite × spec → samples, parallel and cached.

``measure_suite`` is the one hot path every experiment, bench, and
example funnels through.  It layers three accelerations over the naive
loop while keeping its results bit-identical:

1. **persistent cache** — each kernel's result is looked up by content
   fingerprint before any work is dispatched (see :mod:`.cache`);
2. **process parallelism** — cache misses are sharded across a
   ``ProcessPoolExecutor``; workers receive kernel *names* and rebuild
   from the registry, so nothing unpicklable crosses the boundary;
3. **determinism** — per-kernel measurement noise is seeded from
   ``crc32(kernel.name)`` independently of sweep order, so serial,
   parallel, and cached builds all produce the same floats.

Worker count resolution order: explicit argument > ``spec.workers`` >
``configure(workers=…)`` > ``REPRO_WORKERS`` env > ``os.cpu_count()``;
the resolved count is then capped at the number of pending (uncached)
kernels so no idle process is ever spawned.

Since PR 3 the parallel path runs under the supervisor in
:mod:`.resilience`: per-kernel deadlines, bounded retries, crash
isolation, quarantine, and checkpoint/resume.  ``supervise=False``
selects the raw, unsupervised executor (used by the perf smoke to
price the supervision layer).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from ..analysis.framework.diagnostics import Severity
from ..analysis.framework.lint import lint_kernel
from ..analysis.framework.passmanager import default_manager
from ..costmodel.base import Sample, sample_from_measurement
from ..ir.verify import VerificationError, verify_kernel
from ..sim.measure import measure_kernel
from ..targets.registry import get_target
from ..tsvc.suite import all_kernels, get_kernel
from ..vectorize.plan import VectorizationFailure
from . import faultinject
from .cache import MISS, MeasurementCache, default_cache
from .faultinject import FaultPlan
from .fingerprint import measurement_fingerprint
from .resilience import (
    CheckpointJournal,
    FailureReport,
    RetryPolicy,
    SweepError,
    default_checkpoint_dir,
    journal_key,
    run_supervised,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.dataset import DatasetSpec


@dataclass
class PipelineConfig:
    """Process-wide overrides, settable from the CLI (``--workers`` …)."""

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    cache_enabled: Optional[bool] = None
    timeout: Optional[float] = None
    max_attempts: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    resume: Optional[bool] = None


_CONFIG = PipelineConfig()


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    cache_enabled: Optional[bool] = None,
    timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: Optional[bool] = None,
) -> PipelineConfig:
    """Set process-wide pipeline defaults; ``None`` leaves a field alone."""
    from .cache import set_default_cache

    if workers is not None:
        _CONFIG.workers = workers
    if timeout is not None:
        _CONFIG.timeout = timeout
    if max_attempts is not None:
        _CONFIG.max_attempts = max_attempts
    if checkpoint_dir is not None:
        _CONFIG.checkpoint_dir = checkpoint_dir
    if resume is not None:
        _CONFIG.resume = resume
    if cache_dir is not None or cache_enabled is not None:
        if cache_dir is not None:
            _CONFIG.cache_dir = cache_dir
        if cache_enabled is not None:
            _CONFIG.cache_enabled = cache_enabled
        cache = default_cache()
        set_default_cache(
            MeasurementCache(
                root=_CONFIG.cache_dir or cache.root,
                enabled=(
                    _CONFIG.cache_enabled
                    if _CONFIG.cache_enabled is not None
                    else cache.enabled
                ),
            )
        )
    return _CONFIG


def resolve_workers(
    explicit: Optional[int] = None, *, pending: Optional[int] = None
) -> int:
    """Worker-count policy; always at least 1.

    A malformed ``REPRO_WORKERS`` (non-integer or <= 0) raises a
    ``ValueError`` naming the variable instead of surfacing as a
    confusing failure deep in the pool build.  ``pending`` (when
    given) caps the count at the number of kernels actually waiting,
    so a 64-worker request over 3 cache misses spawns 3 processes.
    """
    workers: Optional[int] = None
    for candidate in (explicit, _CONFIG.workers):
        if candidate is not None:
            workers = max(1, int(candidate))
            break
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None and env.strip():
            try:
                value = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                ) from None
            if value <= 0:
                raise ValueError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                )
            workers = value
        else:
            workers = os.cpu_count() or 1
    if pending is not None:
        workers = min(workers, max(1, pending))
    return workers


def resolve_timeout(explicit: Optional[float] = None) -> Optional[float]:
    """Per-kernel deadline: explicit > ``configure`` > ``REPRO_TIMEOUT``."""
    for candidate in (explicit, _CONFIG.timeout):
        if candidate is not None:
            return float(candidate) if candidate > 0 else None
    env = os.environ.get("REPRO_TIMEOUT")
    if env is not None and env.strip():
        try:
            value = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_TIMEOUT must be a number of seconds, got {env!r}"
            ) from None
        return value if value > 0 else None
    return None


# ---------------------------------------------------------------------------
# Cost-aware scheduling
# ---------------------------------------------------------------------------

#: Rough cost of spawning one pool worker (interpreter start + package
#: import + pickle round-trips), in the same abstract work units as
#: :func:`estimate_kernel_work` (~microseconds of serial time).
POOL_SPAWN_WORK = 250_000.0
#: Minimum work a pool chunk should carry to amortize per-task IPC.
CHUNK_MIN_WORK = 20_000.0


@dataclass
class DatasetBuildStats:
    """How one ``measure_suite`` sweep was actually scheduled.

    Filled in place when callers pass ``stats=`` — the BENCH artifact
    and dataset reports use it to distinguish a genuine parallel win
    from a deliberate, logged serial fallback.
    """

    total_kernels: int = 0
    cached: int = 0
    measured: int = 0
    strategy: str = "none"  # "pool" | "serial" | "none" (fully cached)
    workers: int = 1
    chunksize: int = 1
    estimated_work: float = 0.0
    reason: str = ""
    supervised: bool = True
    #: Executor-tier counts observed during this sweep (main process
    #: only — pool workers compile in their own address space):
    #: ``{"native": …, "vector": …, "scalar": …, "native_demoted": …,
    #: "demoted": …}``.  Empty when nothing was measured in-process.
    tiers: dict = field(default_factory=dict)
    #: Seconds spent building native ``.so`` artifacts during the sweep.
    compile_build_s: float = 0.0
    #: Kernels whose native artifacts were built by the batched
    #: pre-build (N kernels per ``cc`` invocation) before dispatch.
    native_prebuilt: int = 0


#: compile_summary keys folded into :attr:`DatasetBuildStats.tiers`
#: (summary key -> tier label).
_TIER_KEYS = {
    "kernels_native": "native",
    "kernels_vector": "vector",
    "kernels_scalar": "scalar",
    "kernels_native_demoted": "native_demoted",
    "kernels_demoted": "demoted",
    "kernels_refused": "interpreted",
}


def _tier_snapshot() -> dict:
    """Current process-wide compile-tier counters (plus build seconds)."""
    from ..sim.compile import compile_summary

    s = compile_summary()
    snap = {label: int(s.get(key, 0)) for key, label in _TIER_KEYS.items()}
    snap["native_build_s"] = float(s.get("native_build_s", 0.0))
    return snap


def _tier_delta(before: dict, after: dict) -> dict:
    delta = {k: after.get(k, 0) - before.get(k, 0) for k in after}
    delta["native_build_s"] = round(
        max(0.0, after.get("native_build_s", 0.0) - before.get("native_build_s", 0.0)),
        4,
    )
    return delta


@dataclass(frozen=True)
class ScheduleDecision:
    strategy: str  # "pool" | "serial"
    workers: int
    chunksize: int
    estimated_work: float
    reason: str


def estimate_kernel_work(kernel, *, sweep_points: int = 1) -> float:
    """Estimated cost of one cache-miss measurement, in ~µs of serial time.

    The analytic timing model is near-constant; the dominant variable
    cost is guard-probability estimation, which executes the kernel for
    up to ``GUARD_SAMPLE_ITERS`` inner iterations — through the kernel
    compiler when enabled, through the tree-walking interpreter when
    ``REPRO_COMPILE=0``.

    ``sweep_points`` models a DSE-style plan sweep over the kernel:
    beyond the first (already-counted) measurement, each extra plan
    point pays a unroll/vectorize/lower/analyze pass but *not* another
    guard-probability run (that is memoized per kernel).  Without this
    term ``choose_strategy`` prices a 30-point sweep like a single
    measurement and keeps 1-CPU hosts on phantom pools — or multi-CPU
    hosts on serial loops — for DSE measurement batches.
    """
    from ..ir.stmt import IfBlock
    from ..sim.compile import compile_enabled
    from ..sim.measure import GUARD_SAMPLE_ITERS
    from ..sim.native import native_available

    stmts = max(1, sum(1 for _ in kernel.stmts()))
    work = 2000.0 + 50.0 * stmts
    if any(isinstance(s, IfBlock) for s in kernel.stmts()):
        inner = min(kernel.inner.trip, GUARD_SAMPLE_ITERS)
        outer = (
            1
            if kernel.depth == 1
            else min(kernel.loops[0].trip, max(1, GUARD_SAMPLE_ITERS // 4))
        )
        if compile_enabled() and native_available():
            # cc invocation + self-check dominate; the per-iteration
            # cost of a native run is near-free.  This moves the
            # serial/pool break-even: a mostly-guarded suite that
            # justified a pool on the NumPy tier often no longer does.
            # Batched pre-builds amortize the cc invocation over
            # ``native_batch_size()`` kernels, so a corpus-cold sweep
            # no longer looks serially cheap when a pool would win
            # (REPRO_NATIVE_BATCH=1 restores the per-kernel estimate).
            from ..sim.native import native_batch_size

            work += 3000.0 / native_batch_size() + 0.002 * stmts * inner * outer
        elif compile_enabled():
            # One-time compile + self-check, then a cheap compiled run.
            work += 5000.0 + 0.02 * stmts * inner * outer
        else:
            work += 2.0 * stmts * inner * outer
    if sweep_points > 1:
        work += (sweep_points - 1) * (400.0 + 30.0 * stmts)
    return work


def choose_strategy(
    work: list[float],
    workers: int,
    *,
    faults_active: bool = False,
    timeout: Optional[float] = None,
) -> ScheduleDecision:
    """Serial vs process pool, so the parallel path is never slower.

    A pool only pays off when the work it can take off the main process
    exceeds what spawning the workers costs — never true on a 1-CPU
    host, and rarely true for a compiled-executor sweep.  Two features
    force the pool regardless: an active fault plan (injected faults
    must land in real worker processes) and a per-kernel timeout (only
    a worker process can be killed mid-kernel).
    """
    total = float(sum(work))
    tasks = len(work)
    workers = min(workers, max(1, tasks))
    if faults_active or timeout is not None:
        reason = (
            "fault plan active" if faults_active else "per-kernel timeout set"
        )
        if workers > 1 and tasks > 1:
            return ScheduleDecision("pool", workers, 1, total, reason)
        return ScheduleDecision("serial", 1, 1, total, reason)
    if workers <= 1 or tasks <= 1:
        return ScheduleDecision("serial", 1, 1, total, "single worker or task")
    if (os.cpu_count() or 1) == 1:
        return ScheduleDecision("serial", 1, 1, total, "cpu_count is 1")
    # Pool wins iff spawn overhead < work taken off the main process.
    savings = total * (1.0 - 1.0 / workers)
    overhead = POOL_SPAWN_WORK * workers
    if overhead >= savings:
        return ScheduleDecision(
            "serial",
            1,
            1,
            total,
            f"estimated work {total:.0f} below pool overhead {overhead:.0f}",
        )
    mean = total / tasks
    chunk = max(
        tasks // (4 * workers),
        int(CHUNK_MIN_WORK / mean) if mean > 0 else 1,
        1,
    )
    chunk = min(chunk, max(1, tasks // workers))
    return ScheduleDecision(
        "pool", workers, chunk, total, "estimated work amortizes pool spawn"
    )


#: Kernels that already passed verify+lint, pinned by identity so the
#: check runs once per kernel object per process (warm rebuilds pay a
#: set lookup, nothing more).
_PREPASS_SEEN: dict[int, object] = {}


def static_prepass(kernels) -> None:
    """Verify + lint + range-check every kernel before measurement.

    Structural problems and lint *errors* are fatal — a malformed
    kernel must never reach the measurement cache.  When range proofs
    are live (``REPRO_RANGES`` != 0) a kernel the abstract interpreter
    classifies ``proven-unsafe`` — an unguarded access whose exact
    static index range leaves the wrap-legal window, so a full run
    must fault — is rejected here too, before any executor tier gets
    to segfault on it.  Results are memoized (per kernel object, with
    the framework's analysis results shared) so repeated sweeps over
    the cached suite stay cheap.
    """
    from ..analysis.framework.ranges import prove_safe, ranges_enabled

    am = default_manager()
    check_ranges = ranges_enabled()
    for kern in kernels:
        if _PREPASS_SEEN.get(id(kern)) is kern:
            continue
        verify_kernel(kern)
        errors = [
            r for r in lint_kernel(kern, am) if r.severity is Severity.ERROR
        ]
        if errors:
            raise VerificationError(
                "; ".join(r.message for r in errors), kern.name
            )
        if check_ranges:
            safety = prove_safe(kern, am)
            if safety.classification == "proven-unsafe":
                raise VerificationError(
                    "range analysis proves an out-of-bounds access: "
                    + "; ".join(safety.reasons),
                    kern.name,
                )
        _PREPASS_SEEN[id(kern)] = kern


#: What one kernel's sweep cell resolves to: the model-facing sample,
#: or the reason vectorization was refused.
Payload = tuple[Optional[Sample], Optional[str]]


def _measure_named(
    name: str,
    target_name: str,
    vectorizer: str,
    jitter: float,
    seed: int,
    attempt: int = 0,
    plan: Optional[FaultPlan] = None,
) -> Payload:
    """Measure one kernel looked up by name (process-pool entry point).

    ``attempt``/``plan`` feed the fault-injection harness: any
    scheduled crash/hang/transient fires here, before the measurement,
    exactly where a real worker failure would land.
    """
    faultinject.perturb(plan, name, attempt)
    result = measure_kernel(
        get_kernel(name),
        get_target(target_name),
        vectorizer=vectorizer,
        jitter=jitter,
        seed=seed,
    )
    if isinstance(result, VectorizationFailure):
        return None, result.reason
    return sample_from_measurement(result), None


def _worker(args: tuple) -> tuple[str, Payload]:
    name, target_name, vectorizer, jitter, seed = args
    return name, _measure_named(name, target_name, vectorizer, jitter, seed)


def _supervised_worker(task: tuple) -> tuple[str, Payload]:
    """Supervised-pool entry point: ``((args…), attempt, plan)``."""
    (name, target_name, vectorizer, jitter, seed), attempt, plan = task
    return name, _measure_named(
        name, target_name, vectorizer, jitter, seed, attempt, plan
    )


def measure_suite(
    spec: "DatasetSpec",
    *,
    workers: Optional[int] = None,
    cache: Optional[MeasurementCache] = None,
    prepass: Optional[bool] = None,
    timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    partial: bool = False,
    resume: Optional[bool] = None,
    checkpoint_dir=None,
    supervise: bool = True,
    faults: Union[FaultPlan, str, None] = None,
    stats: Optional[DatasetBuildStats] = None,
    kernels=None,
    journal_tag: str = "",
):
    """Sweep a kernel set (default: the whole TSVC suite) for one spec.

    Returns ``(samples, failures)`` in input order — independent of
    worker count, cache state, and any faults the supervisor absorbed.
    ``kernels`` overrides the sweep set (e.g. a generated-corpus shard);
    every kernel must be rebuildable by name through
    :func:`repro.tsvc.get_kernel`, because pool workers and checkpoint
    journals re-resolve kernels that way.  ``journal_tag`` namespaces
    the checkpoint journal (shards of one corpus must not share a
    journal file).  ``prepass`` controls the verify+lint gate
    run before the cache is consulted (default on; ``REPRO_PREPASS=0``
    disables it).

    Fault tolerance (see :mod:`.resilience`): each uncached kernel
    gets ``timeout`` seconds per attempt (``REPRO_TIMEOUT``) and up to
    ``max_attempts`` tries (or a full ``retry`` policy); a kernel that
    exhausts them is *quarantined*.  With ``partial=True`` the sweep
    returns ``(samples, failures, report)`` — the surviving payloads
    plus the structured :class:`FailureReport` — instead of raising
    :class:`SweepError`.  When a checkpoint directory is active
    (``checkpoint_dir`` / ``configure(checkpoint_dir=…)`` /
    ``REPRO_CHECKPOINT_DIR``), completed payloads stream into a
    journal and ``resume=True`` replays it, re-measuring only the
    kernels the interrupted sweep never finished.  ``faults`` injects
    deterministic chaos (a :class:`FaultPlan` or ``REPRO_FAULTS``-style
    string; default: the environment's plan).

    Scheduling is cost-aware: per-kernel work estimates decide between
    a serial sweep and a process pool (and its chunk size) so the
    parallel path is never slower than serial.  Pass a
    :class:`DatasetBuildStats` as ``stats`` to receive the decision.
    """
    get_target(spec.target)  # validate the spec before any work
    if cache is None:
        cache = default_cache()
    workers = resolve_workers(workers if workers is not None else spec.workers)
    timeout = resolve_timeout(timeout)
    if retry is None:
        if max_attempts is None:
            max_attempts = _CONFIG.max_attempts
        if max_attempts is None:
            env = os.environ.get("REPRO_MAX_ATTEMPTS")
            max_attempts = int(env) if env and env.strip() else 3
        retry = RetryPolicy(max_attempts=max_attempts)
    if isinstance(faults, str):
        faults = faultinject.parse_faults(faults)
    elif faults is None:
        faults = faultinject.plan_from_env()
    if resume is None:
        resume = bool(_CONFIG.resume)

    kernels = list(all_kernels()) if kernels is None else list(kernels)
    if prepass is None:
        prepass = os.environ.get("REPRO_PREPASS", "1") != "0"
    if prepass:
        static_prepass(kernels)
    results: dict[str, Payload] = {}
    pending: list[str] = []
    fingerprints: dict[str, str] = {}
    for kern in kernels:
        fp = measurement_fingerprint(
            kern, spec.target, spec.vectorizer, spec.jitter, spec.seed
        )
        fingerprints[kern.name] = fp
        payload = cache.get(fp)
        if payload is MISS:
            pending.append(kern.name)
        else:
            results[kern.name] = payload

    journal = _resolve_journal(spec, checkpoint_dir, tag=journal_tag)
    if journal is not None:
        if resume:
            restored = journal.load(valid=set(fingerprints.values()))
            by_fp = {fingerprints[n]: n for n in pending}
            for fp, payload in restored.items():
                name = by_fp.get(fp)
                if name is not None:
                    results[name] = payload
                    cache.put(fp, payload)
            pending = [n for n in pending if n not in results]
        else:
            journal.discard()  # a fresh sweep starts a fresh journal

    report = FailureReport()
    if stats is not None:
        stats.total_kernels = len(kernels)
        stats.cached = len(results)
        stats.measured = len(pending)
        stats.supervised = supervise
        stats.strategy, stats.workers, stats.chunksize = "none", 1, 1
        tiers_before = _tier_snapshot()
    if pending:
        workers = resolve_workers(workers, pending=len(pending))
        by_name = {k.name: k for k in kernels}
        prebuilt = _prebuild_pending(by_name, pending)
        if stats is not None:
            stats.native_prebuilt = prebuilt
        faults_active = faults is not None and any(
            float(r) > 0 for r in faults.rates.values()
        )
        decision = choose_strategy(
            [estimate_kernel_work(by_name[n]) for n in pending],
            workers,
            faults_active=faults_active,
            timeout=timeout,
        )
        workers = decision.workers
        if stats is not None:
            stats.strategy = decision.strategy
            stats.workers = decision.workers
            stats.chunksize = decision.chunksize
            stats.estimated_work = decision.estimated_work
            stats.reason = decision.reason

        def on_complete(name: str, payload: Payload) -> None:
            results[name] = payload
            cache.put(fingerprints[name], payload)
            faultinject.maybe_corrupt_cache(
                faults, cache, fingerprints[name], name
            )
            if journal is not None:
                journal.append(fingerprints[name], name, payload)

        if supervise:
            tasks = {
                name: (name, spec.target, spec.vectorizer, spec.jitter, spec.seed)
                for name in pending
            }
            report = run_supervised(
                tasks,
                _supervised_worker,
                workers=workers,
                policy=retry,
                timeout=timeout,
                plan=faults,
                on_complete=on_complete,
            )
        else:
            for name, payload in _run_pending(
                spec, pending, workers, decision.chunksize
            ):
                on_complete(name, payload)

    if stats is not None:
        delta = _tier_delta(tiers_before, _tier_snapshot())
        stats.compile_build_s = delta.pop("native_build_s", 0.0)
        stats.tiers = {k: v for k, v in delta.items() if v}

    if report.quarantined and not partial:
        raise SweepError(report)
    if journal is not None and not report.quarantined:
        journal.discard()  # complete: nothing left to resume

    samples: list[Sample] = []
    failures: list[tuple[str, str]] = []
    for kern in kernels:
        if kern.name not in results:  # quarantined
            continue
        sample, reason = results[kern.name]
        if sample is None:
            failures.append((kern.name, reason))
        else:
            samples.append(sample)
    if partial:
        return samples, failures, report
    return samples, failures


def _prebuild_pending(by_name: dict, pending: list) -> int:
    """Batch-build native artifacts for the pending guarded kernels.

    Guard-probability estimation is the only stage of a sweep that
    *executes* kernels, and it only runs for guarded ones — so those
    are the kernels whose native artifacts are worth warming.  Building
    them here, in the main process and ``native_batch_size()`` kernels
    per ``cc`` invocation, means pool workers (and the serial path)
    attach finished artifacts from the shared on-disk cache instead of
    each paying a one-kernel compile.  Returns the number of artifacts
    built now (0 when batching or the native tier is unavailable).
    """
    from ..ir.stmt import IfBlock
    from ..sim.compile import compile_enabled
    from ..sim.native import native_batch_size, prebuild_native

    if not compile_enabled() or native_batch_size() <= 1:
        return 0
    guarded = [
        by_name[n]
        for n in pending
        if any(isinstance(s, IfBlock) for s in by_name[n].stmts())
    ]
    if not guarded:
        return 0
    statuses = prebuild_native(guarded)
    return sum(
        1
        for v in statuses.values()
        if v in ("exact", "tolerance", "mismatch")
    )


def _resolve_journal(
    spec: "DatasetSpec", checkpoint_dir, tag: str = ""
) -> Optional[CheckpointJournal]:
    """The sweep's journal, or ``None`` when checkpointing is off."""
    directory = checkpoint_dir or _CONFIG.checkpoint_dir
    if directory is None and os.environ.get("REPRO_CHECKPOINT_DIR"):
        directory = default_checkpoint_dir()
    if directory is None:
        return None
    from .fingerprint import code_digest

    parts = [
        code_digest(), spec.target, spec.vectorizer, spec.jitter, spec.seed
    ]
    if tag:
        # Extra namespace for corpus shards; the untagged key is
        # unchanged so existing suite journals stay resumable.
        parts.append(tag)
    key = journal_key(*parts)
    return CheckpointJournal.for_sweep(directory, key)


def _run_pending(
    spec: "DatasetSpec", names: list[str], workers: int, chunksize: int = 1
):
    """Yield ``(name, payload)`` for every uncached kernel."""
    args = [
        (name, spec.target, spec.vectorizer, spec.jitter, spec.seed)
        for name in names
    ]
    if workers > 1 and len(names) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk = max(1, chunksize)
                yield from pool.map(_worker, args, chunksize=chunk)
            return
        except (OSError, PermissionError, ImportError):
            # Sandboxes that forbid multiprocessing primitives fall back
            # to the serial path rather than failing the build.
            pass
    for a in args:
        yield _worker(a)
