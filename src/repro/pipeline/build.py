"""The measurement sweep: suite × spec → samples, parallel and cached.

``measure_suite`` is the one hot path every experiment, bench, and
example funnels through.  It layers three accelerations over the naive
loop while keeping its results bit-identical:

1. **persistent cache** — each kernel's result is looked up by content
   fingerprint before any work is dispatched (see :mod:`.cache`);
2. **process parallelism** — cache misses are sharded across a
   ``ProcessPoolExecutor``; workers receive kernel *names* and rebuild
   from the registry, so nothing unpicklable crosses the boundary;
3. **determinism** — per-kernel measurement noise is seeded from
   ``crc32(kernel.name)`` independently of sweep order, so serial,
   parallel, and cached builds all produce the same floats.

Worker count resolution order: explicit argument > ``spec.workers`` >
``configure(workers=…)`` > ``REPRO_WORKERS`` env > ``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..analysis.framework.diagnostics import Severity
from ..analysis.framework.lint import lint_kernel
from ..analysis.framework.passmanager import default_manager
from ..costmodel.base import Sample, sample_from_measurement
from ..ir.verify import VerificationError, verify_kernel
from ..sim.measure import measure_kernel
from ..targets.registry import get_target
from ..tsvc.suite import all_kernels, get_kernel
from ..vectorize.plan import VectorizationFailure
from .cache import MISS, MeasurementCache, default_cache
from .fingerprint import measurement_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.dataset import DatasetSpec


@dataclass
class PipelineConfig:
    """Process-wide overrides, settable from the CLI (``--workers`` …)."""

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    cache_enabled: Optional[bool] = None


_CONFIG = PipelineConfig()


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    cache_enabled: Optional[bool] = None,
) -> PipelineConfig:
    """Set process-wide pipeline defaults; ``None`` leaves a field alone."""
    from .cache import set_default_cache

    if workers is not None:
        _CONFIG.workers = workers
    if cache_dir is not None or cache_enabled is not None:
        if cache_dir is not None:
            _CONFIG.cache_dir = cache_dir
        if cache_enabled is not None:
            _CONFIG.cache_enabled = cache_enabled
        cache = default_cache()
        set_default_cache(
            MeasurementCache(
                root=_CONFIG.cache_dir or cache.root,
                enabled=(
                    _CONFIG.cache_enabled
                    if _CONFIG.cache_enabled is not None
                    else cache.enabled
                ),
            )
        )
    return _CONFIG


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Worker-count policy; always at least 1."""
    for candidate in (explicit, _CONFIG.workers):
        if candidate is not None:
            return max(1, int(candidate))
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


#: Kernels that already passed verify+lint, pinned by identity so the
#: check runs once per kernel object per process (warm rebuilds pay a
#: set lookup, nothing more).
_PREPASS_SEEN: dict[int, object] = {}


def static_prepass(kernels) -> None:
    """Verify + lint every kernel before any measurement is dispatched.

    Structural problems and lint *errors* are fatal — a malformed
    kernel must never reach the measurement cache.  Results are
    memoized (per kernel object, with the framework's analysis results
    shared) so repeated sweeps over the cached suite stay cheap.
    """
    am = default_manager()
    for kern in kernels:
        if _PREPASS_SEEN.get(id(kern)) is kern:
            continue
        verify_kernel(kern)
        errors = [
            r for r in lint_kernel(kern, am) if r.severity is Severity.ERROR
        ]
        if errors:
            raise VerificationError(
                "; ".join(r.message for r in errors), kern.name
            )
        _PREPASS_SEEN[id(kern)] = kern


#: What one kernel's sweep cell resolves to: the model-facing sample,
#: or the reason vectorization was refused.
Payload = tuple[Optional[Sample], Optional[str]]


def _measure_named(
    name: str,
    target_name: str,
    vectorizer: str,
    jitter: float,
    seed: int,
) -> Payload:
    """Measure one kernel looked up by name (process-pool entry point)."""
    result = measure_kernel(
        get_kernel(name),
        get_target(target_name),
        vectorizer=vectorizer,
        jitter=jitter,
        seed=seed,
    )
    if isinstance(result, VectorizationFailure):
        return None, result.reason
    return sample_from_measurement(result), None


def _worker(args: tuple) -> tuple[str, Payload]:
    name, target_name, vectorizer, jitter, seed = args
    return name, _measure_named(name, target_name, vectorizer, jitter, seed)


def measure_suite(
    spec: "DatasetSpec",
    *,
    workers: Optional[int] = None,
    cache: Optional[MeasurementCache] = None,
    prepass: Optional[bool] = None,
) -> tuple[list[Sample], list[tuple[str, str]]]:
    """Sweep the whole TSVC suite for one measurement spec.

    Returns ``(samples, failures)`` in suite registration order —
    independent of worker count and cache state.  ``prepass`` controls
    the verify+lint gate run before the cache is consulted (default
    on; ``REPRO_PREPASS=0`` disables it).
    """
    get_target(spec.target)  # validate the spec before any work
    if cache is None:
        cache = default_cache()
    workers = resolve_workers(workers if workers is not None else spec.workers)

    kernels = list(all_kernels())
    if prepass is None:
        prepass = os.environ.get("REPRO_PREPASS", "1") != "0"
    if prepass:
        static_prepass(kernels)
    results: dict[str, Payload] = {}
    pending: list[str] = []
    fingerprints: dict[str, str] = {}
    for kern in kernels:
        fp = measurement_fingerprint(
            kern, spec.target, spec.vectorizer, spec.jitter, spec.seed
        )
        fingerprints[kern.name] = fp
        payload = cache.get(fp)
        if payload is MISS:
            pending.append(kern.name)
        else:
            results[kern.name] = payload

    if pending:
        for name, payload in _run_pending(spec, pending, workers):
            results[name] = payload
            cache.put(fingerprints[name], payload)

    samples: list[Sample] = []
    failures: list[tuple[str, str]] = []
    for kern in kernels:
        sample, reason = results[kern.name]
        if sample is None:
            failures.append((kern.name, reason))
        else:
            samples.append(sample)
    return samples, failures


def _run_pending(
    spec: "DatasetSpec", names: list[str], workers: int
):
    """Yield ``(name, payload)`` for every uncached kernel."""
    args = [
        (name, spec.target, spec.vectorizer, spec.jitter, spec.seed)
        for name in names
    ]
    if workers > 1 and len(names) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk = max(1, len(args) // (4 * workers))
                yield from pool.map(_worker, args, chunksize=chunk)
            return
        except (OSError, PermissionError, ImportError):
            # Sandboxes that forbid multiprocessing primitives fall back
            # to the serial path rather than failing the build.
            pass
    for a in args:
        yield _worker(a)
