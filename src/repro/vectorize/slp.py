"""SLP-style (superword-level parallelism) vectorizer.

Models LLVM's SLP pass the way the paper's x86 study uses it: unroll
the loop by VF, then pack the resulting isomorphic statement copies
into vector operations.  Because the copies come from unrolling, the
pack test reduces to per-statement rules on the *original* body:

* an ``ArrayStore`` packs when its store is unit-stride and its
  expression uses only affine loads, parameters, and packable private
  scalars (SLP builds no gathers for indirect subscripts — such
  statements stay scalar, giving *partial* vectorization, something
  all-or-nothing LLV cannot do);
* an unguarded reduction update packs (horizontal-reduction matching);
* control flow does not pack (no if-conversion in SLP), so IfBlocks
  and everything inside them stays scalar;
* a private scalar packs only when its definition packs *and* no
  scalar (unpacked) statement consumes it.

Legality is the loop-vectorization check at the same factor — packing
lanes reorders iterations exactly like LLV does.
"""

from __future__ import annotations

from typing import Optional, Union

from ..analysis.access import linearize
from ..analysis.reduction import ScalarClass
from ..ir.expr import Expr, Indirect, Load, ScalarRef
from ..ir.kernel import LoopKernel
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign
from ..targets.base import Target
from .legality import check_legality, natural_vf
from .plan import VectorizationFailure, VectorizationPlan


def _has_indirect_load(expr: Expr) -> bool:
    for node in expr.walk():
        if isinstance(node, Load) and any(
            isinstance(ix, Indirect) for ix in node.subscript
        ):
            return True
    return False


def _scalar_refs(expr: Expr) -> set[str]:
    return {n.name for n in expr.walk() if isinstance(n, ScalarRef)}


def slp_vectorize(
    kernel: LoopKernel,
    target: Target,
    vf: Optional[int] = None,
) -> Union[VectorizationPlan, VectorizationFailure]:
    factor = vf if vf is not None else natural_vf(kernel, target)
    if factor < 2:
        return VectorizationFailure(kernel, "vf too small", f"VF={factor}")
    if kernel.inner.trip < factor:
        return VectorizationFailure(
            kernel,
            "trip count below unroll factor",
            f"trip={kernel.inner.trip}, factor={factor}",
        )
    legality = check_legality(kernel, factor)
    if not legality.ok:
        return VectorizationFailure(kernel, legality.reason, legality.detail)

    info = legality.scalar_info
    params = {n for n, s in info.items() if s.klass is ScalarClass.PARAM}
    privates = {n for n, s in info.items() if s.klass is ScalarClass.PRIVATE}
    reductions = {n for n, s in info.items() if s.klass is ScalarClass.REDUCTION}

    # Privates consumed by scalar-side code can never pack.
    scalar_consumed: set[str] = set()
    for stmt in kernel.body:
        if isinstance(stmt, IfBlock):
            for inner_stmt in stmt.walk():
                for root in inner_stmt.exprs():
                    scalar_consumed |= _scalar_refs(root) & privates

    packable_privates = set(privates) - scalar_consumed
    # Iterate to a fixpoint: a statement referencing an unpackable
    # private is unpackable, and an unpackable private definition makes
    # its name unpackable.
    while True:
        changed = False
        for stmt in kernel.body:
            if not isinstance(stmt, ScalarAssign) or stmt.name not in packable_privates:
                continue
            refs = _scalar_refs(stmt.value) - params - reductions - {stmt.name}
            if _has_indirect_load(stmt.value) or not refs <= packable_privates:
                packable_privates.discard(stmt.name)
                changed = True
        if not changed:
            break

    packed: set[int] = set()
    for idx, stmt in enumerate(kernel.body):
        if isinstance(stmt, IfBlock):
            continue
        if isinstance(stmt, ScalarAssign):
            if stmt.name in packable_privates:
                packed.add(idx)
            elif (
                stmt.name in reductions
                and not info[stmt.name].guarded
                and not _has_indirect_load(stmt.value)
                and (_scalar_refs(stmt.value) - {stmt.name} - params)
                <= packable_privates
            ):
                packed.add(idx)
            continue
        assert isinstance(stmt, ArrayStore)
        lin = linearize(kernel.arrays[stmt.array], stmt.subscript, kernel.depth)
        if lin is None or lin.coeff(kernel.inner_level) != 1:
            continue
        if _has_indirect_load(stmt.value):
            continue
        refs = _scalar_refs(stmt.value) - params - reductions
        if not refs <= packable_privates:
            continue
        packed.add(idx)

    if not packed:
        return VectorizationFailure(
            kernel, "no packable groups", "SLP found nothing to vectorize"
        )

    return VectorizationPlan(
        kernel=kernel,
        vf=factor,
        scalar_info=info,
        dep_info=legality.dep_info,
        kind="slp",
        packed_stmts=frozenset(packed),
        notes=f"packed {len(packed)}/{len(kernel.body)} top-level statements",
    )
