"""Vectorization plans, failures, and the optimization plan space.

A :class:`VectorizationPlan` is the contract between the vectorizers
(LLV, SLP) and vector code generation / vector execution: the kernel,
the chosen vectorization factor, the scalar classification, and — for
SLP — which top-level statements were packed.

A :class:`PlanPoint` is one coordinate of the *optimization plan
space* the DSE engine (:mod:`repro.dse`) searches: vectorization
factor × interleave count × unroll factor × strategy.
:func:`enumerate_plan_points` produces the legality-pruned candidate
set for one kernel from a single cached framework legality query —
the dependence walk is never repeated per point.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..analysis.dependence import DependenceInfo
from ..analysis.reduction import ScalarClass, ScalarInfo
from ..ir.kernel import LoopKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..targets.base import Target


@dataclass(frozen=True)
class VectorizationPlan:
    kernel: LoopKernel
    vf: int
    scalar_info: dict[str, ScalarInfo]
    dep_info: DependenceInfo
    kind: str = "llv"  # "llv" | "slp"
    #: SLP only: indices of top-level statements that were packed; the
    #: rest execute as ``vf`` scalar copies.
    packed_stmts: frozenset[int] = frozenset()
    notes: str = ""

    @property
    def reductions(self) -> dict[str, ScalarInfo]:
        return {
            n: s
            for n, s in self.scalar_info.items()
            if s.klass is ScalarClass.REDUCTION
        }

    @property
    def has_guards(self) -> bool:
        from ..ir.stmt import IfBlock

        return any(isinstance(s, IfBlock) for s in self.kernel.stmts())

    def __str__(self) -> str:
        return (
            f"{self.kind.upper()} plan for {self.kernel.name}: VF={self.vf}, "
            f"{len(self.reductions)} reduction(s)"
            + (f", packed {sorted(self.packed_stmts)}" if self.kind == "slp" else "")
        )


@dataclass(frozen=True)
class VectorizationFailure:
    kernel: LoopKernel
    reason: str
    detail: str = ""

    def __str__(self) -> str:
        msg = f"{self.kernel.name}: not vectorizable ({self.reason})"
        return f"{msg}: {self.detail}" if self.detail else msg


PlanOrFailure = "VectorizationPlan | VectorizationFailure"


def is_plan(result) -> bool:
    return isinstance(result, VectorizationPlan)


# ---------------------------------------------------------------------------
# Plan space: VF × interleave × unroll × strategy
# ---------------------------------------------------------------------------

#: Strategies a plan point may carry.  ``scalar`` is the do-nothing
#: baseline (speedup ≡ 1.0 by definition).
STRATEGIES = ("scalar", "llv", "slp")

#: Interleave counts the enumeration considers (1 = no interleaving).
INTERLEAVE_CANDIDATES = (1, 2, 4)

#: Unroll factors the enumeration considers (1 = no unrolling).
UNROLL_CANDIDATES = (1, 2, 4)


@dataclass(frozen=True, order=True)
class PlanPoint:
    """One coordinate of the optimization plan space.

    ``vf`` is the vector factor (1 for the scalar strategy),
    ``interleave`` the number of concurrently-advanced vector
    iterations (modeled per-copy accumulators), ``unroll`` the
    pre-vectorization unroll factor, and ``strategy`` which vectorizer
    realizes the point.  ``target`` pins the machine the point was
    enumerated for — a point is meaningless across targets.
    """

    vf: int = 1
    interleave: int = 1
    unroll: int = 1
    strategy: str = "scalar"
    target: str = ""

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{', '.join(STRATEGIES)}"
            )
        if self.strategy == "scalar" and (
            self.vf != 1 or self.interleave != 1 or self.unroll != 1
        ):
            raise ValueError("scalar points must be (vf=1, ic=1, u=1)")
        if self.vf < 1 or self.interleave < 1 or self.unroll < 1:
            raise ValueError("vf/interleave/unroll must be >= 1")
        if self.strategy != "scalar" and self.vf < 2:
            raise ValueError("vector points need vf >= 2")

    @property
    def is_scalar(self) -> bool:
        return self.strategy == "scalar"

    def label(self) -> str:
        if self.is_scalar:
            return "scalar"
        return (
            f"{self.strategy}@vf{self.vf}"
            + (f".ic{self.interleave}" if self.interleave > 1 else "")
            + (f".u{self.unroll}" if self.unroll > 1 else "")
        )

    def to_dict(self) -> dict:
        return {
            "vf": self.vf,
            "interleave": self.interleave,
            "unroll": self.unroll,
            "strategy": self.strategy,
            "target": self.target,
        }

    def __str__(self) -> str:
        return f"{self.label()} on {self.target or '?'}"


def scalar_point(target: "Target") -> PlanPoint:
    return PlanPoint(1, 1, 1, "scalar", target.name)


def space_signature(points: Sequence[PlanPoint]) -> str:
    """Stable digest of a candidate set (a DSE memo key component)."""
    h = hashlib.sha256()
    for p in points:
        h.update(
            f"{p.vf}|{p.interleave}|{p.unroll}|{p.strategy}|{p.target};".encode()
        )
    return h.hexdigest()[:16]


def _slp_viable(kernel: LoopKernel, target: "Target", vf: int) -> bool:
    """One SLP probe decides whether the kernel packs at all.

    Packability is a property of the statement forest, not of the
    factor, so a single probe at the smallest legal factor prunes the
    whole SLP column without per-point vectorizer runs.
    """
    from .slp import slp_vectorize

    return is_plan(slp_vectorize(kernel, target, vf))


def enumerate_plan_points(
    kernel: LoopKernel,
    target: "Target",
    *,
    manager=None,
    max_unroll: Optional[int] = None,
    max_interleave: Optional[int] = None,
) -> list[PlanPoint]:
    """The legality-pruned plan space of ``kernel`` on ``target``.

    One :func:`~repro.vectorize.legality.check_legality` call (cached
    framework analyses) prunes everything:

    * the scalar point is always emitted (and is the only point for
      loops the framework refuses to vectorize);
    * VFs are powers of two up to the natural VF, bounded by the race
      detector's ``max_safe_vf`` and the trip count;
    * unroll factors must divide the trip count, keep at least one
      full vector iteration, and — because unrolling by ``u`` widens
      the effective access span per iteration — satisfy
      ``u * vf <= max_safe_vf`` (conservative, never re-walks the
      dependence graph);
    * interleave counts must divide the per-outer vector iteration
      count so no interleave remainder exists (the modeled execution
      path stays exact);
    * SLP points are emitted only when one packing probe succeeds,
      and only at unroll 1 (packing is probed on the original
      statement forest).

    The first emitted vector point is the natural-VF LLV default —
    search drivers break score ties toward it, so a model must
    *strictly* out-predict the default to move away from it.
    """
    from .legality import check_legality, natural_vf

    points: list[PlanPoint] = [scalar_point(target)]
    trip = kernel.inner.trip
    legal = check_legality(kernel, 2, manager=manager)
    if not legal.ok or trip < 2:
        return points
    max_safe = legal.max_safe_vf
    nat = natural_vf(kernel, target)

    vfs = []
    vf = 2
    while vf <= min(trip, nat):
        if vf <= max_safe:
            vfs.append(vf)
        vf *= 2
    if not vfs:
        return points

    unrolls = [
        u
        for u in UNROLL_CANDIDATES
        if u <= (max_unroll or UNROLL_CANDIDATES[-1])
        and trip % u == 0
        and trip // u >= 2
    ]
    ic_cap = max_interleave or INTERLEAVE_CANDIDATES[-1]

    slp_ok = _slp_viable(kernel, target, vfs[0])

    ordered: list[PlanPoint] = []
    default_vf = max(v for v in vfs)  # natural VF capped by trip/safety
    for strategy in ("llv", "slp"):
        if strategy == "slp" and not slp_ok:
            continue
        for u in unrolls if strategy == "llv" else (1,):
            for v in vfs:
                if v > trip // u or u * v > max_safe:
                    continue
                vec_iters = (trip // u) // v
                for ic in INTERLEAVE_CANDIDATES:
                    if ic > ic_cap or ic > vec_iters or vec_iters % ic:
                        continue
                    ordered.append(PlanPoint(v, ic, u, strategy, target.name))
    default = PlanPoint(default_vf, 1, 1, "llv", target.name)
    if default in ordered:
        ordered.remove(default)
        ordered.insert(0, default)
    points.extend(ordered)
    return points


def default_plan_point(kernel: LoopKernel, target: "Target") -> PlanPoint:
    """The baseline the vectorizer would pick today: natural-VF LLV
    with no unrolling and no interleaving — or the scalar point when
    the loop is not vectorizable."""
    from .llv import vectorize_loop

    result = vectorize_loop(kernel, target)
    if is_plan(result):
        return PlanPoint(result.vf, 1, 1, "llv", target.name)
    return scalar_point(target)
