"""Vectorization plans and failures.

A :class:`VectorizationPlan` is the contract between the vectorizers
(LLV, SLP) and vector code generation / vector execution: the kernel,
the chosen vectorization factor, the scalar classification, and — for
SLP — which top-level statements were packed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dependence import DependenceInfo
from ..analysis.reduction import ScalarClass, ScalarInfo
from ..ir.kernel import LoopKernel


@dataclass(frozen=True)
class VectorizationPlan:
    kernel: LoopKernel
    vf: int
    scalar_info: dict[str, ScalarInfo]
    dep_info: DependenceInfo
    kind: str = "llv"  # "llv" | "slp"
    #: SLP only: indices of top-level statements that were packed; the
    #: rest execute as ``vf`` scalar copies.
    packed_stmts: frozenset[int] = frozenset()
    notes: str = ""

    @property
    def reductions(self) -> dict[str, ScalarInfo]:
        return {
            n: s
            for n, s in self.scalar_info.items()
            if s.klass is ScalarClass.REDUCTION
        }

    @property
    def has_guards(self) -> bool:
        from ..ir.stmt import IfBlock

        return any(isinstance(s, IfBlock) for s in self.kernel.stmts())

    def __str__(self) -> str:
        return (
            f"{self.kind.upper()} plan for {self.kernel.name}: VF={self.vf}, "
            f"{len(self.reductions)} reduction(s)"
            + (f", packed {sorted(self.packed_stmts)}" if self.kind == "slp" else "")
        )


@dataclass(frozen=True)
class VectorizationFailure:
    kernel: LoopKernel
    reason: str
    detail: str = ""

    def __str__(self) -> str:
        msg = f"{self.kernel.name}: not vectorizable ({self.reason})"
        return f"{msg}: {self.detail}" if self.detail else msg


PlanOrFailure = "VectorizationPlan | VectorizationFailure"


def is_plan(result) -> bool:
    return isinstance(result, VectorizationPlan)
