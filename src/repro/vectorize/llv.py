"""Loop-level vectorizer (LLV) driver.

Mirrors the configuration the paper studies: LLVM 6.0's loop
vectorizer with the cost model overridden — i.e. *always* vectorize
when legal, at the natural VF, with no unrolling and no interleaving.
The benefit question is answered afterwards by the cost models under
study, never here.
"""

from __future__ import annotations

from typing import Optional, Union

from ..ir.kernel import LoopKernel
from ..targets.base import Target
from .legality import check_legality, natural_vf
from .plan import VectorizationFailure, VectorizationPlan


def vectorize_loop(
    kernel: LoopKernel,
    target: Target,
    vf: Optional[int] = None,
) -> Union[VectorizationPlan, VectorizationFailure]:
    """Build an LLV vectorization plan for ``kernel`` on ``target``.

    Returns a :class:`VectorizationFailure` when the loop is not legal
    to vectorize at the requested (or natural) factor.
    """
    chosen_vf = vf if vf is not None else natural_vf(kernel, target)
    if chosen_vf < 2:
        return VectorizationFailure(kernel, "vf too small", f"VF={chosen_vf}")
    if kernel.inner.trip < chosen_vf:
        return VectorizationFailure(
            kernel, "trip count below VF", f"trip={kernel.inner.trip}, VF={chosen_vf}"
        )

    legality = check_legality(kernel, chosen_vf)
    if not legality.ok:
        return VectorizationFailure(kernel, legality.reason, legality.detail)

    return VectorizationPlan(
        kernel=kernel,
        vf=chosen_vf,
        scalar_info=legality.scalar_info,
        dep_info=legality.dep_info,
        kind="llv",
    )
