"""Vectorizers: legality, LLV loop vectorization, unrolling, SLP."""

from .legality import Legality, check_legality, natural_vf, widest_dtype
from .plan import VectorizationFailure, VectorizationPlan, is_plan
from .llv import vectorize_loop
from .unroll import UnrollError, unroll
from .slp import slp_vectorize

__all__ = [
    "Legality",
    "check_legality",
    "natural_vf",
    "widest_dtype",
    "VectorizationFailure",
    "VectorizationPlan",
    "is_plan",
    "vectorize_loop",
    "UnrollError",
    "unroll",
    "slp_vectorize",
]
