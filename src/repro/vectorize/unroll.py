"""Inner-loop unrolling.

The paper's x86 configuration applies SLP vectorization *after loop
unrolling* (slide 17): unrolling by VF materializes VF isomorphic
statement copies that SLP can pack back into vectors.  The transform
normalizes subscripts — for copy ``u`` of an index ``c·i + o`` the new
index is ``(c·f)·i' + (o + c·u)`` — renames iteration-private scalars
per copy, and keeps reduction/recurrence scalars shared so their
sequential semantics survive.
"""

from __future__ import annotations

from typing import Callable

from ..analysis.reduction import ScalarClass, classify_scalars
from ..ir.expr import (
    Affine,
    BinOp,
    BinOpKind,
    Compare,
    Const,
    Convert,
    Expr,
    Indirect,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
)
from ..ir.kernel import Loop, LoopKernel, ScalarDecl
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign, Stmt
from ..ir.types import DType


class UnrollError(Exception):
    pass


def _shift_index(ix, inner: int, factor: int, u: int):
    if isinstance(ix, Affine):
        c = ix.coeff(inner)
        coeffs = list(ix.coeffs)
        if inner < len(coeffs):
            coeffs[inner] = c * factor
        return Affine(tuple(coeffs), ix.offset + c * u)
    assert isinstance(ix, Indirect)
    return Indirect(ix.array, _shift_index(ix.index, inner, factor, u))


def _rewrite_expr(
    expr: Expr,
    inner: int,
    factor: int,
    u: int,
    rename: Callable[[str], str],
) -> Expr:
    def rec(e: Expr) -> Expr:
        return _rewrite_expr(e, inner, factor, u, rename)

    if isinstance(expr, Const):
        return expr
    if isinstance(expr, ScalarRef):
        return ScalarRef(rename(expr.name), expr.dtype)
    if isinstance(expr, IterValue):
        if expr.level != inner:
            return expr
        # i = factor*i' + u
        scaled: Expr = BinOp(
            BinOpKind.MUL, IterValue(expr.level), Const(factor, DType.I32)
        )
        if u:
            scaled = BinOp(BinOpKind.ADD, scaled, Const(u, DType.I32))
        return scaled
    if isinstance(expr, Load):
        sub = tuple(_shift_index(ix, inner, factor, u) for ix in expr.subscript)
        return Load(expr.array, sub, expr.dtype)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rec(expr.lhs), rec(expr.rhs))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, rec(expr.operand))
    if isinstance(expr, Compare):
        return Compare(expr.op, rec(expr.lhs), rec(expr.rhs))
    if isinstance(expr, Select):
        return Select(rec(expr.cond), rec(expr.if_true), rec(expr.if_false))
    if isinstance(expr, Convert):
        return Convert(rec(expr.operand), expr.dtype)
    raise UnrollError(f"cannot rewrite {type(expr).__name__}")


def _rewrite_stmt(
    stmt: Stmt, inner: int, factor: int, u: int, rename: Callable[[str], str]
) -> Stmt:
    if isinstance(stmt, ArrayStore):
        sub = tuple(_shift_index(ix, inner, factor, u) for ix in stmt.subscript)
        return ArrayStore(
            stmt.array, sub, _rewrite_expr(stmt.value, inner, factor, u, rename)
        )
    if isinstance(stmt, ScalarAssign):
        return ScalarAssign(
            rename(stmt.name), _rewrite_expr(stmt.value, inner, factor, u, rename)
        )
    if isinstance(stmt, IfBlock):
        return IfBlock(
            _rewrite_expr(stmt.cond, inner, factor, u, rename),
            tuple(_rewrite_stmt(s, inner, factor, u, rename) for s in stmt.then_body),
            tuple(_rewrite_stmt(s, inner, factor, u, rename) for s in stmt.else_body),
        )
    raise UnrollError(f"cannot rewrite {type(stmt).__name__}")


def unroll(kernel: LoopKernel, factor: int) -> LoopKernel:
    """Unroll the innermost loop by ``factor`` (trip must divide)."""
    if factor < 2:
        raise UnrollError(f"unroll factor must be >= 2, got {factor}")
    if kernel.inner.trip % factor != 0:
        raise UnrollError(
            f"trip {kernel.inner.trip} not divisible by factor {factor}"
        )
    inner = kernel.inner_level
    info = classify_scalars(kernel)
    private = {n for n, s in info.items() if s.klass is ScalarClass.PRIVATE}

    scalars: dict[str, ScalarDecl] = {}
    body: list[Stmt] = []
    for name, decl in kernel.scalars.items():
        if name not in private:
            scalars[name] = decl
    for u in range(factor):
        def rename(name: str, _u=u) -> str:
            return f"{name}__u{_u}" if name in private else name

        for name in private:
            new = rename(name)
            d = kernel.scalars[name]
            scalars[new] = ScalarDecl(new, d.dtype, d.init)
        for stmt in kernel.body:
            body.append(_rewrite_stmt(stmt, inner, factor, u, rename))

    loops = list(kernel.loops)
    loops[inner] = Loop(kernel.inner.trip // factor)
    return LoopKernel(
        name=f"{kernel.name}.u{factor}",
        loops=tuple(loops),
        arrays=dict(kernel.arrays),
        scalars=scalars,
        body=tuple(body),
        category=kernel.category,
        source=kernel.source,
    )
