"""Vectorization legality: the paper's first question, "is it possible?".

A loop is vectorizable at factor VF when

* no scalar is a serializing recurrence (reductions are fine),
* every memory dependence carried by the inner loop is forward or has
  distance ≥ VF (see :mod:`repro.analysis.dependence`),
* no store writes a loop-invariant location (last-value stores are out
  of scope, as in the paper's LLV configuration).

Control flow is never a legality problem — it is if-converted — and
indirect accesses are legal as long as they create no *conflicting*
unknown dependence (pure gather reads, scatter writes to an array that
is never read in the loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.access import collect_accesses
from ..analysis.dependence import DependenceInfo, analyze_dependences
from ..analysis.reduction import ScalarClass, ScalarInfo, classify_scalars
from ..ir.kernel import LoopKernel
from ..ir.types import DType
from ..targets.base import Target


@dataclass(frozen=True)
class Legality:
    ok: bool
    reason: str
    detail: str
    max_safe_vf: float
    scalar_info: dict[str, ScalarInfo]
    dep_info: DependenceInfo


def widest_dtype(kernel: LoopKernel) -> DType:
    """The widest element type the kernel touches (decides natural VF)."""
    widest = DType.F32
    for decl in kernel.arrays.values():
        if decl.dtype.size > widest.size:
            widest = decl.dtype
    for decl in kernel.scalars.values():
        if decl.dtype.size > widest.size:
            widest = decl.dtype
    return widest


def natural_vf(kernel: LoopKernel, target: Target) -> int:
    """LLVM-style VF selection: full register of the widest type."""
    return max(2, target.lanes(widest_dtype(kernel)))


def check_legality(kernel: LoopKernel, vf: int) -> Legality:
    scalar_info = classify_scalars(kernel)
    dep_info = analyze_dependences(kernel)

    def fail(reason: str, detail: str = "") -> Legality:
        return Legality(False, reason, detail, dep_info.max_safe_vf(), scalar_info, dep_info)

    for name, info in scalar_info.items():
        if info.klass is ScalarClass.RECURRENCE:
            return fail("scalar recurrence", f"scalar {name!r} carries a serial dependence")

    unsafe = dep_info.unsafe_for(vf)
    if unsafe:
        return fail("unsafe memory dependence", str(unsafe[0]))

    for acc in collect_accesses(kernel):
        if acc.is_store and acc.stride == 0:
            return fail(
                "loop-invariant store",
                f"store to {acc.array} does not move with the inner loop",
            )

    return Legality(True, "ok", "", dep_info.max_safe_vf(), scalar_info, dep_info)
