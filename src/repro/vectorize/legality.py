"""Vectorization legality: the paper's first question, "is it possible?".

A loop is vectorizable at factor VF when

* no scalar is a serializing recurrence (reductions are fine),
* every memory dependence carried by the inner loop is forward or has
  distance ≥ VF (see :mod:`repro.analysis.dependence`),
* no store writes a loop-invariant location (last-value stores are out
  of scope, as in the paper's LLV configuration).

Control flow is never a legality problem — it is if-converted — and
indirect accesses are legal as long as they create no *conflicting*
unknown dependence (pure gather reads, scatter writes to an array that
is never read in the loop).

The analyses are consumed through the static-analysis framework's pass
manager (one cached dependence walk shared by the race detector, the
lint pass, and every legality query), and every refusal carries the
structured remarks that name the blocking access pair or scalar — the
``-Rpass-missed=loop-vectorize`` equivalents the ``analyze`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.dependence import DependenceInfo
from ..analysis.framework.diagnostics import Remark, Severity
from ..analysis.framework.passmanager import AnalysisManager, default_manager
from ..analysis.framework.passes import AccessPass, ScalarClassPass
from ..analysis.framework.racedetector import RacePass, RaceReport
from ..analysis.framework.ranges import BoundsCheckPass, BoundsInfo
from ..analysis.reduction import ScalarClass, ScalarInfo
from ..ir.kernel import LoopKernel
from ..ir.types import DType
from ..targets.base import Target

PASS = "loop-vectorize"


@dataclass(frozen=True)
class Legality:
    ok: bool
    reason: str
    detail: str
    max_safe_vf: float
    scalar_info: dict[str, ScalarInfo]
    dep_info: DependenceInfo
    #: Structured remarks explaining the verdict: the blocking access
    #: pair/scalar on refusal, or a bounds-proof summary when legal and
    #: the range analysis proved every access dimension in bounds.
    remarks: tuple[Remark, ...] = ()


def widest_dtype(kernel: LoopKernel) -> DType:
    """The widest element type the kernel touches (decides natural VF)."""
    widest = DType.F32
    for decl in kernel.arrays.values():
        if decl.dtype.size > widest.size:
            widest = decl.dtype
    for decl in kernel.scalars.values():
        if decl.dtype.size > widest.size:
            widest = decl.dtype
    return widest


def natural_vf(kernel: LoopKernel, target: Target) -> int:
    """LLVM-style VF selection: full register of the widest type."""
    return max(2, target.lanes(widest_dtype(kernel)))


def check_legality(
    kernel: LoopKernel,
    vf: int,
    *,
    manager: Optional[AnalysisManager] = None,
) -> Legality:
    """Decide legality at ``vf`` using cached framework analyses."""
    am = manager if manager is not None else default_manager()
    scalar_info: dict[str, ScalarInfo] = am.get(ScalarClassPass, kernel)
    races: RaceReport = am.get(RacePass, kernel)
    dep_info = races.dep_info

    def fail(reason: str, detail: str, remarks: list[Remark]) -> Legality:
        return Legality(
            False,
            reason,
            detail,
            races.max_safe_vf(),
            scalar_info,
            dep_info,
            tuple(remarks),
        )

    for name, info in scalar_info.items():
        if info.klass is ScalarClass.RECURRENCE:
            detail = f"scalar {name!r} carries a serial dependence"
            remark = Remark(
                severity=Severity.REMARK,
                pass_name=PASS,
                kernel=kernel.name,
                message=(
                    f"loop not vectorized: scalar recurrence on '{name}' — "
                    "its previous-iteration value is observed outside a "
                    "reduction pattern, serializing the loop"
                ),
                args=(("scalar", name), ("reason", "scalar recurrence")),
            )
            return fail("scalar recurrence", detail, [remark])

    blocking = races.blocking(vf)
    if blocking:
        race_remarks = races.remarks(vf)
        headline = Remark(
            severity=Severity.REMARK,
            pass_name=PASS,
            kernel=kernel.name,
            message=(
                f"loop not vectorized: unsafe dependent memory operation — "
                f"{blocking[0].describe()}"
            ),
            stmt_index=blocking[0].sink_stmt,
            args=(
                ("reason", "unsafe memory dependence"),
                ("array", blocking[0].array),
                ("max_safe_vf", str(races.max_safe_vf())),
            ),
        )
        return fail(
            "unsafe memory dependence",
            str(blocking[0].dep),
            [headline, *race_remarks],
        )

    for acc in am.get(AccessPass, kernel):
        if acc.is_store and acc.stride == 0:
            detail = f"store to {acc.array} does not move with the inner loop"
            remark = Remark(
                severity=Severity.REMARK,
                pass_name=PASS,
                kernel=kernel.name,
                message=(
                    f"loop not vectorized: store to '{acc.array}' at "
                    f"S{int(acc.pos)} is inner-loop invariant "
                    "(last-value store out of scope)"
                ),
                stmt_index=int(acc.pos),
                args=(("array", acc.array), ("reason", "loop-invariant store")),
            )
            return fail("loop-invariant store", detail, [remark])

    bounds: BoundsInfo = am.get(BoundsCheckPass, kernel)
    notes: tuple[Remark, ...] = ()
    if bounds.accesses and bounds.all_proven:
        notes = (
            Remark(
                severity=Severity.REMARK,
                pass_name=PASS,
                kernel=kernel.name,
                message=(
                    f"all {len(bounds.accesses)} access dimensions proven "
                    f"in bounds by range analysis "
                    f"({bounds.gathers_proven} gather/scatter under the "
                    "data contract); compiled tiers elide runtime checks"
                ),
                args=(
                    ("accesses", str(len(bounds.accesses))),
                    ("gathers_proven", str(bounds.gathers_proven)),
                ),
            ),
        )
    return Legality(
        True, "ok", "", races.max_safe_vf(), scalar_info, dep_info, notes
    )
