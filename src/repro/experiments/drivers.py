"""One driver per paper figure (E1…E11, plus E12 — see DESIGN.md §4)."""

from __future__ import annotations

from typing import Optional

from ..costmodel.featurize import describe
from ..costmodel.llvm_like import LLVMLikeCostModel
from ..validation.decisions import (
    always_cycles,
    never_cycles,
    oracle_cycles,
    policy_cycles,
)
from ..validation.metrics import evaluate
from .base import (
    ExperimentResult,
    fit_and_report,
    fit_cached,
    loocv_cached,
    make_baseline,
    make_cost_model,
    make_rated_model,
    make_speedup_model,
    scatter_for,
)
from .dataset import ARM_LLV, X86_SLP, Dataset, DatasetSpec, build_dataset
from .reporting import build_summary, fail_summary, quarantine_summary


def _dataset(spec: Optional[DatasetSpec], default: DatasetSpec) -> Dataset:
    return build_dataset(spec or default)


# ---------------------------------------------------------------------------
# E1 — state-of-the-art analysis, ARM (slide 4)
# ---------------------------------------------------------------------------


def run_e1(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    """LLVM-style static cost model vs measurement on ARMv8 NEON."""
    ds = _dataset(spec, ARM_LLV)
    res = ExperimentResult(
        "E1",
        "State of the art: static cost model on ARMv8 (TSVC, LLV, "
        "forced vectorization, no unroll/interleave)",
    )
    measured = ds.measured
    report, preds = fit_and_report(make_baseline(), ds.samples, measured, fit=False)
    res.rows.append(
        {
            **report.row(),
            "vectorized": len(ds.samples),
            "excluded": len(ds.failures),
            "quarantined": len(ds.quarantined),
        }
    )
    scatter_for(res, "llvm-static", preds, measured)
    res.notes = (
        f"{ds.summary()}. Not vectorizable: {fail_summary(ds.failures)}. "
        f"Quarantined by the sweep: {quarantine_summary(ds.quarantined)}. "
        f"Sweep schedule: {build_summary(ds.build_stats)}. "
        "The static model's coarse per-opcode costs ignore latency "
        "chains, port pressure and memory bandwidth — hence the weak "
        "correlation the paper opens with."
    )
    return res


# ---------------------------------------------------------------------------
# E2 — linear modelling worked example (slide 6)
# ---------------------------------------------------------------------------


def run_e2(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    """The slide-6 worked example: block equations and implied costs."""
    ds = _dataset(spec, ARM_LLV)
    res = ExperimentResult(
        "E2", "Linear modelling example: block equations and fitted costs"
    )
    model = fit_cached(make_cost_model("nnls"), ds.samples)
    static = LLVMLikeCostModel()
    for name in ("s000", "s312"):
        try:
            s = ds.sample(name)
        except KeyError:
            continue
        c_scalar = static.scalar_cost(s)
        fitted_cost = model.vector_cost(s)
        implied = model.implied_vector_cost(s)
        res.rows.append(
            {
                "kernel": name,
                "c_scalar (static)": round(c_scalar, 2),
                "c_vector (fitted)": round(fitted_cost, 2),
                "c_vector (implied by measurement)": round(implied, 2),
                "estimated speedup": round(s.vf * c_scalar / max(fitted_cost, 1e-9), 2),
                "measured speedup": round(s.measured_speedup, 2),
            }
        )
        res.notes += (
            f"{name} vector-block equation counts: "
            f"{describe(s.vector_features)}\n"
        )
    res.notes += (
        "Matches the slide's construction: the scalar block cost is the "
        "static count, the vector block's target cost is implied by the "
        "measured speedup, and the weights are fitted across the suite."
    )
    return res


# ---------------------------------------------------------------------------
# E3 — fitted for speedup, ARM (slide 8)
# ---------------------------------------------------------------------------


def run_e3(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    """Speedup-target fitting with L2 and NNLS on the ARM dataset."""
    ds = _dataset(spec, ARM_LLV)
    res = ExperimentResult("E3", "Fitted for speedup (ARM): L2 and NNLS")
    measured = ds.measured
    base_report, base_preds = fit_and_report(
        make_baseline(), ds.samples, measured, fit=False
    )
    res.rows.append(base_report.row())
    for method in ("l2", "nnls"):
        report, preds = fit_and_report(
            make_speedup_model(method), ds.samples, measured
        )
        res.rows.append(report.row())
        scatter_for(res, f"speedup-{method}", preds, measured)
    res.notes = (
        "Targets live in (0, VF] instead of the wide block-cost "
        "interval. On our simulated NEON the count-based fit improves "
        "RMSE but not Pearson over the baseline (our static tables are "
        "better calibrated than real LLVM 6.0's were); the correlation "
        "gain arrives with the rated features (E4), and on x86 the "
        "count fits already beat the baseline outright (E11)."
    )
    return res


# ---------------------------------------------------------------------------
# E4 — rated instruction count, ARM (slide 10)
# ---------------------------------------------------------------------------


def run_e4(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    """Composition (fraction-of-block) features vs raw counts."""
    ds = _dataset(spec, ARM_LLV)
    res = ExperimentResult(
        "E4", "Fitted with rated instruction count (ARM): block composition"
    )
    measured = ds.measured
    for method in ("l2", "nnls", "svr"):
        report, _ = fit_and_report(make_speedup_model(method), ds.samples, measured)
        res.rows.append({"features": "counts", **report.row()})
    for method in ("l2", "nnls", "svr"):
        report, preds = fit_and_report(make_rated_model(method), ds.samples, measured)
        res.rows.append({"features": "rated", **report.row()})
        if method == "nnls":
            scatter_for(res, "rated-nnls", preds, measured)
    res.notes = (
        "Replacing counts with the type's share of the block exposes "
        "arithmetic intensity (memory-bound blocks look different), "
        "lifting correlation above every count-based fit."
    )
    return res


# ---------------------------------------------------------------------------
# E5 / E8 — LOOCV (slides 11 and 16)
# ---------------------------------------------------------------------------


def _loocv_experiment(
    eid: str, title: str, method: str, spec: Optional[DatasetSpec]
) -> ExperimentResult:
    ds = _dataset(spec, ARM_LLV)
    res = ExperimentResult(eid, title)
    measured = ds.measured
    for label, factory in (
        (f"speedup-{method}", lambda: make_speedup_model(method)),
        (f"rated-{method}", lambda: make_rated_model(method)),
    ):
        fit_report, _ = fit_and_report(factory(), ds.samples, measured)
        loocv_preds = loocv_cached(factory, ds.samples)
        loocv_report = evaluate(label, loocv_preds, measured)
        res.rows.append({"setting": "fit-all", **fit_report.row()})
        res.rows.append({"setting": "LOOCV", **loocv_report.row()})
        if label.startswith("rated"):
            scatter_for(res, f"loocv-{label}", loocv_preds, measured)
    res.notes = (
        "Each kernel is predicted by a model fitted on the other "
        f"{len(ds.samples) - 1} kernels; correlation drops only "
        "slightly vs fitting on everything, so the model generalizes."
    )
    return res


def run_e5(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    return _loocv_experiment(
        "E5", "Leave-one-out cross validation, NNLS (ARM)", "nnls", spec
    )


def run_e8(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    return _loocv_experiment(
        "E8", "Leave-one-out cross validation, L2 (ARM)", "l2", spec
    )


# ---------------------------------------------------------------------------
# E6 — conclusion metrics (slide 12)
# ---------------------------------------------------------------------------


def run_e6(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    """Correlation up, false predictions down, execution time down."""
    ds = _dataset(spec, ARM_LLV)
    res = ExperimentResult(
        "E6", "Refined cost model: correlation, false predictions, runtime"
    )
    measured = ds.measured
    base_report, base_preds = fit_and_report(
        make_baseline(), ds.samples, measured, fit=False
    )
    rated = make_rated_model("nnls")
    rated_report, rated_preds = fit_and_report(rated, ds.samples, measured)
    rated_loocv = loocv_cached(lambda: make_rated_model("nnls"), ds.samples)

    res.rows.append(base_report.row())
    res.rows.append(rated_report.row())
    res.rows.append(evaluate("rated-NNLS (LOOCV)", rated_loocv, measured).row())

    policies = [
        never_cycles(ds.samples),
        always_cycles(ds.samples),
        policy_cycles(ds.samples, base_preds, name="llvm-static policy"),
        policy_cycles(ds.samples, rated_preds, name="rated-NNLS policy"),
        policy_cycles(ds.samples, rated_loocv, name="rated-NNLS LOOCV policy"),
        oracle_cycles(ds.samples),
    ]
    res.tables.append(
        (
            "Suite execution time under each decision policy",
            [
                {
                    "policy": p.name,
                    "suite cycles/elem": round(p.cycles, 2),
                    "loops vectorized": f"{p.vectorized}/{p.total}",
                }
                for p in policies
            ],
        )
    )
    res.notes = (
        "The refined model raises correlation, cuts false predictions, "
        "and its vectorize-iff-predicted-beneficial policy lands closer "
        "to the oracle runtime than the static model's policy."
    )
    return res


# ---------------------------------------------------------------------------
# E7 — LLV vs SLP on one loop (slide 15)
# ---------------------------------------------------------------------------


def run_e7(target_name: str = "armv8-neon", kernel_name: str = "s273") -> ExperimentResult:
    """Compare two transformations of the same loop (slide 15's setup).

    The slide ran its example on an Intel i5; on our simulated AVX2
    machine the example loop is bandwidth-bound either way, so the NEON
    core — where LLV's if-conversion and SLP's partial packing price
    the guarded statement very differently — shows the effect the
    slide is after (see EXPERIMENTS.md).
    """
    from ..sim.measure import measure_kernel
    from ..targets.registry import get_target
    from ..tsvc.suite import get_kernel
    from ..costmodel.base import sample_from_measurement

    res = ExperimentResult(
        "E7",
        f"Why aligned cost models: LLV vs SLP on the same loop ({kernel_name})",
    )
    target = get_target(target_name)
    kern = get_kernel(kernel_name)
    # The memoized dataset build + engine memo: E7 shares both the
    # sweep and the fitted rated-NNLS model with E4/E5/E6 instead of
    # paying for its own.
    ds = _dataset(None, X86_SLP if target_name.startswith("x86") else ARM_LLV)
    rated = fit_cached(make_rated_model("nnls"), ds.samples)
    static = make_baseline()

    for vec in ("llv", "slp"):
        m = measure_kernel(kern, target, vectorizer=vec, jitter=0.0)
        if not hasattr(m, "speedup"):
            res.rows.append({"pass": vec.upper(), "result": str(m)})
            continue
        s = sample_from_measurement(m)
        res.rows.append(
            {
                "pass": vec.upper(),
                "static predicted": round(static.predict_speedup(s), 2),
                "fitted predicted": round(rated.predict_speedup(s), 2),
                "measured": round(s.measured_speedup, 2),
            }
        )
    res.notes = (
        "An aligned (fitted) cost model makes the two transformations' "
        "estimates comparable with each other, not just against the "
        "scalar baseline — the slide-15 motivation."
    )
    return res


# ---------------------------------------------------------------------------
# E9 — state of the art, x86 (slide 17)
# ---------------------------------------------------------------------------


def run_e9(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    ds = _dataset(spec, X86_SLP)
    res = ExperimentResult(
        "E9",
        "State of the art: static model on x86 AVX2 (TSVC, SLP after "
        "unrolling)",
    )
    measured = ds.measured
    report, preds = fit_and_report(make_baseline(), ds.samples, measured, fit=False)
    res.rows.append(
        {
            **report.row(),
            "vectorized": len(ds.samples),
            "excluded": len(ds.failures),
            "quarantined": len(ds.quarantined),
        }
    )
    scatter_for(res, "llvm-static-x86", preds, measured)
    res.notes = (
        f"{ds.summary()}. Not vectorizable: {fail_summary(ds.failures)}. "
        f"Quarantined by the sweep: {quarantine_summary(ds.quarantined)}. "
        f"Sweep schedule: {build_summary(ds.build_stats)}."
    )
    return res


# ---------------------------------------------------------------------------
# E10 — fitted for cost, x86 (slide 18)
# ---------------------------------------------------------------------------


def run_e10(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    ds = _dataset(spec, X86_SLP)
    res = ExperimentResult(
        "E10", "Fitted for cost (x86): L2, NNLS, SVR on block-cost targets"
    )
    measured = ds.measured
    res.rows.append(
        fit_and_report(make_baseline(), ds.samples, measured, fit=False)[0].row()
    )
    for method in ("l2", "nnls", "svr"):
        report, preds = fit_and_report(make_cost_model(method), ds.samples, measured)
        res.rows.append(report.row())
        if method == "nnls":
            scatter_for(res, "cost-nnls-x86", preds, measured)
    res.notes = (
        "Cost targets span a huge interval (slide 7's complaint), so "
        "the fits are unstable — exactly the motivation for fitting "
        "speedup instead."
    )
    return res


# ---------------------------------------------------------------------------
# E11 — fitted for speedup, x86 (slide 19)
# ---------------------------------------------------------------------------


def run_e11(spec: Optional[DatasetSpec] = None) -> ExperimentResult:
    ds = _dataset(spec, X86_SLP)
    res = ExperimentResult(
        "E11", "Fitted for speedup (x86): L2, NNLS, SVR improve further"
    )
    measured = ds.measured
    for method in ("l2", "nnls", "svr"):
        report, preds = fit_and_report(
            make_speedup_model(method), ds.samples, measured
        )
        res.rows.append({"features": "counts", **report.row()})
    for method in ("l2", "nnls", "svr"):
        report, preds = fit_and_report(make_rated_model(method), ds.samples, measured)
        res.rows.append({"features": "rated", **report.row()})
        if method == "nnls":
            scatter_for(res, "rated-nnls-x86", preds, measured)
    res.notes = (
        "For every fitting method the speedup-target fit (count or "
        "rated features) beats its cost-target counterpart from E10, "
        "and the rated variants drive false negatives to (near) zero "
        "at the price of a small false-positive increase — slide 19's "
        "exact trade-off."
    )
    return res


# ---------------------------------------------------------------------------
# E12 — LOOCV SVR, both targets (beyond the paper)
# ---------------------------------------------------------------------------


def _rated_svr_factory():
    return make_rated_model("svr")


def run_e12(
    spec_arm: Optional[DatasetSpec] = None,
    spec_x86: Optional[DatasetSpec] = None,
) -> ExperimentResult:
    """Out-of-sample SVR: the LOOCV figure the paper never ran.

    Slides 11/16 give LOOCV numbers for NNLS and L2 only — SVR was the
    one fitting method left without an out-of-sample figure, because N
    full L-BFGS-B solves per configuration made it by far the slowest
    sweep.  The warm-started fold solver (seeded from a polished full
    fit, certified via strong convexity, cold-refit on certificate
    failure) makes the sweep affordable on both targets; the
    certificate acceptance rate is reported in the notes.
    """
    res = ExperimentResult(
        "E12",
        "LOOCV SVR (rated features, warm-started folds): ARM and x86",
    )
    fold_notes = []
    for tag, spec, default in (
        ("arm", spec_arm, ARM_LLV),
        ("x86", spec_x86, X86_SLP),
    ):
        ds = _dataset(spec, default)
        measured = ds.measured
        fit_report, _ = fit_and_report(
            _rated_svr_factory(), ds.samples, measured
        )
        stats: dict = {}
        loocv_preds = loocv_cached(_rated_svr_factory, ds.samples, stats=stats)
        loocv_report = evaluate("rated-SVR", loocv_preds, measured)
        res.rows.append(
            {"dataset": ds.spec.label, "setting": "fit-all", **fit_report.row()}
        )
        res.rows.append(
            {"dataset": ds.spec.label, "setting": "LOOCV", **loocv_report.row()}
        )
        scatter_for(res, f"loocv-rated-svr-{tag}", loocv_preds, measured)
        warm = stats.get("svr_warm")
        if warm is not None:
            fold_notes.append(
                f"{ds.spec.label}: {warm}, {warm.rejected} cold fallback(s)"
            )
        else:
            fold_notes.append(f"{ds.spec.label}: cold refit loop")
    res.notes = (
        "Warm-start certificates — " + "; ".join(fold_notes) + ". "
        "Every accepted fold is provably within the certificate gap of "
        "its true deleted-point optimum; rejected folds were refit "
        "cold, so the table is a genuine LOOCV, just cheaper."
    )
    return res
