"""E13: learning curves on the synthetic kernel corpus (beyond the paper).

The paper fits on the 151-loop TSVC suite; the obvious question it
cannot answer is whether the linear models are *data-starved* — would
ten times the loops move the needle?  The property-based generator
(:mod:`repro.gen`) makes the question testable: it samples arbitrarily
many valid kernels from the suite's own category taxonomy, and the
sharded corpus sweep (:mod:`repro.pipeline.corpus`) makes measuring
them affordable.

E13 sweeps a nested sequence of corpora (suite ⊂ suite+generated ⊂ …,
default sizes 151/400/800/1500 — ``REPRO_E13_SIZES`` overrides), fits
the serving model (NNLS speedup over count features — the exact shape
``repro.serve`` publishes) at every size, and evaluates each fit on a
*held-out* generated corpus drawn from a different generator seed.
Rows report per-target eval RMSE and vectorize/don't decision accuracy
vs training-corpus size; the largest fit also gets a per-category
breakdown table on the eval corpus.

``python -m repro.experiments corpus …`` is the standalone CLI over
the same machinery (sweep a corpus, print throughput, optionally
publish the fitted model into a serve registry); ``--publish`` is the
registry hook the serve CI job smoke-tests.

E13 is *explicit-only*: ``all`` does not include it (a 1,500-kernel
sweep would distort the E1–E12 bench gates), so it runs only when
asked for by id, via the ``corpus`` CLI, or from the corpus CI job.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

import numpy as np

from ..costmodel.base import Sample, predict_all
from ..gen import corpus_names
from ..pipeline.corpus import CorpusResult, measure_corpus
from ..validation.metrics import confusion, rmse
from .base import ExperimentResult, fit_cached, make_speedup_model
from .categories import category_report
from .dataset import ARM_LLV, X86_SLP, DatasetSpec

__all__ = [
    "DEFAULT_SIZES",
    "corpus_kernel_names",
    "e13_sizes",
    "main",
    "publish_corpus_model",
    "run_e13",
]

#: Default learning-curve corpus sizes.  151 is the bare TSVC suite —
#: the paper's operating point — so the first row is the status quo
#: and every later row isolates what the synthetic kernels add.
DEFAULT_SIZES = (151, 400, 800, 1500)

#: Generator seed for the held-out eval corpus.  Must differ from the
#: training seed (0): eval kernels are sampled from the same taxonomy
#: but are never in any training corpus.
EVAL_SEED = 1
DEFAULT_EVAL_SIZE = 120


def e13_sizes() -> tuple[int, ...]:
    """Corpus sizes for the learning curve (``REPRO_E13_SIZES`` env)."""
    raw = os.environ.get("REPRO_E13_SIZES", "")
    if not raw.strip():
        return DEFAULT_SIZES
    sizes = sorted({int(tok) for tok in raw.replace(",", " ").split()})
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"bad REPRO_E13_SIZES {raw!r}")
    return tuple(sizes)


def corpus_kernel_names(size: int, *, seed: int = 0) -> list[str]:
    """The deterministic corpus of ``size`` kernel names.

    Suite kernels first (sorted, truncated when ``size`` is smaller
    than the suite), then generated names filling up to ``size``.
    Because ``corpus_names`` is prefix-stable, corpora of increasing
    size are *nested* — every kernel of the size-400 corpus is in the
    size-800 corpus — so learning curves measure added data, not a
    reshuffled sample.
    """
    from ..tsvc import kernel_names

    suite = sorted(kernel_names())
    if size <= len(suite):
        return suite[:size]
    return suite + corpus_names(size - len(suite), seed=seed)


def _eval_spec(spec: DatasetSpec) -> DatasetSpec:
    # Same measurement identity as training — only the kernel set
    # (different generator seed) separates eval from train.
    return spec


def _sweep(
    names: Sequence[str],
    spec: DatasetSpec,
    *,
    shards: int,
    workers: Optional[int],
    stream_dir: Optional[str],
    supervise: bool = True,
) -> CorpusResult:
    return measure_corpus(
        list(names),
        spec,
        shards=shards,
        workers=workers,
        stream_dir=stream_dir,
        supervise=supervise,
    )


def _eval_row(model, samples: Sequence[Sample]) -> dict:
    preds = predict_all(model, samples)
    measured = np.array([s.measured_speedup for s in samples])
    c = confusion(preds, measured)
    return {
        "eval rmse": round(rmse(preds, measured), 3),
        "decision acc": round(c.accuracy, 3),
        "false": c.false_predictions,
    }


def run_e13(
    spec_arm: Optional[DatasetSpec] = None,
    spec_x86: Optional[DatasetSpec] = None,
    *,
    sizes: Optional[Sequence[int]] = None,
    eval_size: Optional[int] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    stream_dir: Optional[str] = None,
) -> ExperimentResult:
    """Learning curves: eval RMSE / decision accuracy vs corpus size.

    For each target, every training corpus is a prefix-nested superset
    of the previous one; the eval corpus is generated from a disjoint
    seed and never trained on.  The fitted model at the largest size is
    stashed in ``result.series`` metadata consumers (the ``corpus`` CLI
    ``--publish`` hook) can reuse without refitting.
    """
    sizes = tuple(sizes) if sizes is not None else e13_sizes()
    eval_size = (
        int(os.environ.get("REPRO_E13_EVAL", DEFAULT_EVAL_SIZE))
        if eval_size is None
        else int(eval_size)
    )
    shards = (
        int(os.environ.get("REPRO_E13_SHARDS", "4"))
        if shards is None
        else int(shards)
    )
    res = ExperimentResult(
        "E13",
        "Learning curves on the synthetic kernel corpus "
        f"(sizes {', '.join(str(s) for s in sizes)})",
    )
    notes: list[str] = []
    final_models: dict[str, object] = {}
    final_samples: dict[str, list[Sample]] = {}
    for tag, spec, default in (
        ("arm", spec_arm, ARM_LLV),
        ("x86", spec_x86, X86_SLP),
    ):
        spec = default if spec is None else spec
        eval_names = corpus_names(eval_size, seed=EVAL_SEED)
        eval_res = _sweep(
            eval_names,
            _eval_spec(spec),
            shards=shards,
            workers=workers,
            stream_dir=stream_dir,
        )
        if not eval_res.samples:
            raise RuntimeError(
                f"E13 eval corpus produced no vectorized samples for "
                f"{spec.label}"
            )
        last_model = None
        for size in sizes:
            names = corpus_kernel_names(size, seed=spec.seed)
            train = _sweep(
                names,
                spec,
                shards=shards,
                workers=workers,
                stream_dir=stream_dir,
            )
            model = fit_cached(make_speedup_model("nnls"), train.samples)
            row = {
                "dataset": spec.label,
                "corpus": size,
                "vectorized": len(train.samples),
                **_eval_row(model, eval_res.samples),
            }
            res.rows.append(row)
            last_model = model
            if train.quarantined_names:
                notes.append(
                    f"{spec.label}@{size}: quarantined "
                    f"{', '.join(train.quarantined_names)}"
                )
            if size == sizes[-1]:
                final_models[tag] = model
                final_samples[tag] = list(train.samples)
        if last_model is not None:
            res.tables.append(
                (
                    f"{spec.label}: per-category eval breakdown "
                    f"(corpus {sizes[-1]}, eval n={len(eval_res.samples)})",
                    category_report(eval_res.samples, last_model),
                )
            )
        measured = np.array(
            [s.measured_speedup for s in eval_res.samples]
        )
        res.series[f"eval-measured-{tag}"] = measured
    res.notes = (
        "eval corpus is generated from seed "
        f"{EVAL_SEED} (disjoint from training); training corpora are "
        "prefix-nested. " + ("; ".join(notes) if notes else "no quarantines.")
    )
    # Non-serializable driver outputs for the publish hook; excluded
    # from to_text()/series comparisons by convention (dict, not rows).
    res.__dict__["_corpus_models"] = final_models
    res.__dict__["_corpus_samples"] = final_samples
    return res


def publish_corpus_model(
    model,
    samples: Sequence[Sample],
    spec: DatasetSpec,
    registry_root: str,
    *,
    max_rmse: Optional[float] = None,
):
    """Package an E13 fit and publish it into an on-disk registry.

    The entry's version is derived from the corpus fingerprint (the
    sample set hashes into ``dataset_fingerprint``), so republishing
    the same corpus is idempotent and a grown corpus gets a new
    version.  Returns the published :class:`ModelEntry`.
    """
    from ..serve.registry import ModelRegistry, entry_from_model

    entry = entry_from_model(
        model,
        list(samples),
        target=spec.target,
        vectorizer=spec.vectorizer,
    )
    registry = ModelRegistry(registry_root)
    return registry.publish(entry, max_rmse=max_rmse)


def main(argv: Optional[list[str]] = None) -> int:
    """The ``python -m repro.experiments corpus …`` CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments corpus",
        description="Sweep a generated kernel corpus (sharded), fit the "
        "serving model, and optionally publish it to a registry.",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=1500,
        help="total corpus size incl. the TSVC suite (default: %(default)s)",
    )
    parser.add_argument(
        "--shards", type=int, default=8, help="shard count (default: 8)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="pool workers per shard"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    parser.add_argument(
        "--spec",
        default="arm",
        choices=("arm", "x86"),
        help="measurement spec (default: arm)",
    )
    parser.add_argument(
        "--stream-dir",
        default=None,
        metavar="DIR",
        help="stream shard payloads through DIR (peak memory = 1 shard)",
    )
    parser.add_argument(
        "--publish",
        action="store_true",
        help="fit the serving model on the corpus and publish it",
    )
    parser.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="registry root for --publish "
        "(default: REPRO_SERVE_REGISTRY env or .repro-registry)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        dest="json_out",
        help="also write a machine-readable summary to FILE",
    )
    args = parser.parse_args(argv)

    spec = {"arm": ARM_LLV, "x86": X86_SLP}[args.spec]
    names = corpus_kernel_names(args.size, seed=args.seed)
    t0 = time.perf_counter()
    result = measure_corpus(
        names,
        spec,
        shards=args.shards,
        workers=args.workers,
        stream_dir=args.stream_dir,
    )
    sweep_s = time.perf_counter() - t0
    print(
        f"[corpus] {spec.label}: {len(names)} kernels in "
        f"{result.shards} shard(s) -> {len(result.samples)} vectorized, "
        f"{len(result.failures)} not vectorizable, "
        f"{len(result.quarantined_names)} quarantined in {sweep_s:.1f}s"
    )
    prebuilt = sum(st.native_prebuilt for st in result.shard_stats)
    if prebuilt:
        print(f"[corpus] native batch prebuild covered {prebuilt} kernels")
    summary = {
        "spec": spec.label,
        "size": args.size,
        "shards": result.shards,
        "vectorized": len(result.samples),
        "not_vectorizable": len(result.failures),
        "quarantined": result.quarantined_names,
        "sweep_s": round(sweep_s, 3),
        "native_prebuilt": prebuilt,
    }
    status = 1 if result.quarantined_names else 0
    if args.publish or args.json_out:
        model = fit_cached(make_speedup_model("nnls"), result.samples)
        row = _eval_row(model, result.samples)
        print(
            f"[corpus] in-sample: rmse {row['eval rmse']}, "
            f"decision accuracy {row['decision acc']}"
        )
        summary["fit"] = row
        if args.publish:
            root = args.registry or os.environ.get(
                "REPRO_SERVE_REGISTRY", ".repro-registry"
            )
            entry = publish_corpus_model(
                model, result.samples, spec, root
            )
            print(
                f"[corpus] published {entry.target}/{entry.vectorizer} "
                f"version {entry.version} (corpus fingerprint "
                f"{entry.dataset_fingerprint[:12]}) to {root}"
            )
            summary["published_version"] = entry.version
            summary["registry"] = root
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"[corpus] summary written to {args.json_out}")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
