"""Experiment registry: id → driver, as indexed in DESIGN.md §4."""

from __future__ import annotations

from typing import Callable

from .base import ExperimentResult
from . import drivers
from . import corpus as corpus_experiment


def _run_e14() -> ExperimentResult:
    # Imported lazily: repro.dse consumes this package's dataset/base
    # modules, so a top-level import here would be cyclic.
    from ..dse.experiment import run_e14

    return run_e14()


EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "E1": ("State of the art, ARM (slide 4)", drivers.run_e1),
    "E2": ("Linear modelling example (slide 6)", drivers.run_e2),
    "E3": ("Fitted for speedup, ARM (slide 8)", drivers.run_e3),
    "E4": ("Rated instruction count, ARM (slide 10)", drivers.run_e4),
    "E5": ("LOOCV NNLS, ARM (slide 11)", drivers.run_e5),
    "E6": ("Conclusion metrics (slide 12)", drivers.run_e6),
    "E7": ("LLV vs SLP example (slide 15)", drivers.run_e7),
    "E8": ("LOOCV L2, ARM (slide 16)", drivers.run_e8),
    "E9": ("State of the art, x86 (slide 17)", drivers.run_e9),
    "E10": ("Fitted for cost, x86 (slide 18)", drivers.run_e10),
    "E11": ("Fitted for speedup, x86 (slide 19)", drivers.run_e11),
    "E12": ("LOOCV SVR, ARM + x86 (beyond the paper)", drivers.run_e12),
    "E13": (
        "Learning curves, synthetic corpus (beyond the paper)",
        corpus_experiment.run_e13,
    ),
    "E14": ("Plan-space DSE regret (beyond the paper)", _run_e14),
}

#: Experiments that run only when named explicitly — never under
#: ``all`` / :func:`run_all`.  E13 sweeps a 1,500-kernel corpus and E14
#: measures every plan point of every kernel; folding either into the
#: default suite would distort the E1–E12 bench gates.
EXPLICIT_ONLY: frozenset[str] = frozenset({"E13", "E14"})


def run_experiment(eid: str) -> ExperimentResult:
    key = eid.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {eid!r}; known: {', '.join(EXPERIMENTS)}")
    return EXPERIMENTS[key][1]()


def run_all() -> list[ExperimentResult]:
    return [
        run_experiment(eid) for eid in EXPERIMENTS if eid not in EXPLICIT_ONLY
    ]
