"""Experiment scaffolding: results, the model zoo, and the engine memo.

The *engine memo* is the fitting-side analogue of the dataset memo:
E1–E12 share fitted models and LOOCV sweeps.  The suite fits, e.g.,
rated-NNLS on the ARM dataset in four different drivers (E4, E5, E6,
E7); with the memo the first caller pays and the rest reuse the
fitted model.  Keys are (dataset fingerprint, model name), so any
change to the sample list rebuilds.  ``REPRO_ENGINE_CACHE=0`` or
:func:`engine_cache_disabled` restores the per-driver seed behavior.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from ..costmodel.base import Sample, predict_all
from ..costmodel.linear import LinearCostModel
from ..costmodel.llvm_like import LLVMLikeCostModel
from ..costmodel.matrix import samples_fingerprint
from ..costmodel.rated import RatedSpeedupModel
from ..costmodel.speedup import SpeedupModel
from ..fitting import LeastSquares, LinearSVR, NonNegativeLeastSquares
from ..validation.loocv import loocv_predictions
from ..validation.metrics import EvalReport, evaluate
from .reporting import ascii_table, text_scatter


@dataclass
class ExperimentResult:
    """What one paper figure reproduces to.

    ``rows`` is the table the figure's caption would carry (one row per
    model/series); ``series`` holds the raw predicted/measured arrays
    so benches and EXPERIMENTS.md can recompute anything; ``notes``
    records interpretation and divergences.
    """

    id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    #: additional (title, rows) tables with their own column schema
    tables: list[tuple[str, list[dict]]] = field(default_factory=list)
    series: dict[str, np.ndarray] = field(default_factory=dict)
    scatters: dict[str, str] = field(default_factory=dict)
    notes: str = ""
    #: Driver wall time, filled by the suite scheduler.  Deliberately
    #: not rendered by ``to_text`` — report tables must stay
    #: bit-identical across serial/parallel/cached runs.
    wall_s: float = 0.0

    def to_text(self, include_scatter: bool = True) -> str:
        parts = [f"== {self.id}: {self.title} =="]
        if self.rows:
            parts.append(ascii_table(self.rows))
        for table_title, table_rows in self.tables:
            parts.append(ascii_table(table_rows, title=table_title))
        if include_scatter:
            for label, scatter in self.scatters.items():
                parts.append(scatter if not label else f"[{label}]\n{scatter}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n\n".join(parts)

    def row_for(self, model: str) -> dict:
        for r in self.rows:
            if r.get("model") == model:
                return r
        raise KeyError(f"no row for model {model!r} in {self.id}")


# -- the model zoo -----------------------------------------------------------


def make_baseline() -> LLVMLikeCostModel:
    return LLVMLikeCostModel()


def make_cost_model(method: str) -> LinearCostModel:
    return LinearCostModel(_regressor(method))


def make_speedup_model(method: str) -> SpeedupModel:
    return SpeedupModel(_regressor(method))


def make_rated_model(method: str) -> RatedSpeedupModel:
    return RatedSpeedupModel(_regressor(method))


def _regressor(method: str):
    key = method.lower()
    if key == "l2":
        return LeastSquares()
    if key == "nnls":
        return NonNegativeLeastSquares()
    if key == "svr":
        return LinearSVR()
    raise ValueError(f"unknown fitting method {method!r}")


# -- the engine memo ---------------------------------------------------------

_ENGINE_ENABLED = os.environ.get("REPRO_ENGINE_CACHE", "1") != "0"
_ENGINE_LOCK = threading.Lock()
_ENGINE_MEMO: dict[tuple, object] = {}
_ENGINE_KEY_LOCKS: dict[tuple, threading.Lock] = {}
_ENGINE_HITS = 0
_ENGINE_MISSES = 0


def clear_engine_cache() -> None:
    """Drop every memoized fit/LOOCV result (datasets survive)."""
    global _ENGINE_HITS, _ENGINE_MISSES
    with _ENGINE_LOCK:
        _ENGINE_MEMO.clear()
        _ENGINE_KEY_LOCKS.clear()
        _ENGINE_HITS = 0
        _ENGINE_MISSES = 0


def engine_cache_info() -> dict:
    with _ENGINE_LOCK:
        return {
            "enabled": _ENGINE_ENABLED,
            "entries": len(_ENGINE_MEMO),
            "hits": _ENGINE_HITS,
            "misses": _ENGINE_MISSES,
        }


@contextmanager
def engine_cache_disabled() -> Iterator[None]:
    """Every driver refits everything itself (seed-path emulation)."""
    global _ENGINE_ENABLED
    prior = _ENGINE_ENABLED
    _ENGINE_ENABLED = False
    try:
        yield
    finally:
        _ENGINE_ENABLED = prior


def _engine_memo(key: tuple, compute: Callable[[], object]) -> object:
    """Compute-once memo with per-key locking.

    Concurrent drivers asking for the same (dataset, model) pair block
    on the key's lock and share one computation; distinct keys never
    serialize against each other.
    """
    global _ENGINE_HITS, _ENGINE_MISSES
    with _ENGINE_LOCK:
        if key in _ENGINE_MEMO:
            _ENGINE_HITS += 1
            return _ENGINE_MEMO[key]
        key_lock = _ENGINE_KEY_LOCKS.setdefault(key, threading.Lock())
    with key_lock:
        with _ENGINE_LOCK:
            if key in _ENGINE_MEMO:
                _ENGINE_HITS += 1
                return _ENGINE_MEMO[key]
        value = compute()
        with _ENGINE_LOCK:
            _ENGINE_MISSES += 1
            _ENGINE_MEMO[key] = value
    return value


def fit_cached(model, samples: Sequence[Sample]):
    """Fit ``model`` on ``samples`` — or return the already-fitted
    model another driver produced for the same (dataset, model name).

    The returned instance may not be the one passed in; fitted models
    are immutable after ``fit`` in this codebase, so sharing is safe.
    """
    if not _ENGINE_ENABLED:
        return model.fit(samples)
    key = ("fit", samples_fingerprint(samples), model.name)
    return _engine_memo(key, lambda: model.fit(samples))


def loocv_cached(
    factory: Callable[[], object],
    samples: Sequence[Sample],
    stats: Optional[dict] = None,
) -> np.ndarray:
    """LOOCV predictions, deduped like :func:`fit_cached`.

    ``stats`` receives the fast-path accounting (e.g. the SVR warm
    certificate) whether the sweep was computed or replayed from the
    memo.  The returned array is a private copy.
    """
    if not _ENGINE_ENABLED:
        return loocv_predictions(factory, samples, stats=stats)
    probe = factory()
    key = ("loocv", samples_fingerprint(samples), probe.name)

    def compute() -> tuple[np.ndarray, dict]:
        st: dict = {}
        preds = loocv_predictions(factory, samples, stats=st)
        return preds, st

    preds, st = _engine_memo(key, compute)
    if stats is not None:
        stats.update(st)
    return preds.copy()


def fit_and_report(
    model,
    samples: Sequence[Sample],
    measured: np.ndarray,
    fit: bool = True,
) -> tuple[EvalReport, np.ndarray]:
    """Fit on the full set and evaluate in-sample (the slides' setup
    for the non-LOOCV figures).  Fit, predictions and report are all
    served from the engine memo when another driver already asked for
    the same (dataset, model, targets) triple."""
    if not _ENGINE_ENABLED:
        if fit:
            model.fit(samples)
        preds = predict_all(model, samples)
        return evaluate(model.name, preds, measured), preds
    measured = np.asarray(measured, dtype=np.float64)
    key = (
        "report",
        samples_fingerprint(samples),
        model.name,
        fit,
        hashlib.sha1(measured.tobytes()).hexdigest(),
    )

    def compute() -> tuple[EvalReport, np.ndarray]:
        fitted = fit_cached(model, samples) if fit else model
        preds = predict_all(fitted, samples)
        return evaluate(fitted.name, preds, measured), preds

    report, preds = _engine_memo(key, compute)
    return report, preds.copy()


def scatter_for(
    result: ExperimentResult,
    label: str,
    preds: np.ndarray,
    measured: np.ndarray,
    vf: Optional[int] = None,
) -> None:
    result.series[f"{label}.predicted"] = np.asarray(preds)
    result.series.setdefault("measured", np.asarray(measured))
    result.scatters[label] = text_scatter(
        preds, measured, title=f"{label}: estimated vs measured speedup"
    )
