"""Experiment scaffolding: results, and the model zoo every driver uses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..costmodel.base import CostModel, Sample, predict_all
from ..costmodel.linear import LinearCostModel
from ..costmodel.llvm_like import LLVMLikeCostModel
from ..costmodel.rated import RatedSpeedupModel
from ..costmodel.speedup import SpeedupModel
from ..fitting import LeastSquares, LinearSVR, NonNegativeLeastSquares
from ..validation.metrics import EvalReport, evaluate
from .reporting import ascii_table, text_scatter


@dataclass
class ExperimentResult:
    """What one paper figure reproduces to.

    ``rows`` is the table the figure's caption would carry (one row per
    model/series); ``series`` holds the raw predicted/measured arrays
    so benches and EXPERIMENTS.md can recompute anything; ``notes``
    records interpretation and divergences.
    """

    id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    #: additional (title, rows) tables with their own column schema
    tables: list[tuple[str, list[dict]]] = field(default_factory=list)
    series: dict[str, np.ndarray] = field(default_factory=dict)
    scatters: dict[str, str] = field(default_factory=dict)
    notes: str = ""

    def to_text(self, include_scatter: bool = True) -> str:
        parts = [f"== {self.id}: {self.title} =="]
        if self.rows:
            parts.append(ascii_table(self.rows))
        for table_title, table_rows in self.tables:
            parts.append(ascii_table(table_rows, title=table_title))
        if include_scatter:
            for label, scatter in self.scatters.items():
                parts.append(scatter if not label else f"[{label}]\n{scatter}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n\n".join(parts)

    def row_for(self, model: str) -> dict:
        for r in self.rows:
            if r.get("model") == model:
                return r
        raise KeyError(f"no row for model {model!r} in {self.id}")


# -- the model zoo -----------------------------------------------------------


def make_baseline() -> LLVMLikeCostModel:
    return LLVMLikeCostModel()


def make_cost_model(method: str) -> LinearCostModel:
    return LinearCostModel(_regressor(method))


def make_speedup_model(method: str) -> SpeedupModel:
    return SpeedupModel(_regressor(method))


def make_rated_model(method: str) -> RatedSpeedupModel:
    return RatedSpeedupModel(_regressor(method))


def _regressor(method: str):
    key = method.lower()
    if key == "l2":
        return LeastSquares()
    if key == "nnls":
        return NonNegativeLeastSquares()
    if key == "svr":
        return LinearSVR()
    raise ValueError(f"unknown fitting method {method!r}")


def fit_and_report(
    model,
    samples: Sequence[Sample],
    measured: np.ndarray,
    fit: bool = True,
) -> tuple[EvalReport, np.ndarray]:
    """Fit on the full set and evaluate in-sample (the slides' setup
    for the non-LOOCV figures)."""
    if fit:
        model.fit(samples)
    preds = predict_all(model, samples)
    return evaluate(model.name, preds, measured), preds


def scatter_for(
    result: ExperimentResult,
    label: str,
    preds: np.ndarray,
    measured: np.ndarray,
    vf: Optional[int] = None,
) -> None:
    result.series[f"{label}.predicted"] = np.asarray(preds)
    result.series.setdefault("measured", np.asarray(measured))
    result.scatters[label] = text_scatter(
        preds, measured, title=f"{label}: estimated vs measured speedup"
    )
