"""CLI: ``python -m repro.experiments analyze <kernel…|--suite>``.

Static analysis without measurement: every requested kernel is
verified, linted, and put through the vectorization legality check,
and the resulting LLVM-style remarks are printed (``-Rpass`` /
``-Rpass-missed`` equivalents).  ``--ranges`` adds the value-range
layer — per-access bounds verdicts, constant-guard and shift-count
proofs, and the ``prove_safe`` classification — to the output and the
JSON report; ``--crosscheck`` replays every static range claim against
concrete execution and turns contradictions into errors.  ``--json``
additionally writes the machine-readable report; ``--strict`` exits
non-zero when any warning or error survives, which is how CI gates the
suite.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..analysis.framework.diagnostics import Diagnostics, Remark, Severity
from ..analysis.framework.lint import lint_kernel
from ..analysis.framework.passmanager import default_manager
from ..analysis.framework.ranges import (
    PASS_BOUNDS,
    BoundsCheckPass,
    GuardRangePass,
    crosscheck_kernel,
    prove_safe,
)
from ..ir.verify import VerificationError, verify_kernel
from ..targets.registry import get_target
from ..tsvc.suite import get_kernel, kernel_names
from ..vectorize.legality import PASS as VEC_PASS
from ..vectorize.legality import check_legality, natural_vf


def analyze_kernel(
    name: str,
    target_name: str = "neon",
    vf: Optional[int] = None,
    *,
    ranges: bool = False,
    crosscheck: bool = False,
) -> dict:
    """Analyze one suite kernel; returns the JSON-shaped report entry."""
    kernel = get_kernel(name)
    target = get_target(target_name)
    diags = Diagnostics()

    try:
        verify_kernel(kernel)
    except VerificationError as err:
        diags.emit(
            Remark(
                severity=Severity.ERROR,
                pass_name="verify",
                kernel=name,
                message=str(err),
            )
        )
        return _entry(name, None, None, "verification failed", diags)

    diags.extend(lint_kernel(kernel, default_manager()))

    ranges_info = None
    if ranges:
        ranges_info = _ranges_entry(kernel, name, diags)
    if crosscheck:
        for msg in crosscheck_kernel(kernel, manager=default_manager()):
            diags.emit(
                Remark(
                    severity=Severity.ERROR,
                    pass_name="ranges-crosscheck",
                    kernel=name,
                    message=f"static/dynamic contradiction: {msg}",
                )
            )

    chosen_vf = vf if vf is not None else natural_vf(kernel, target)
    legality = check_legality(kernel, chosen_vf)
    if legality.ok:
        diags.remark(
            VEC_PASS,
            name,
            f"loop vectorized (VF={chosen_vf}, max safe VF "
            f"{_fmt_vf(legality.max_safe_vf)})",
            args=(("vf", str(chosen_vf)),),
        )
        return _entry(name, True, chosen_vf, None, diags, ranges_info)

    diags.extend(legality.remarks)
    return _entry(name, False, chosen_vf, legality.reason, diags, ranges_info)


def _ranges_entry(kernel, name: str, diags: Diagnostics) -> dict:
    """Run the range-analysis layer; returns its JSON block.

    Consumes the pass results' own ``remarks`` tuples (not the shared
    manager diagnostics, which accumulate across kernels) so each entry
    only carries its own proofs.
    """
    am = default_manager()
    bounds = am.get(BoundsCheckPass, kernel)
    guards = am.get(GuardRangePass, kernel)
    safety = prove_safe(kernel, am)
    diags.extend(bounds.remarks)
    diags.extend(guards.remarks)
    if safety.classification == "proven-unsafe":
        diags.emit(
            Remark(
                severity=Severity.WARNING,
                pass_name=PASS_BOUNDS,
                kernel=name,
                message=(
                    "kernel classified proven-unsafe: " + safety.reasons[0]
                ),
            )
        )
    return {
        "safety": safety.to_dict(),
        "bounds": bounds.to_dict(),
        "guards": guards.to_dict(),
    }


def _fmt_vf(vf: float) -> str:
    return "inf" if vf == float("inf") else str(int(vf))


def _entry(
    name: str,
    vectorized: Optional[bool],
    vf: Optional[int],
    reason: Optional[str],
    diags: Diagnostics,
    ranges_info: Optional[dict] = None,
) -> dict:
    remarks = []
    for r in diags.remarks():
        rd = r.to_dict()
        # Framework-level diagnostics may omit the kernel name (a pass
        # emitting about the manager itself); stamp it so every row in
        # the JSON report is attributable.
        rd["kernel"] = rd.get("kernel") or name
        remarks.append(rd)
    entry = {
        "kernel": name,
        "vectorized": vectorized,
        "vf": vf,
        "reason": reason,
        "remarks": remarks,
        "max_severity": (
            diags.max_severity().value if diags.remarks() else None
        ),
    }
    if ranges_info is not None:
        entry["ranges"] = ranges_info
    return entry


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments analyze",
        description="Static analysis: verify, lint, and explain "
        "vectorization legality as LLVM-style remarks.",
    )
    parser.add_argument("kernels", nargs="*", help="TSVC kernel names")
    parser.add_argument(
        "--suite", action="store_true", help="analyze every suite kernel"
    )
    parser.add_argument(
        "--target", default="neon", help="target for VF selection (default: neon)"
    )
    parser.add_argument(
        "--vf", type=int, default=None, help="override the vectorization factor"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--ranges",
        action="store_true",
        help="include value-range analysis: bounds/guard proofs, "
        "prove_safe classification, and the per-kernel range report",
    )
    parser.add_argument(
        "--crosscheck",
        action="store_true",
        help="replay static range claims against concrete execution; "
        "contradictions become errors (and fail --strict)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any warning or error is emitted",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print the summary line"
    )
    args = parser.parse_args(argv)

    if args.suite:
        names = list(kernel_names())
    elif args.kernels:
        names = args.kernels
    else:
        parser.error("name at least one kernel, or pass --suite")

    known = set(kernel_names())
    unknown = [n for n in names if n not in known]
    if unknown:
        print(f"unknown kernels: {', '.join(unknown)}", file=sys.stderr)
        return 2

    entries = [
        analyze_kernel(
            n,
            args.target,
            args.vf,
            ranges=args.ranges,
            crosscheck=args.crosscheck,
        )
        for n in names
    ]

    n_warn = n_err = 0
    for entry in entries:
        for rd in entry["remarks"]:
            if rd["severity"] == "error":
                n_err += 1
            elif rd["severity"] == "warning":
                n_warn += 1
        if not args.quiet:
            for rd in entry["remarks"]:
                print(_format_dict(rd))

    n_vec = sum(1 for e in entries if e["vectorized"])
    n_not = sum(1 for e in entries if e["vectorized"] is False)
    print(
        f"[analyze] {len(entries)} kernels: {n_vec} vectorized, "
        f"{n_not} not vectorized; {n_warn} warnings, {n_err} errors"
    )
    ranges_summary = None
    if args.ranges:
        ranged = [e["ranges"] for e in entries if e.get("ranges")]
        ranges_summary = {
            "proven_safe": sum(
                1
                for r in ranged
                if r["safety"]["classification"] == "proven-safe"
            ),
            "proven_unsafe": sum(
                1
                for r in ranged
                if r["safety"]["classification"] == "proven-unsafe"
            ),
            "unknown": sum(
                1 for r in ranged if r["safety"]["classification"] == "unknown"
            ),
            "gathers_total": sum(r["bounds"]["gathers_total"] for r in ranged),
            "gathers_proven": sum(
                r["bounds"]["gathers_proven"] for r in ranged
            ),
        }
        print(
            "[analyze] ranges: "
            f"{ranges_summary['proven_safe']} proven-safe, "
            f"{ranges_summary['proven_unsafe']} proven-unsafe, "
            f"{ranges_summary['unknown']} unknown; "
            f"{ranges_summary['gathers_proven']}/"
            f"{ranges_summary['gathers_total']} gather/scatter proven"
        )

    if args.json:
        report = {
            "target": args.target,
            "vf": args.vf,
            "kernels": entries,
            "summary": {
                "analyzed": len(entries),
                "vectorized": n_vec,
                "not_vectorized": n_not,
                "warnings": n_warn,
                "errors": n_err,
            },
        }
        if ranges_summary is not None:
            report["summary"]["ranges"] = ranges_summary
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"[analyze] JSON report written to {args.json}")

    if args.strict and (n_warn or n_err):
        return 1
    return 0


def _format_dict(rd: dict) -> str:
    loc = f":S{rd['stmt_index']}" if rd.get("stmt_index") is not None else ""
    return (
        f"{rd['kernel']}{loc}: {rd['severity']}: {rd['message']} "
        f"[{rd['flag']}={rd['pass']}]"
    )


if __name__ == "__main__":
    sys.exit(main())
