"""Suite scheduler: one fast invocation for E1–E12.

``run_suite`` is what ``python -m repro.experiments all`` executes:

1. **Pre-build phase** — every unique :class:`DatasetSpec` the selected
   experiments need is built exactly once (the dataset memo makes the
   build shared; doing it up front keeps the measurement sweeps — which
   parallelize internally across worker processes — out of the driver
   executor).
2. **Driver phase** — the drivers run on a bounded thread executor.
   They are measurement-free after the pre-build (pure linear algebra
   over the shared matrix bundles plus the engine memo), so threads are
   the right tool: the heavy numpy/scipy kernels drop the GIL, and on a
   single-CPU host the scheduler degrades to the serial order with no
   pool overhead.

Per-experiment wall time is recorded on each result (``wall_s``) and in
the returned :class:`SuiteRun`; the report tables themselves stay
bit-identical between serial and parallel runs — that property is
asserted by the benchmarks and CI.

``seed_mode`` recreates the pre-engine behavior (no matrix bundles, no
engine memo, cold SVR folds, serial drivers) so the benchmarks can
measure the engine against the path it replaced.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..costmodel.matrix import matrix_cache_disabled
from ..validation.loocv import svr_warm_disabled
from .base import ExperimentResult, engine_cache_disabled
from .dataset import ARM_LLV, X86_SLP, DatasetSpec, build_dataset
from .registry import EXPERIMENTS, EXPLICIT_ONLY

#: Datasets each driver needs, used by the pre-build phase.  E7
#: measures two extra kernel variants on top of the ARM dataset; E12
#: consumes both targets.
SPEC_REQUIREMENTS: dict[str, tuple[DatasetSpec, ...]] = {
    "E1": (ARM_LLV,),
    "E2": (ARM_LLV,),
    "E3": (ARM_LLV,),
    "E4": (ARM_LLV,),
    "E5": (ARM_LLV,),
    "E6": (ARM_LLV,),
    "E7": (ARM_LLV,),
    "E8": (ARM_LLV,),
    "E9": (X86_SLP,),
    "E10": (X86_SLP,),
    "E11": (X86_SLP,),
    "E12": (ARM_LLV, X86_SLP),
    # E13 sweeps its own generated corpora through measure_corpus; it
    # deliberately bypasses the suite dataset memo, so nothing to
    # pre-build here.
    "E13": (),
    # E14 fits its cost oracle on the ARM dataset before searching.
    "E14": (ARM_LLV,),
}


@dataclass
class SuiteRun:
    """One ``run_suite`` invocation: ordered results plus timings."""

    results: list[ExperimentResult]
    mode: str  # "parallel" | "serial"
    jobs: int
    build_s: float
    drivers_s: float
    total_s: float
    wall_by_id: dict[str, float] = field(default_factory=dict)

    def tables_text(self) -> list[str]:
        """The rendered report tables (no scatters) — the strings the
        serial/parallel bit-identity gate compares."""
        return [r.to_text(include_scatter=False) for r in self.results]


def normalize_ids(ids: Optional[Sequence[str]] = None) -> list[str]:
    """Validate and order experiment ids (registry order, deduped).

    ``all`` (and the empty default) excludes explicit-only experiments
    — E13's corpus sweep runs only when named, so the E1–E12 bench and
    parity gates keep their workload.
    """
    if not ids or any(i.lower() == "all" for i in ids):
        return [eid for eid in EXPERIMENTS if eid not in EXPLICIT_ONLY]
    wanted = []
    for i in ids:
        key = i.upper()
        if key not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {i!r}; known: {', '.join(EXPERIMENTS)}"
            )
        if key not in wanted:
            wanted.append(key)
    return [eid for eid in EXPERIMENTS if eid in wanted]


def required_specs(ids: Sequence[str]) -> list[DatasetSpec]:
    """Unique dataset specs the given experiments consume, in order."""
    specs: list[DatasetSpec] = []
    for eid in ids:
        for spec in SPEC_REQUIREMENTS.get(eid, ()):
            if spec not in specs:
                specs.append(spec)
    return specs


def default_jobs(n_tasks: int) -> int:
    """Bounded executor width: enough threads to overlap the suite's
    independent drivers, never more than there are tasks."""
    cpus = os.cpu_count() or 1
    return max(1, min(n_tasks, max(2, cpus)))


def run_suite(
    ids: Optional[Sequence[str]] = None,
    *,
    parallel: bool = True,
    jobs: Optional[int] = None,
) -> SuiteRun:
    """Run the selected experiments through the engine (see module doc)."""
    ids = normalize_ids(ids)
    t_start = time.perf_counter()
    for spec in required_specs(ids):
        build_dataset(spec)
    build_s = time.perf_counter() - t_start

    def _run(eid: str) -> ExperimentResult:
        t0 = time.perf_counter()
        result = EXPERIMENTS[eid][1]()
        result.wall_s = time.perf_counter() - t0
        return result

    t_drivers = time.perf_counter()
    n_jobs = 1
    if parallel and len(ids) > 1:
        n_jobs = jobs if jobs and jobs > 0 else default_jobs(len(ids))
    if n_jobs > 1:
        with ThreadPoolExecutor(max_workers=n_jobs) as pool:
            results = list(pool.map(_run, ids))
    else:
        results = [_run(eid) for eid in ids]
    now = time.perf_counter()
    return SuiteRun(
        results=results,
        mode="parallel" if n_jobs > 1 else "serial",
        jobs=n_jobs,
        build_s=build_s,
        drivers_s=now - t_drivers,
        total_s=now - t_start,
        wall_by_id={r.id: r.wall_s for r in results},
    )


@contextmanager
def seed_mode() -> Iterator[None]:
    """Disable every engine layer at once: per-call feature stacking,
    per-driver refits, cold SVR folds.  The benchmarks run the suite
    under this to measure the seed path the engine replaced."""
    with matrix_cache_disabled(), engine_cache_disabled(), svr_warm_disabled():
        yield


def bench_suite(
    ids: Optional[Sequence[str]] = None, jobs: Optional[int] = None
) -> dict:
    """Four timed suite passes + the parity checks; the payload of
    ``BENCH_experiments.json``.

    * ``seed``: serial drivers under :func:`seed_mode` — the per-driver
      path this PR replaced (measurement cache warm in all passes, so
      the comparison isolates the fitting-side engine).
    * ``engine_cold``: fresh fitting-side caches, parallel drivers.
    * ``engine_warm``: same invocation again, everything memoized.
    * ``engine_serial``: fresh caches, serial drivers — must produce
      bit-identical report tables to the parallel pass.
    """
    from ..costmodel.matrix import clear_matrix_cache
    from .base import clear_engine_cache, loocv_cached

    ids = normalize_ids(ids)
    for spec in required_specs(ids):
        build_dataset(spec)

    with seed_mode():
        seed_run = run_suite(ids, parallel=False)
    clear_matrix_cache()
    clear_engine_cache()
    cold_run = run_suite(ids, parallel=True, jobs=jobs)
    warm_run = run_suite(ids, parallel=True, jobs=jobs)
    clear_matrix_cache()
    clear_engine_cache()
    serial_run = run_suite(ids, parallel=False)

    parity = cold_run.tables_text() == serial_run.tables_text()
    # E12's LOOCV is objective-level equivalent (not bitwise) between
    # warm and cold folds, so seed-vs-engine table identity is only
    # claimed for the paper experiments.
    paper = [i for i, eid in enumerate(ids) if eid != "E12"]
    seed_tables = seed_run.tables_text()
    cold_tables = cold_run.tables_text()
    seed_parity = all(seed_tables[i] == cold_tables[i] for i in paper)

    svr_warm = {}
    if "E12" in ids:
        from .drivers import _rated_svr_factory

        for spec in (ARM_LLV, X86_SLP):
            ds = build_dataset(spec)
            st: dict = {}
            loocv_cached(_rated_svr_factory, ds.samples, stats=st)
            warm = st.get("svr_warm")
            if warm is not None:
                svr_warm[spec.label] = {
                    "folds": warm.folds,
                    "accepted": warm.accepted,
                    "acceptance": round(warm.acceptance, 4),
                }

    def _times(run: SuiteRun) -> dict:
        return {
            "total_s": round(run.total_s, 4),
            "drivers_s": round(run.drivers_s, 4),
            "mode": run.mode,
            "jobs": run.jobs,
            "wall_by_id": {k: round(v, 4) for k, v in run.wall_by_id.items()},
        }

    return {
        "ids": ids,
        "cpu_count": os.cpu_count(),
        "seed": _times(seed_run),
        "engine_cold": _times(cold_run),
        "engine_warm": _times(warm_run),
        "engine_serial": _times(serial_run),
        "speedup_vs_seed": round(seed_run.total_s / max(cold_run.total_s, 1e-9), 2),
        "warm_speedup_vs_seed": round(
            seed_run.total_s / max(warm_run.total_s, 1e-9), 2
        ),
        "parallel_serial_tables_identical": parity,
        "seed_engine_tables_identical_e1_e11": seed_parity,
        "svr_warm": svr_warm,
    }
