"""Per-category breakdown of model quality over the TSVC suite.

TSVC is organized by the compiler capability each loop probes; slicing
prediction quality along those categories shows *where* a cost model
earns its correlation (reductions, control flow, indirect addressing…)
— the level at which the paper's conclusion talks about covering "all
instruction types".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..costmodel.base import CostModel, Sample, predict_all
from ..validation.metrics import confusion, pearson, rmse


def category_report(
    samples: Sequence[Sample],
    model: CostModel,
    min_size: int = 3,
) -> list[dict]:
    """One row per TSVC category with ≥ ``min_size`` vectorized loops.

    Rows report the category's size, measured-speedup range, the
    model's RMSE there, and its false decisions.  Pearson r is only
    shown for categories big enough for it to mean anything.
    """
    preds = predict_all(model, samples)
    measured = np.array([s.measured_speedup for s in samples])
    by_cat: dict[str, list[int]] = {}
    for j, s in enumerate(samples):
        by_cat.setdefault(s.category, []).append(j)

    rows: list[dict] = []
    for cat in sorted(by_cat):
        idx = by_cat[cat]
        if len(idx) < min_size:
            continue
        p, m = preds[idx], measured[idx]
        c = confusion(p, m)
        row = {
            "category": cat,
            "n": len(idx),
            "measured (med)": round(float(np.median(m)), 2),
            "rmse": round(rmse(p, m), 2),
            "false": c.false_predictions,
        }
        if len(idx) >= 5:
            row["pearson"] = round(pearson(p, m), 2)
        rows.append(row)
    return rows


def worst_categories(
    samples: Sequence[Sample], model: CostModel, k: int = 3
) -> list[str]:
    """The ``k`` categories where the model's RMSE is highest."""
    rows = category_report(samples, model, min_size=3)
    rows.sort(key=lambda r: -r["rmse"])
    return [r["category"] for r in rows[:k]]
