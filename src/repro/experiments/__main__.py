"""CLI: ``python -m repro.experiments [E1 E2 … | all] [--no-scatter]``.

Runs the requested paper-figure reproductions and prints their tables
and text scatters.  Measurement-pipeline knobs (worker processes, the
persistent cache) are configured here and apply to every dataset the
selected experiments build.

``python -m repro.experiments analyze …`` dispatches to the static
analysis CLI instead (see :mod:`.analyze`), and ``… chaos`` to the
fault-injection parity check (see :mod:`repro.pipeline.faultinject`).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..pipeline import configure, default_cache
from .registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "analyze":
        from .analyze import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "chaos":
        from ..pipeline.faultinject import main as chaos_main

        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures (see DESIGN.md §4).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["all"],
        help="experiment ids (E1..E11) or 'all'",
    )
    parser.add_argument(
        "--no-scatter", action="store_true", help="omit the text scatter plots"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    pipe = parser.add_argument_group("measurement pipeline")
    pipe.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="measurement processes per dataset build "
        "(default: REPRO_WORKERS env or cpu count; 1 = serial)",
    )
    pipe.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent measurement-cache directory "
        "(default: REPRO_CACHE_DIR env or ~/.cache/repro-vec)",
    )
    pipe.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent measurement cache",
    )
    pipe.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete all persistent cache entries before running",
    )
    pipe.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss statistics after the run",
    )
    pipe.add_argument(
        "--compile-stats",
        action="store_true",
        help="print kernel-compiler statistics (vector/scalar split, "
        "demotions, cache hit rate) after the run",
    )
    fault = parser.add_argument_group("fault tolerance")
    fault.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-kernel measurement deadline; a worker that exceeds it "
        "is killed and the kernel retried (default: REPRO_TIMEOUT env "
        "or no deadline)",
    )
    fault.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="attempts per kernel before quarantine "
        "(default: REPRO_MAX_ATTEMPTS env or 3)",
    )
    fault.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal completed measurements here so an interrupted "
        "sweep can be resumed (default: REPRO_CHECKPOINT_DIR env; "
        "off when unset)",
    )
    fault.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint journal: only kernels the previous "
        "(interrupted) sweep never completed are re-measured",
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid, (title, _) in EXPERIMENTS.items():
            print(f"{eid:4s} {title}")
        return 0

    configure(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_enabled=False if args.no_cache else None,
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        checkpoint_dir=args.checkpoint_dir,
        resume=True if args.resume else None,
    )
    if args.resume and args.checkpoint_dir is None:
        # --resume without a directory still needs a journal to read.
        from ..pipeline import default_checkpoint_dir

        configure(checkpoint_dir=str(default_checkpoint_dir()))
    if args.clear_cache:
        removed = default_cache().clear()
        print(f"[cache] cleared {removed} entries from {default_cache().root}")

    ids = list(EXPERIMENTS) if "all" in [i.lower() for i in args.ids] else args.ids
    for eid in ids:
        t0 = time.time()
        result = run_experiment(eid)
        print(result.to_text(include_scatter=not args.no_scatter))
        print(f"[{eid} completed in {time.time() - t0:.1f}s]\n")
    if args.cache_stats:
        print(f"[{default_cache().stats}]")
    if args.compile_stats:
        from ..sim import compile_summary

        summary = compile_summary()
        print(
            "[compile] "
            + ", ".join(f"{k}={v}" for k, v in summary.items())
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
