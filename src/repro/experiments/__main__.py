"""CLI: ``python -m repro.experiments [E1 E2 … | all] [--no-scatter]``.

Runs the requested paper-figure reproductions and prints their tables
and text scatters.
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures (see DESIGN.md §4).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["all"],
        help="experiment ids (E1..E11) or 'all'",
    )
    parser.add_argument(
        "--no-scatter", action="store_true", help="omit the text scatter plots"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid, (title, _) in EXPERIMENTS.items():
            print(f"{eid:4s} {title}")
        return 0

    ids = list(EXPERIMENTS) if "all" in [i.lower() for i in args.ids] else args.ids
    for eid in ids:
        t0 = time.time()
        result = run_experiment(eid)
        print(result.to_text(include_scatter=not args.no_scatter))
        print(f"[{eid} completed in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
