"""CLI: ``python -m repro.experiments [E1 E2 … | all] [--no-scatter]``.

Runs the requested paper-figure reproductions through the suite
scheduler — shared dataset builds, shared fitted models, drivers on a
bounded executor (``--serial`` / ``--jobs`` control it) — and prints
their tables and text scatters.  ``--bench`` times the engine against
the per-driver seed path and writes ``BENCH_experiments.json``.
Measurement-pipeline knobs (worker processes, the persistent cache)
are configured here and apply to every dataset the selected
experiments build.

``python -m repro.experiments analyze …`` dispatches to the static
analysis CLI instead (see :mod:`.analyze`), ``… chaos`` to the
fault-injection parity check (see :mod:`repro.pipeline.faultinject`),
``… serve`` to the advisor service (see :mod:`repro.serve.server`),
``… serve-chaos`` to the service-level chaos gate (see
:mod:`repro.serve.chaos`), ``… corpus`` to the sharded synthetic
corpus sweep (see :mod:`.corpus`), and ``… dse`` to the plan-space
search experiment (see :mod:`repro.dse.experiment`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..pipeline import configure, default_cache
from .registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "analyze":
        from .analyze import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "chaos":
        from ..pipeline.faultinject import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "serve":
        from ..serve.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "serve-chaos":
        from ..serve.chaos import main as serve_chaos_main

        return serve_chaos_main(argv[1:])
    if argv and argv[0] == "corpus":
        from .corpus import main as corpus_main

        return corpus_main(argv[1:])
    if argv and argv[0] == "dse":
        from ..dse.experiment import main as dse_main

        return dse_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures (see DESIGN.md §4).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["all"],
        help="experiment ids (E1..E14) or 'all' (E13/E14 run only when "
        "named explicitly)",
    )
    parser.add_argument(
        "--no-scatter", action="store_true", help="omit the text scatter plots"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    sched = parser.add_argument_group("suite scheduler")
    sched.add_argument(
        "--parallel",
        action="store_true",
        default=True,
        help="run independent drivers on a bounded thread executor "
        "(the default; report tables are bit-identical to --serial)",
    )
    sched.add_argument(
        "--serial",
        dest="parallel",
        action="store_false",
        help="run the drivers one after another",
    )
    sched.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="driver threads for --parallel (default: bounded by cpu "
        "count and the number of selected experiments)",
    )
    sched.add_argument(
        "--bench",
        action="store_true",
        help="time the engine against the per-driver seed path (4 suite "
        "passes), assert serial/parallel table parity, and write the "
        "results to --bench-out",
    )
    sched.add_argument(
        "--bench-out",
        default="BENCH_experiments.json",
        metavar="FILE",
        help="where --bench writes its timings (default: %(default)s)",
    )
    pipe = parser.add_argument_group("measurement pipeline")
    pipe.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="measurement processes per dataset build "
        "(default: REPRO_WORKERS env or cpu count; 1 = serial)",
    )
    pipe.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent measurement-cache directory "
        "(default: REPRO_CACHE_DIR env or ~/.cache/repro-vec)",
    )
    pipe.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent measurement cache",
    )
    pipe.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete all persistent cache entries before running",
    )
    pipe.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss statistics after the run",
    )
    pipe.add_argument(
        "--no-native",
        action="store_true",
        help="disable the native compiled tier (sets REPRO_NATIVE=0; "
        "kernels run through the NumPy/codegen tiers instead)",
    )
    pipe.add_argument(
        "--compile-stats",
        action="store_true",
        help="print kernel-compiler statistics (vector/scalar split, "
        "demotions, cache hit rate) after the run",
    )
    fault = parser.add_argument_group("fault tolerance")
    fault.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-kernel measurement deadline; a worker that exceeds it "
        "is killed and the kernel retried (default: REPRO_TIMEOUT env "
        "or no deadline)",
    )
    fault.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="attempts per kernel before quarantine "
        "(default: REPRO_MAX_ATTEMPTS env or 3)",
    )
    fault.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal completed measurements here so an interrupted "
        "sweep can be resumed (default: REPRO_CHECKPOINT_DIR env; "
        "off when unset)",
    )
    fault.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint journal: only kernels the previous "
        "(interrupted) sweep never completed are re-measured",
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid, (title, _) in EXPERIMENTS.items():
            print(f"{eid:4s} {title}")
        return 0

    configure(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_enabled=False if args.no_cache else None,
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        checkpoint_dir=args.checkpoint_dir,
        resume=True if args.resume else None,
    )
    if args.resume and args.checkpoint_dir is None:
        # --resume without a directory still needs a journal to read.
        from ..pipeline import default_checkpoint_dir

        configure(checkpoint_dir=str(default_checkpoint_dir()))
    if args.no_native:
        os.environ["REPRO_NATIVE"] = "0"
        from ..sim import reset_native_state

        reset_native_state()
    if args.clear_cache:
        removed = default_cache().clear()
        print(f"[cache] cleared {removed} entries from {default_cache().root}")
        from ..sim import clear_native_artifacts, native_cache_dir

        purged = clear_native_artifacts()
        print(f"[cache] cleared {purged} native artifacts from {native_cache_dir()}")

    from .scheduler import bench_suite, run_suite

    if args.bench:
        bench = bench_suite(args.ids, jobs=args.jobs)
        with open(args.bench_out, "w") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
        print(json.dumps(bench, indent=2, sort_keys=True))
        print(f"[bench written to {args.bench_out}]")
        if not bench["parallel_serial_tables_identical"]:
            print("FAIL: parallel and serial report tables differ")
            return 1
        return 0

    run = run_suite(args.ids, parallel=args.parallel, jobs=args.jobs)
    for result in run.results:
        print(result.to_text(include_scatter=not args.no_scatter))
        print(f"[{result.id} completed in {result.wall_s:.1f}s]\n")
    print(
        f"[suite: {len(run.results)} experiments in {run.total_s:.1f}s "
        f"({run.mode}, {run.jobs} job(s); dataset builds {run.build_s:.1f}s)]"
    )
    if args.cache_stats:
        print(f"[{default_cache().stats}]")
    if args.compile_stats:
        from ..sim import compile_summary

        summary = compile_summary()
        print(
            "[compile] "
            + ", ".join(f"{k}={v}" for k, v in summary.items())
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
