"""Plain-text reporting: tables and scatter plots for experiment output.

The paper's figures are scatter plots of estimated vs measured speedup
plus headline correlation/false-prediction numbers; these helpers
render the same content as monospace text so every experiment's output
is self-contained in a terminal or a log file.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def ascii_table(rows: Sequence[dict], title: str = "") -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells))
        for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(c).ljust(w) for c, w in zip(cols, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def text_scatter(
    predicted: np.ndarray,
    measured: np.ndarray,
    width: int = 56,
    height: int = 18,
    title: str = "",
    max_axis: Optional[float] = None,
) -> str:
    """ASCII scatter of predicted (y) vs measured (x) speedups.

    The diagonal marks perfect prediction; the ``1.0`` gridlines split
    the plane into the four decision quadrants (points left of x=1 but
    above y=1 are false positives, and so on).
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    ok = np.isfinite(predicted) & np.isfinite(measured)
    predicted, measured = predicted[ok], measured[ok]
    if len(measured) == 0:
        return "(no points)"
    hi = max_axis or float(max(predicted.max(), measured.max()) * 1.05)
    hi = max(hi, 2.0)
    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, max(0, int(x / hi * (width - 1))))

    def row(y: float) -> int:
        return min(height - 1, max(0, height - 1 - int(y / hi * (height - 1))))

    # diagonal and the decision gridlines first, points on top
    for c in range(width):
        x = c / (width - 1) * hi
        grid[row(x)][c] = "."
    one_c, one_r = col(1.0), row(1.0)
    for r in range(height):
        if grid[r][one_c] == " ":
            grid[r][one_c] = ":"
    for c in range(width):
        if grid[one_r][c] == " ":
            grid[one_r][c] = ":"
    for p, m in zip(predicted, measured):
        r, c = row(p), col(m)
        grid[r][c] = "o" if grid[r][c] in " .:" else "@"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"predicted ^ (axis 0..{hi:.1f})")
    lines.extend("".join(r) for r in grid)
    lines.append("-" * width + "> measured")
    return "\n".join(lines)


def fail_summary(failures: Sequence[tuple[str, str]]) -> str:
    counts: dict[str, int] = {}
    for _, reason in failures:
        counts[reason] = counts.get(reason, 0) + 1
    parts = [f"{reason}: {n}" for reason, n in sorted(counts.items())]
    return "; ".join(parts) if parts else "none"


def build_summary(stats) -> str:
    """One line for a sweep's :class:`~repro.pipeline.DatasetBuildStats`.

    Surfaces the cost-aware scheduling decision — a deliberate serial
    fallback reads as such instead of hiding in the timings.
    """
    if stats.strategy == "none":
        return "fully cached (no measurement scheduled)"
    text = f"{stats.measured} measured / {stats.cached} cached, {stats.strategy}"
    if stats.strategy == "pool":
        text += f" x{stats.workers} (chunk {stats.chunksize})"
    if stats.reason:
        text += f" — {stats.reason}"
    tiers = getattr(stats, "tiers", None)
    if tiers:
        text += "; tiers " + "/".join(f"{k}={v}" for k, v in sorted(tiers.items()))
        build_s = getattr(stats, "compile_build_s", 0.0)
        if build_s:
            text += f", {build_s:.2f}s native builds"
    return text


def quarantine_summary(report) -> str:
    """One line for a sweep's :class:`~repro.pipeline.FailureReport`.

    ``"none"`` on a healthy sweep; otherwise the quarantined kernels
    with their attempt counts and last error, so a partial dataset's
    provenance survives into every experiment log.
    """
    if not report:
        return "none"
    parts = [
        f"{f.name} ({f.attempts} attempts: {f.error_chain[-1]})"
        for f in report.quarantined
    ]
    return f"{len(report)} quarantined — " + "; ".join(parts)
