"""Dataset construction: the suite × target measurement sweep.

Every experiment consumes the same kind of dataset the paper built:
for each TSVC kernel, force-vectorize (LLV on ARM, unroll+SLP on x86),
measure scalar and vector time, and extract the block features.
Kernels that cannot be vectorized are recorded with their reason and
excluded from modelling, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from ..costmodel.base import Sample, sample_from_measurement
from ..sim.measure import measure_kernel
from ..targets.registry import get_target
from ..tsvc.suite import all_kernels
from ..vectorize.plan import VectorizationFailure

#: Default measurement jitter (σ of the multiplicative noise); roughly
#: the run-to-run variation of a quiesced hardware measurement.
DEFAULT_JITTER = 0.02


@dataclass(frozen=True)
class DatasetSpec:
    target: str = "armv8-neon"
    vectorizer: str = "llv"
    jitter: float = DEFAULT_JITTER
    seed: int = 0

    @property
    def label(self) -> str:
        return f"{self.target}/{self.vectorizer}"


#: The two configurations the paper evaluates.
ARM_LLV = DatasetSpec("armv8-neon", "llv")
X86_SLP = DatasetSpec("x86-avx2", "slp")


@dataclass
class Dataset:
    spec: DatasetSpec
    samples: list[Sample]
    failures: list[tuple[str, str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def measured(self) -> np.ndarray:
        return np.array([s.measured_speedup for s in self.samples])

    def names(self) -> list[str]:
        return [s.name for s in self.samples]

    def sample(self, name: str) -> Sample:
        for s in self.samples:
            if s.name == name:
                return s
        raise KeyError(f"kernel {name!r} not in dataset {self.spec.label}")

    def summary(self) -> str:
        sp = self.measured
        return (
            f"{self.spec.label}: {len(self.samples)} vectorized, "
            f"{len(self.failures)} not vectorizable; measured speedup "
            f"min {sp.min():.2f} / median {np.median(sp):.2f} / "
            f"max {sp.max():.2f}"
        )


@lru_cache(maxsize=16)
def _build_cached(spec: DatasetSpec) -> Dataset:
    target = get_target(spec.target)
    samples: list[Sample] = []
    failures: list[tuple[str, str]] = []
    for kern in all_kernels():
        result = measure_kernel(
            kern,
            target,
            vectorizer=spec.vectorizer,
            jitter=spec.jitter,
            seed=spec.seed,
        )
        if isinstance(result, VectorizationFailure):
            failures.append((kern.name, result.reason))
        else:
            samples.append(sample_from_measurement(result))
    return Dataset(spec, samples, failures)


def build_dataset(spec: Optional[DatasetSpec] = None, **kwargs) -> Dataset:
    """Build (or fetch the cached) dataset for a measurement spec."""
    if spec is None:
        spec = DatasetSpec(**kwargs)
    elif kwargs:
        raise TypeError("pass either a spec or keyword overrides, not both")
    return _build_cached(spec)
