"""Dataset construction: the suite × target measurement sweep.

Every experiment consumes the same kind of dataset the paper built:
for each TSVC kernel, force-vectorize (LLV on ARM, unroll+SLP on x86),
measure scalar and vector time, and extract the block features.
Kernels that cannot be vectorized are recorded with their reason and
excluded from modelling, as in the paper.

The sweep itself runs through :mod:`repro.pipeline` — sharded across
worker processes and layered over the persistent measurement cache —
with an in-memory memo on top so repeated ``build_dataset`` calls in
one process return the same object.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..costmodel.base import Sample
from ..pipeline.build import DatasetBuildStats, measure_suite
from ..pipeline.resilience import FailureReport

#: Default measurement jitter (σ of the multiplicative noise); roughly
#: the run-to-run variation of a quiesced hardware measurement.
DEFAULT_JITTER = 0.02


@dataclass(frozen=True)
class DatasetSpec:
    target: str = "armv8-neon"
    vectorizer: str = "llv"
    jitter: float = DEFAULT_JITTER
    seed: int = 0
    #: Measurement processes (None → ``REPRO_WORKERS`` env, else
    #: ``os.cpu_count()``).  Not part of the measurement identity:
    #: any worker count produces bit-identical samples.
    workers: Optional[int] = None

    @property
    def label(self) -> str:
        return f"{self.target}/{self.vectorizer}"

    @property
    def identity(self) -> tuple:
        """The fields that decide the measured values."""
        return (self.target, self.vectorizer, self.jitter, self.seed)


#: The two configurations the paper evaluates.
ARM_LLV = DatasetSpec("armv8-neon", "llv")
X86_SLP = DatasetSpec("x86-avx2", "slp")


@dataclass
class Dataset:
    spec: DatasetSpec
    samples: list[Sample]
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Kernels the fault-tolerant sweep gave up on (see
    #: ``repro.pipeline.resilience``).  Empty on a healthy run; a
    #: partial dataset is still fully usable — every consumer works
    #: from ``samples`` — but reports must surface the gap.
    quarantined: FailureReport = field(default_factory=FailureReport)
    #: How the sweep was scheduled (serial vs pool, and why) — filled
    #: by ``measure_suite``; a fully cached build reads ``"none"``.
    build_stats: DatasetBuildStats = field(default_factory=DatasetBuildStats)
    _by_name: dict[str, Sample] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        for s in self.samples:
            if s.name in self._by_name:
                raise ValueError(
                    f"duplicate kernel {s.name!r} in dataset {self.spec.label}"
                )
            self._by_name[s.name] = s

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def measured(self) -> np.ndarray:
        return np.array([s.measured_speedup for s in self.samples])

    def names(self) -> list[str]:
        return [s.name for s in self.samples]

    def sample(self, name: str) -> Sample:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"kernel {name!r} not in dataset {self.spec.label}"
            ) from None

    def summary(self) -> str:
        sp = self.measured
        text = (
            f"{self.spec.label}: {len(self.samples)} vectorized, "
            f"{len(self.failures)} not vectorizable; measured speedup "
            f"min {sp.min():.2f} / median {np.median(sp):.2f} / "
            f"max {sp.max():.2f}"
        )
        if self.quarantined:
            text += (
                f" [{len(self.quarantined)} kernels quarantined: "
                f"{', '.join(self.quarantined.names())}]"
            )
        return text


#: In-memory memo, keyed by measurement identity (worker count and
#: cache state cannot change the values, so they are not in the key).
_MEMO: dict[tuple, Dataset] = {}
#: Per-identity build locks: concurrent experiment drivers asking for
#: the same spec must share one sweep, not race two.
_MEMO_LOCK = threading.Lock()
_BUILD_LOCKS: dict[tuple, threading.Lock] = {}


def build_dataset(spec: Optional[DatasetSpec] = None, **kwargs) -> Dataset:
    """Build (or fetch the cached) dataset for a measurement spec.

    Thread-safe: each measurement identity is built exactly once per
    process; concurrent callers (the suite scheduler runs drivers on
    an executor) block on the identity's build lock and receive the
    same ``Dataset`` object.
    """
    if spec is None:
        spec = DatasetSpec(**kwargs)
    elif kwargs:
        raise TypeError("pass either a spec or keyword overrides, not both")
    key = spec.identity
    ds = _MEMO.get(key)
    if ds is not None:
        return ds
    with _MEMO_LOCK:
        build_lock = _BUILD_LOCKS.setdefault(key, threading.Lock())
    with build_lock:
        ds = _MEMO.get(key)
        if ds is None:
            # partial=True: a kernel the resilient sweep had to
            # quarantine shrinks the dataset (and is reported) instead
            # of killing the experiment that asked for it.
            stats = DatasetBuildStats()
            samples, failures, report = measure_suite(
                spec, partial=True, stats=stats
            )
            ds = Dataset(spec, samples, failures, report, stats)
            with _MEMO_LOCK:
                _MEMO[key] = ds
    return ds


def clear_dataset_memo() -> None:
    """Drop the in-process memo (persistent cache entries survive)."""
    with _MEMO_LOCK:
        _MEMO.clear()
        _BUILD_LOCKS.clear()
