"""Experiment drivers reproducing every figure of the paper."""

from .base import (
    ExperimentResult,
    clear_engine_cache,
    engine_cache_disabled,
    engine_cache_info,
    fit_cached,
    loocv_cached,
)
from .dataset import (
    ARM_LLV,
    DEFAULT_JITTER,
    Dataset,
    DatasetSpec,
    X86_SLP,
    build_dataset,
    clear_dataset_memo,
)
from .categories import category_report, worst_categories
from .corpus import (
    corpus_kernel_names,
    publish_corpus_model,
    run_e13,
)
from .registry import EXPERIMENTS, EXPLICIT_ONLY, run_all, run_experiment
from .reporting import ascii_table, fail_summary, text_scatter
from .scheduler import SuiteRun, bench_suite, run_suite, seed_mode

__all__ = [
    "ExperimentResult",
    "clear_engine_cache",
    "engine_cache_disabled",
    "engine_cache_info",
    "fit_cached",
    "loocv_cached",
    "SuiteRun",
    "bench_suite",
    "run_suite",
    "seed_mode",
    "ARM_LLV",
    "DEFAULT_JITTER",
    "Dataset",
    "DatasetSpec",
    "X86_SLP",
    "build_dataset",
    "clear_dataset_memo",
    "category_report",
    "worst_categories",
    "EXPERIMENTS",
    "EXPLICIT_ONLY",
    "corpus_kernel_names",
    "publish_corpus_model",
    "run_all",
    "run_e13",
    "run_experiment",
    "ascii_table",
    "fail_summary",
    "text_scatter",
]
