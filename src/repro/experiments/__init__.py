"""Experiment drivers reproducing every figure of the paper."""

from .base import ExperimentResult
from .dataset import (
    ARM_LLV,
    DEFAULT_JITTER,
    Dataset,
    DatasetSpec,
    X86_SLP,
    build_dataset,
    clear_dataset_memo,
)
from .categories import category_report, worst_categories
from .registry import EXPERIMENTS, run_all, run_experiment
from .reporting import ascii_table, fail_summary, text_scatter

__all__ = [
    "ExperimentResult",
    "ARM_LLV",
    "DEFAULT_JITTER",
    "Dataset",
    "DatasetSpec",
    "X86_SLP",
    "build_dataset",
    "clear_dataset_memo",
    "category_report",
    "worst_categories",
    "EXPERIMENTS",
    "run_all",
    "run_experiment",
    "ascii_table",
    "fail_summary",
    "text_scatter",
]
