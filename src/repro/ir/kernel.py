"""Kernel container: loops, array/scalar declarations, and the body.

A :class:`LoopKernel` is the unit the whole pipeline operates on — the
equivalent of one TSVC test function.  Kernels are perfect loop nests of
depth 1 or 2 whose innermost body is a statement list; vectorization
always targets the innermost loop, matching the paper's LLV setup
("no unrolling, no interleaving").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .expr import Load
from .stmt import ArrayStore, Stmt, all_loads, all_stores, walk_stmts
from .types import DType


@dataclass(frozen=True)
class ArrayDecl:
    """A kernel array parameter.

    ``extents`` are the logical sizes per dimension (innermost last).
    Sizes matter to the memory model (working-set → cache level), not to
    correctness, so they default to the TSVC array length.
    """

    name: str
    dtype: DType = DType.F32
    extents: tuple[int, ...] = (32000,)

    @property
    def ndim(self) -> int:
        return len(self.extents)

    @property
    def nbytes(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n * self.dtype.size


@dataclass(frozen=True)
class ScalarDecl:
    """A kernel scalar: loop-invariant parameter or loop-local variable.

    ``init`` is the value it holds on kernel entry.  Scalars that are
    assigned inside the body are "live" state (reduction accumulators,
    temporaries); scalars that are only read are parameters.
    """

    name: str
    dtype: DType = DType.F32
    init: float = 0.0


@dataclass(frozen=True)
class Loop:
    """One loop level: ``for (var = 0; var < trip; var++)``.

    Non-unit logical strides in TSVC sources (``i += 2``) are normalized
    at construction time into the subscript coefficients, so every IR
    loop has step 1 — the canonical form vectorizers work on.
    """

    trip: int

    def __post_init__(self) -> None:
        if self.trip < 1:
            raise ValueError(f"loop trip count must be >= 1, got {self.trip}")


@dataclass(frozen=True)
class LoopKernel:
    name: str
    loops: tuple[Loop, ...]
    arrays: dict[str, ArrayDecl]
    scalars: dict[str, ScalarDecl]
    body: tuple[Stmt, ...]
    category: str = "uncategorized"
    source: str = ""

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def inner(self) -> Loop:
        return self.loops[-1]

    @property
    def inner_level(self) -> int:
        return self.depth - 1

    @property
    def total_iterations(self) -> int:
        n = 1
        for lp in self.loops:
            n *= lp.trip
        return n

    # -- convenience queries -------------------------------------------------

    def array(self, name: str) -> ArrayDecl:
        return self.arrays[name]

    def loads(self) -> Iterator[Load]:
        return all_loads(self.body)

    def stores(self) -> Iterator[ArrayStore]:
        return all_stores(self.body)

    def stmts(self) -> Iterator[Stmt]:
        return walk_stmts(self.body)

    def assigned_scalars(self) -> set[str]:
        """Names of scalars written somewhere in the body."""
        from .stmt import ScalarAssign

        return {s.name for s in self.stmts() if isinstance(s, ScalarAssign)}

    def live_out_scalars(self) -> set[str]:
        """Scalars whose final value is an output of the kernel.

        All assigned scalars are treated as live-out; this is the
        conservative contract the functional executor checks against.
        """
        return self.assigned_scalars()

    def arrays_read(self) -> set[str]:
        names = {ld.array for ld in self.loads()}
        # Indirect subscripts read their index arrays too.
        from .expr import Indirect

        for st in self.stmts():
            for root in st.exprs():
                for node in root.walk():
                    if isinstance(node, Load):
                        for ix in node.subscript:
                            if isinstance(ix, Indirect):
                                names.add(ix.array)
        for st in self.stores():
            for ix in st.subscript:
                if isinstance(ix, Indirect):
                    names.add(ix.array)
        return names

    def arrays_written(self) -> set[str]:
        return {st.array for st in self.stores()}

    def working_set_bytes(self) -> int:
        """Bytes of array data the kernel touches (union of read+write)."""
        touched = self.arrays_read() | self.arrays_written()
        return sum(self.arrays[a].nbytes for a in touched if a in self.arrays)

    def __str__(self) -> str:
        from .printer import kernel_to_source

        return kernel_to_source(self)
