"""Expression trees of the loop IR.

Expressions are immutable trees.  Array subscripts are *structured*: an
index is either affine in the loop variables (``c0*i0 + c1*i1 + off``)
or an indirect lookup through an integer array (``ind[affine]``).  This
is what lets the dependence analysis and the access-pattern classifier
work symbolically instead of re-discovering structure from generic
arithmetic, mirroring how scalar-evolution feeds LLVM's vectorizer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

from .types import DType, common_type


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MIN = "min"
    MAX = "max"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"


#: Binary ops that require integer (or bool for AND/OR/XOR) operands.
INT_ONLY_BINOPS = frozenset(
    {BinOpKind.AND, BinOpKind.OR, BinOpKind.XOR, BinOpKind.SHL, BinOpKind.SHR}
)

#: Ops usable as vectorizable reduction operators (associative).
REDUCTION_BINOPS = frozenset(
    {BinOpKind.ADD, BinOpKind.MUL, BinOpKind.MIN, BinOpKind.MAX}
)


class UnOpKind(enum.Enum):
    NEG = "neg"
    ABS = "abs"
    SQRT = "sqrt"
    EXP = "exp"
    NOT = "not"


class CmpKind(enum.Enum):
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="


# ---------------------------------------------------------------------------
# Subscript structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """Affine index ``sum(coeffs[l] * loop_var[l]) + offset``.

    ``coeffs`` has one entry per loop level of the owning kernel (level 0
    is the outermost loop).  A constant subscript has all-zero coeffs.
    """

    coeffs: tuple[int, ...]
    offset: int = 0

    def coeff(self, level: int) -> int:
        return self.coeffs[level] if level < len(self.coeffs) else 0

    def shifted(self, delta: int) -> "Affine":
        return Affine(self.coeffs, self.offset + delta)

    def at_depth(self, depth: int) -> "Affine":
        """Pad/truncate the coefficient tuple to ``depth`` levels."""
        cs = self.coeffs[:depth] + (0,) * (depth - len(self.coeffs))
        return Affine(cs, self.offset)

    @property
    def is_constant(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def __str__(self) -> str:
        names = "ijk"
        parts = [
            (f"{c}*{names[lvl]}" if c != 1 else names[lvl])
            for lvl, c in enumerate(self.coeffs)
            if c != 0
        ]
        if self.offset or not parts:
            parts.append(str(self.offset))
        return "+".join(parts).replace("+-", "-")


@dataclass(frozen=True)
class Indirect:
    """Indirect index: value of ``array[index]`` (an integer array)."""

    array: str
    index: Affine

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


Index = Union[Affine, Indirect]
Subscript = tuple  # tuple[Index, ...] — one entry per array dimension


def affine1(coeff: int = 1, offset: int = 0, *, level: int = 0, depth: int = 1) -> Affine:
    """Convenience constructor: ``coeff * loop_var[level] + offset``."""
    coeffs = [0] * depth
    if level >= depth:
        raise ValueError(f"level {level} out of range for depth {depth}")
    coeffs[level] = coeff
    return Affine(tuple(coeffs), offset)


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes."""

    dtype: DType

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this subtree (including self)."""
        yield self
        for c in self.children():
            yield from c.walk()

    def loads(self) -> Iterator["Load"]:
        for node in self.walk():
            if isinstance(node, Load):
                yield node


@dataclass(frozen=True)
class Const(Expr):
    value: float
    dtype: DType = DType.F32

    def __str__(self) -> str:
        return repr(self.value) if self.dtype.is_float else str(int(self.value))


@dataclass(frozen=True)
class ScalarRef(Expr):
    """A named scalar: kernel parameter, temporary, or reduction accumulator."""

    name: str
    dtype: DType = DType.F32

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IterValue(Expr):
    """The loop variable of ``level`` used as an arithmetic value."""

    level: int = 0
    dtype: DType = DType.I32

    def __str__(self) -> str:
        return "ijk"[self.level]


@dataclass(frozen=True)
class Load(Expr):
    array: str
    subscript: Subscript
    dtype: DType = DType.F32

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __str__(self) -> str:
        idx = "][".join(str(ix) for ix in self.subscript)
        return f"{self.array}[{idx}]"


@dataclass(frozen=True)
class BinOp(Expr):
    op: BinOpKind
    lhs: Expr
    rhs: Expr
    dtype: DType = field(init=False)

    def __post_init__(self) -> None:
        if self.op in INT_ONLY_BINOPS and (
            self.lhs.dtype.is_float or self.rhs.dtype.is_float
        ):
            raise TypeError(f"{self.op.value} requires integer operands")
        object.__setattr__(
            self, "dtype", common_type(self.lhs.dtype, self.rhs.dtype)
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        if self.op in (BinOpKind.MIN, BinOpKind.MAX):
            return f"{self.op.value}({self.lhs}, {self.rhs})"
        return f"({self.lhs} {self.op.value} {self.rhs})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: UnOpKind
    operand: Expr
    dtype: DType = field(init=False)

    def __post_init__(self) -> None:
        if self.op is UnOpKind.NOT and not self.operand.dtype.is_bool:
            raise TypeError("logical not requires a bool operand")
        if self.op in (UnOpKind.SQRT, UnOpKind.EXP) and not self.operand.dtype.is_float:
            raise TypeError(f"{self.op.value} requires a float operand")
        object.__setattr__(self, "dtype", self.operand.dtype)

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op.value}({self.operand})"


@dataclass(frozen=True)
class Compare(Expr):
    op: CmpKind
    lhs: Expr
    rhs: Expr
    dtype: DType = field(default=DType.BOOL, init=False)

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.value} {self.rhs})"


@dataclass(frozen=True)
class Select(Expr):
    """``cond ? if_true : if_false`` — the if-converted form of control flow."""

    cond: Expr
    if_true: Expr
    if_false: Expr
    dtype: DType = field(init=False)

    def __post_init__(self) -> None:
        if not self.cond.dtype.is_bool:
            raise TypeError("select condition must be bool")
        object.__setattr__(
            self, "dtype", common_type(self.if_true.dtype, self.if_false.dtype)
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


@dataclass(frozen=True)
class Convert(Expr):
    operand: Expr
    dtype: DType

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.dtype.value})({self.operand})"
