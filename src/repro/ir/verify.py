"""Structural verifier for kernels.

Catches malformed IR at construction time so every later pass can
assume well-formedness: declared names, in-range subscript levels,
integer index arrays, bool guards, and type-consistent stores.
"""

from __future__ import annotations

from typing import Optional

from .expr import Affine, Expr, Indirect, Load
from .stmt import ArrayStore, IfBlock, ScalarAssign, Stmt


class VerificationError(Exception):
    """The kernel violates an IR structural invariant."""

    def __init__(self, message: str, kernel_name: Optional[str] = None):
        self.kernel_name = kernel_name
        super().__init__(
            f"{kernel_name}: {message}" if kernel_name else message
        )


def verify_kernel(kernel) -> None:
    """Raise :class:`VerificationError` if ``kernel`` is malformed."""
    depth = kernel.depth
    name = getattr(kernel, "name", None)
    try:
        for stmt in kernel.body:
            _verify_stmt(kernel, stmt, depth)
    except VerificationError as err:
        if err.kernel_name is None and name:
            raise VerificationError(str(err), name) from None
        raise


def _verify_stmt(kernel, stmt: Stmt, depth: int) -> None:
    if isinstance(stmt, ArrayStore):
        decl = kernel.arrays.get(stmt.array)
        if decl is None:
            raise VerificationError(f"store to undeclared array {stmt.array!r}")
        if len(stmt.subscript) != decl.ndim:
            raise VerificationError(
                f"{stmt.array}: {decl.ndim}-D array subscripted "
                f"with {len(stmt.subscript)} indices"
            )
        for ix in stmt.subscript:
            _verify_index(kernel, ix, depth)
        _verify_expr(kernel, stmt.value, depth)
        if stmt.value.dtype.is_bool and not decl.dtype.is_bool:
            raise VerificationError(
                f"storing bool value into {decl.dtype.value} array {stmt.array}"
            )
    elif isinstance(stmt, ScalarAssign):
        if stmt.name not in kernel.scalars:
            raise VerificationError(f"assignment to undeclared scalar {stmt.name!r}")
        _verify_expr(kernel, stmt.value, depth)
    elif isinstance(stmt, IfBlock):
        _verify_expr(kernel, stmt.cond, depth)
        if not stmt.cond.dtype.is_bool:
            raise VerificationError("if condition must be bool")
        for s in stmt.then_body:
            _verify_stmt(kernel, s, depth)
        for s in stmt.else_body:
            _verify_stmt(kernel, s, depth)
    else:
        raise VerificationError(f"unknown statement type {type(stmt).__name__}")


def _verify_index(kernel, ix, depth: int) -> None:
    if isinstance(ix, Affine):
        if len(ix.coeffs) != depth:
            raise VerificationError(
                f"affine index has {len(ix.coeffs)} coeffs, kernel depth is {depth}"
            )
    elif isinstance(ix, Indirect):
        decl = kernel.arrays.get(ix.array)
        if decl is None:
            raise VerificationError(f"indirect index through undeclared {ix.array!r}")
        if not decl.dtype.is_int:
            raise VerificationError(
                f"indirect index array {ix.array} must be integer, "
                f"is {decl.dtype.value}"
            )
        if decl.ndim != 1:
            raise VerificationError("indirect index arrays must be 1-D")
        _verify_index(kernel, ix.index, depth)
    else:
        raise VerificationError(f"unknown index type {type(ix).__name__}")


def _verify_expr(kernel, expr: Expr, depth: int) -> None:
    from .expr import IterValue, ScalarRef

    for node in expr.walk():
        if isinstance(node, Load):
            decl = kernel.arrays.get(node.array)
            if decl is None:
                raise VerificationError(f"load from undeclared array {node.array!r}")
            if len(node.subscript) != decl.ndim:
                raise VerificationError(
                    f"{node.array}: {decl.ndim}-D array subscripted "
                    f"with {len(node.subscript)} indices"
                )
            if node.dtype is not decl.dtype:
                raise VerificationError(
                    f"load from {node.array} typed {node.dtype.value}, "
                    f"array is {decl.dtype.value}"
                )
            for ix in node.subscript:
                _verify_index(kernel, ix, depth)
        elif isinstance(node, ScalarRef):
            if node.name not in kernel.scalars:
                raise VerificationError(f"reference to undeclared scalar {node.name!r}")
            if node.dtype is not kernel.scalars[node.name].dtype:
                raise VerificationError(
                    f"scalar {node.name} referenced as {node.dtype.value}, "
                    f"declared {kernel.scalars[node.name].dtype.value}"
                )
        elif isinstance(node, IterValue):
            if node.level >= depth:
                raise VerificationError(
                    f"loop variable level {node.level} out of range (depth {depth})"
                )
