"""Pythonic builder DSL for loop kernels.

Kernels read close to their C originals::

    k = KernelBuilder("s000", category="linear")
    a, b = k.arrays("a", "b")
    i = k.loop(32000)
    a[i] = b[i] + 1.0
    kern = k.build()

Handles overload Python operators; plain numbers are coerced to
constants.  Loop-index arithmetic (``i + 1``, ``2 * i``, ``n - i``)
stays symbolic and affine so subscripts remain analyzable; anything
non-affine raises immediately rather than producing an unanalyzable
kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .expr import (
    Affine,
    BinOp,
    BinOpKind,
    CmpKind,
    Compare,
    Const,
    Convert,
    Expr,
    Indirect,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
    UnOpKind,
)
from .kernel import ArrayDecl, Loop, LoopKernel, ScalarDecl
from .stmt import ArrayStore, IfBlock, ScalarAssign, Stmt
from .types import DType
from .verify import verify_kernel

#: Default TSVC 1-D array length and 2-D edge length.
DEFAULT_LEN = 32000
DEFAULT_LEN2 = 256

Number = Union[int, float]


class BuildError(Exception):
    """Raised for malformed kernel construction."""


# ---------------------------------------------------------------------------
# Expression handles
# ---------------------------------------------------------------------------


class EH:
    """Expression handle: wraps an :class:`Expr` with Python operators."""

    __slots__ = ("expr",)
    # Keep NumPy from hijacking ``ndarray <op> EH`` via ufunc dispatch.
    __array_ufunc__ = None

    def __init__(self, expr: Expr):
        self.expr = expr

    # -- arithmetic ---------------------------------------------------------

    def _bin(self, op: BinOpKind, other, reflected: bool = False) -> "EH":
        rhs = as_expr(other, like=self.expr.dtype)
        lhs = self.expr
        if reflected:
            lhs, rhs = rhs, lhs
        return EH(BinOp(op, lhs, rhs))

    def __add__(self, o):
        return self._bin(BinOpKind.ADD, o)

    def __radd__(self, o):
        return self._bin(BinOpKind.ADD, o, True)

    def __sub__(self, o):
        return self._bin(BinOpKind.SUB, o)

    def __rsub__(self, o):
        return self._bin(BinOpKind.SUB, o, True)

    def __mul__(self, o):
        return self._bin(BinOpKind.MUL, o)

    def __rmul__(self, o):
        return self._bin(BinOpKind.MUL, o, True)

    def __truediv__(self, o):
        return self._bin(BinOpKind.DIV, o)

    def __rtruediv__(self, o):
        return self._bin(BinOpKind.DIV, o, True)

    def __and__(self, o):
        return self._bin(BinOpKind.AND, o)

    def __or__(self, o):
        return self._bin(BinOpKind.OR, o)

    def __xor__(self, o):
        return self._bin(BinOpKind.XOR, o)

    def __lshift__(self, o):
        return self._bin(BinOpKind.SHL, o)

    def __rshift__(self, o):
        return self._bin(BinOpKind.SHR, o)

    def __neg__(self):
        return EH(UnOp(UnOpKind.NEG, self.expr))

    # -- comparisons ----------------------------------------------------------

    def _cmp(self, op: CmpKind, other) -> "EH":
        return EH(Compare(op, self.expr, as_expr(other, like=self.expr.dtype)))

    def __lt__(self, o):
        return self._cmp(CmpKind.LT, o)

    def __le__(self, o):
        return self._cmp(CmpKind.LE, o)

    def __gt__(self, o):
        return self._cmp(CmpKind.GT, o)

    def __ge__(self, o):
        return self._cmp(CmpKind.GE, o)

    def __eq__(self, o):  # type: ignore[override]
        return self._cmp(CmpKind.EQ, o)

    def __ne__(self, o):  # type: ignore[override]
        return self._cmp(CmpKind.NE, o)

    __hash__ = None  # type: ignore[assignment]

    def __bool__(self) -> bool:
        raise BuildError(
            "IR expressions have no Python truth value; use k.if_(cond) "
            "for conditionals and select() for value selection"
        )

    def __repr__(self) -> str:
        return f"EH({self.expr})"


class IndexHandle:
    """Symbolic affine combination of loop variables.

    Supports ``i + 1``, ``2 * i``, ``i - 3``, ``-i``, ``i + j`` — anything
    affine.  Used as an array subscript it becomes an :class:`Affine`;
    used as a data value it becomes an :class:`IterValue` expression
    (only for single-variable, unit-coefficient handles).
    """

    __slots__ = ("builder", "coeffs", "offset")
    __array_ufunc__ = None

    def __init__(self, builder: "KernelBuilder", coeffs: dict[int, int], offset: int = 0):
        self.builder = builder
        self.coeffs = dict(coeffs)
        self.offset = offset

    def _clone(self, coeffs: dict[int, int], offset: int) -> "IndexHandle":
        return IndexHandle(self.builder, coeffs, offset)

    def __add__(self, other):
        if isinstance(other, IndexHandle):
            coeffs = dict(self.coeffs)
            for lvl, c in other.coeffs.items():
                coeffs[lvl] = coeffs.get(lvl, 0) + c
            return self._clone(coeffs, self.offset + other.offset)
        if isinstance(other, int):
            return self._clone(self.coeffs, self.offset + other)
        return self.as_value() + other

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, (IndexHandle, int)):
            return self + (-other if isinstance(other, int) else other.__neg__())
        return self.as_value() - other

    def __rsub__(self, other):
        if isinstance(other, int):
            return self.__neg__() + other
        return other - self.as_value()

    def __neg__(self):
        return self._clone({lvl: -c for lvl, c in self.coeffs.items()}, -self.offset)

    def __mul__(self, other):
        if isinstance(other, int):
            return self._clone(
                {lvl: c * other for lvl, c in self.coeffs.items()}, self.offset * other
            )
        return self.as_value() * other

    __rmul__ = __mul__

    # comparisons in data context (e.g. ``if_(i < m)``)
    def __lt__(self, o):
        return self.as_value() < o

    def __le__(self, o):
        return self.as_value() <= o

    def __gt__(self, o):
        return self.as_value() > o

    def __ge__(self, o):
        return self.as_value() >= o

    def __eq__(self, o):  # type: ignore[override]
        return self.as_value() == o

    def __ne__(self, o):  # type: ignore[override]
        return self.as_value() != o

    __hash__ = None  # type: ignore[assignment]

    def to_affine(self, depth: int) -> Affine:
        cs = [0] * depth
        for lvl, c in self.coeffs.items():
            if lvl >= depth:
                raise BuildError(f"loop level {lvl} out of range (depth {depth})")
            cs[lvl] = c
        return Affine(tuple(cs), self.offset)

    def as_value(self) -> EH:
        """This index used as an integer data value."""
        nonzero = {lvl: c for lvl, c in self.coeffs.items() if c != 0}
        if len(nonzero) == 1:
            (lvl, c), = nonzero.items()
            e: Expr = IterValue(lvl)
            if c != 1:
                e = BinOp(BinOpKind.MUL, e, Const(c, DType.I32))
            if self.offset:
                e = BinOp(BinOpKind.ADD, e, Const(self.offset, DType.I32))
            return EH(e)
        if not nonzero:
            return EH(Const(self.offset, DType.I32))
        # i + j as a value: build the sum explicitly.
        e = None
        for lvl, c in sorted(nonzero.items()):
            term: Expr = IterValue(lvl)
            if c != 1:
                term = BinOp(BinOpKind.MUL, term, Const(c, DType.I32))
            e = term if e is None else BinOp(BinOpKind.ADD, e, term)
        assert e is not None
        if self.offset:
            e = BinOp(BinOpKind.ADD, e, Const(self.offset, DType.I32))
        return EH(e)

    def __repr__(self) -> str:
        return f"IndexHandle({self.coeffs}, +{self.offset})"


class ArrayHandle:
    __slots__ = ("builder", "decl")
    __array_ufunc__ = None

    def __init__(self, builder: "KernelBuilder", decl: ArrayDecl):
        self.builder = builder
        self.decl = decl

    def _subscript(self, index) -> tuple:
        idxs = index if isinstance(index, tuple) else (index,)
        if len(idxs) != self.decl.ndim:
            raise BuildError(
                f"array {self.decl.name} has {self.decl.ndim} dim(s), "
                f"subscripted with {len(idxs)}"
            )
        return tuple(self.builder._to_index(ix) for ix in idxs)

    def __getitem__(self, index) -> EH:
        sub = self._subscript(index)
        return EH(Load(self.decl.name, sub, self.decl.dtype))

    def __setitem__(self, index, value) -> None:
        sub = self._subscript(index)
        val = as_expr(value, like=self.decl.dtype)
        self.builder._append(ArrayStore(self.decl.name, sub, val))

    def __repr__(self) -> str:
        return f"ArrayHandle({self.decl.name})"


class ScalarHandle:
    __slots__ = ("builder", "decl")
    __array_ufunc__ = None

    def __init__(self, builder: "KernelBuilder", decl: ScalarDecl):
        self.builder = builder
        self.decl = decl

    @property
    def ref(self) -> EH:
        return EH(ScalarRef(self.decl.name, self.decl.dtype))

    def set(self, value) -> None:
        """Assign ``value`` to this scalar (may reference the scalar itself)."""
        val = as_expr(value, like=self.decl.dtype)
        self.builder._append(ScalarAssign(self.decl.name, val))

    # Arithmetic delegates to the reference expression.
    def __add__(self, o):
        return self.ref + o

    def __radd__(self, o):
        return o + self.ref if isinstance(o, EH) else self.ref + o

    def __sub__(self, o):
        return self.ref - o

    def __rsub__(self, o):
        return self.ref.__rsub__(o)

    def __mul__(self, o):
        return self.ref * o

    def __rmul__(self, o):
        return self.ref * o

    def __truediv__(self, o):
        return self.ref / o

    def __rtruediv__(self, o):
        return self.ref.__rtruediv__(o)

    def __neg__(self):
        return -self.ref

    def __lt__(self, o):
        return self.ref < o

    def __le__(self, o):
        return self.ref <= o

    def __gt__(self, o):
        return self.ref > o

    def __ge__(self, o):
        return self.ref >= o

    def __eq__(self, o):  # type: ignore[override]
        return self.ref == o

    def __ne__(self, o):  # type: ignore[override]
        return self.ref != o

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"ScalarHandle({self.decl.name})"


def as_expr(x, like: Optional[DType] = None) -> Expr:
    """Coerce a handle or Python number to an :class:`Expr`."""
    if isinstance(x, EH):
        return x.expr
    if isinstance(x, Expr):
        return x
    if isinstance(x, ScalarHandle):
        return x.ref.expr
    if isinstance(x, IndexHandle):
        return x.as_value().expr
    if isinstance(x, bool):
        raise BuildError("bare Python bools are not IR values")
    if isinstance(x, int):
        if like is not None and like.is_float:
            return Const(float(x), like)
        return Const(x, DType.I32)
    if isinstance(x, float):
        dt = like if (like is not None and like.is_float) else DType.F32
        return Const(x, dt)
    raise BuildError(f"cannot convert {x!r} to an IR expression")


# -- free-function expression helpers ---------------------------------------


def _binfn(kind: BinOpKind, a, b) -> EH:
    ea = as_expr(a)
    eb = as_expr(b, like=ea.dtype)
    return EH(BinOp(kind, ea, eb))


def fmin(a, b) -> EH:
    return _binfn(BinOpKind.MIN, a, b)


def fmax(a, b) -> EH:
    return _binfn(BinOpKind.MAX, a, b)


def fabs(x) -> EH:
    return EH(UnOp(UnOpKind.ABS, as_expr(x)))


def fsqrt(x) -> EH:
    return EH(UnOp(UnOpKind.SQRT, as_expr(x)))


def fexp(x) -> EH:
    return EH(UnOp(UnOpKind.EXP, as_expr(x)))


def fnot(x) -> EH:
    return EH(UnOp(UnOpKind.NOT, as_expr(x)))


def select(cond, if_true, if_false) -> EH:
    t = as_expr(if_true)
    return EH(Select(as_expr(cond), t, as_expr(if_false, like=t.dtype)))


def cast(x, dtype: DType) -> EH:
    return EH(Convert(as_expr(x), dtype))


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------


class _IfCtx:
    def __init__(self, builder: "KernelBuilder", cond: Expr):
        self.builder = builder
        self.cond = cond

    def __enter__(self):
        self.builder._push()
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        then_body = self.builder._pop()
        self.builder._append(IfBlock(self.cond, then_body))
        return False


class _ElseCtx:
    def __init__(self, builder: "KernelBuilder"):
        self.builder = builder

    def __enter__(self):
        stmts = self.builder._current()
        if not stmts or not isinstance(stmts[-1], IfBlock):
            raise BuildError("else_() must directly follow an if_() block")
        if stmts[-1].else_body:
            raise BuildError("this if_() already has an else_() block")
        self.builder._push()
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        else_body = self.builder._pop()
        stmts = self.builder._current()
        prev = stmts.pop()
        assert isinstance(prev, IfBlock)
        stmts.append(IfBlock(prev.cond, prev.then_body, else_body))
        return False


class KernelBuilder:
    """Incrementally builds a :class:`LoopKernel`.

    All ``loop()`` declarations must precede the first body statement,
    because subscript coefficient vectors are sized by the loop depth.
    """

    def __init__(
        self,
        name: str,
        *,
        category: str = "uncategorized",
        source: str = "",
        default_len: int = DEFAULT_LEN,
        default_len2: int = DEFAULT_LEN2,
    ):
        self.name = name
        self.category = category
        self.source = source
        self.default_len = default_len
        self.default_len2 = default_len2
        self._loops: list[Loop] = []
        self._arrays: dict[str, ArrayDecl] = {}
        self._scalars: dict[str, ScalarDecl] = {}
        self._stmt_stack: list[list[Stmt]] = [[]]
        self._frozen_depth = False

    # -- declarations ---------------------------------------------------------

    def loop(self, trip: int = DEFAULT_LEN) -> IndexHandle:
        if self._frozen_depth:
            raise BuildError("all loop() calls must precede body statements")
        if len(self._loops) >= 2:
            raise BuildError("kernels support at most 2 loop levels")
        self._loops.append(Loop(trip))
        return IndexHandle(self, {len(self._loops) - 1: 1})

    def array(
        self,
        name: str,
        dtype: DType = DType.F32,
        extents: Optional[Sequence[int]] = None,
        dims: int = 1,
    ) -> ArrayHandle:
        if name in self._arrays or name in self._scalars:
            raise BuildError(f"duplicate declaration: {name}")
        if extents is None:
            extents = (self.default_len,) if dims == 1 else (self.default_len2,) * dims
        decl = ArrayDecl(name, dtype, tuple(int(e) for e in extents))
        self._arrays[name] = decl
        return ArrayHandle(self, decl)

    def arrays(self, *names: str, dtype: DType = DType.F32) -> tuple[ArrayHandle, ...]:
        return tuple(self.array(n, dtype) for n in names)

    def array2(self, name: str, dtype: DType = DType.F32) -> ArrayHandle:
        return self.array(name, dtype, dims=2)

    def scalar(
        self, name: str, dtype: DType = DType.F32, init: float = 0.0
    ) -> ScalarHandle:
        if name in self._scalars or name in self._arrays:
            raise BuildError(f"duplicate declaration: {name}")
        decl = ScalarDecl(name, dtype, init)
        self._scalars[name] = decl
        return ScalarHandle(self, decl)

    def param(self, name: str, dtype: DType = DType.F32, value: float = 1.5) -> ScalarHandle:
        """A loop-invariant scalar parameter with a default test value."""
        return self.scalar(name, dtype, init=value)

    # -- control flow -----------------------------------------------------------

    def if_(self, cond) -> _IfCtx:
        c = as_expr(cond)
        if not c.dtype.is_bool:
            raise BuildError("if_() condition must be a comparison")
        return _IfCtx(self, c)

    def else_(self) -> _ElseCtx:
        return _ElseCtx(self)

    # -- internals ---------------------------------------------------------------

    def _to_index(self, ix):
        from .expr import Index

        self._frozen_depth = True
        depth = max(1, len(self._loops))
        if isinstance(ix, IndexHandle):
            return ix.to_affine(depth)
        if isinstance(ix, int):
            return Affine((0,) * depth, ix)
        if isinstance(ix, EH):
            e = ix.expr
            if isinstance(e, Load) and e.dtype.is_int and e.subscript and all(
                isinstance(s, Affine) for s in e.subscript
            ):
                if len(e.subscript) != 1:
                    raise BuildError("indirect index arrays must be 1-D")
                return Indirect(e.array, e.subscript[0])
            raise BuildError(
                f"subscript {e} is neither affine nor a 1-D integer-array load"
            )
        raise BuildError(f"invalid subscript {ix!r}")

    def _append(self, stmt: Stmt) -> None:
        self._frozen_depth = True
        self._stmt_stack[-1].append(stmt)

    def _push(self) -> None:
        self._stmt_stack.append([])

    def _pop(self) -> tuple[Stmt, ...]:
        return tuple(self._stmt_stack.pop())

    def _current(self) -> list[Stmt]:
        return self._stmt_stack[-1]

    # -- finalize ----------------------------------------------------------------

    def build(self) -> LoopKernel:
        if len(self._stmt_stack) != 1:
            raise BuildError("unclosed if_()/else_() block")
        if not self._loops:
            raise BuildError("kernel needs at least one loop")
        if not self._stmt_stack[0]:
            raise BuildError("kernel body is empty")
        kern = LoopKernel(
            name=self.name,
            loops=tuple(self._loops),
            arrays=dict(self._arrays),
            scalars=dict(self._scalars),
            body=tuple(self._stmt_stack[0]),
            category=self.category,
            source=self.source,
        )
        verify_kernel(kern)
        return kern
