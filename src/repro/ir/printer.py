"""Render kernels back to a readable C-like source form.

The output round-trips through the frontend parser for 1-D affine
kernels and is used in reports, error messages, and golden tests.
"""

from __future__ import annotations

from .kernel import LoopKernel
from .stmt import ArrayStore, IfBlock, ScalarAssign, Stmt

_VAR_NAMES = "ijk"


def kernel_to_source(kernel: LoopKernel, indent: str = "  ") -> str:
    lines: list[str] = [f"// kernel {kernel.name} [{kernel.category}]"]
    for decl in kernel.arrays.values():
        dims = "".join(f"[{e}]" for e in decl.extents)
        lines.append(f"{decl.dtype.value} {decl.name}{dims};")
    for decl in kernel.scalars.values():
        lines.append(f"{decl.dtype.value} {decl.name} = {decl.init};")
    pad = ""
    for level, loop in enumerate(kernel.loops):
        var = _VAR_NAMES[level]
        lines.append(
            f"{pad}for (int {var} = 0; {var} < {loop.trip}; {var}++) {{"
        )
        pad += indent
    for stmt in kernel.body:
        lines.extend(_stmt_lines(stmt, pad, indent))
    for level in reversed(range(kernel.depth)):
        pad = indent * level
        lines.append(f"{pad}}}")
    return "\n".join(lines)


def _stmt_lines(stmt: Stmt, pad: str, indent: str) -> list[str]:
    if isinstance(stmt, (ArrayStore, ScalarAssign)):
        return [pad + str(stmt)]
    if isinstance(stmt, IfBlock):
        lines = [f"{pad}if ({stmt.cond}) {{"]
        for s in stmt.then_body:
            lines.extend(_stmt_lines(s, pad + indent, indent))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for s in stmt.else_body:
                lines.extend(_stmt_lines(s, pad + indent, indent))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"unknown statement {type(stmt).__name__}")
