"""Statements of the loop IR.

A kernel body is a flat-or-guarded sequence of statements executed once
per innermost-loop iteration.  Control flow inside the body is limited
to structured ``IfBlock``s — exactly the shape that if-conversion turns
into masked vector code, and the shape TSVC's control-flow kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .expr import Expr, Load, Subscript


class Stmt:
    """Base class of IR statements."""

    def walk(self) -> Iterator["Stmt"]:
        yield self

    def exprs(self) -> tuple[Expr, ...]:
        """All top-level expression roots this statement evaluates."""
        return ()


@dataclass(frozen=True)
class ArrayStore(Stmt):
    """``array[subscript] = value``."""

    array: str
    subscript: Subscript
    value: Expr

    def exprs(self) -> tuple[Expr, ...]:
        return (self.value,)

    def __str__(self) -> str:
        idx = "][".join(str(ix) for ix in self.subscript)
        return f"{self.array}[{idx}] = {self.value};"


@dataclass(frozen=True)
class ScalarAssign(Stmt):
    """``name = value`` for a kernel-local scalar.

    When ``value`` references ``name`` itself the assignment is a scalar
    recurrence; the reduction analysis decides whether it is a
    vectorizable reduction (+, *, min, max) or a serializing recurrence.
    """

    name: str
    value: Expr

    def exprs(self) -> tuple[Expr, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"{self.name} = {self.value};"


@dataclass(frozen=True)
class IfBlock(Stmt):
    """Structured conditional; vectorized by if-conversion (masking)."""

    cond: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = field(default_factory=tuple)

    def walk(self) -> Iterator[Stmt]:
        yield self
        for s in self.then_body:
            yield from s.walk()
        for s in self.else_body:
            yield from s.walk()

    def exprs(self) -> tuple[Expr, ...]:
        return (self.cond,)

    def __str__(self) -> str:
        then_src = " ".join(str(s) for s in self.then_body)
        if self.else_body:
            else_src = " ".join(str(s) for s in self.else_body)
            return f"if ({self.cond}) {{ {then_src} }} else {{ {else_src} }}"
        return f"if ({self.cond}) {{ {then_src} }}"


def walk_stmts(body: tuple[Stmt, ...]) -> Iterator[Stmt]:
    """All statements in ``body``, descending into IfBlocks."""
    for s in body:
        yield from s.walk()


def all_loads(body: tuple[Stmt, ...]) -> Iterator[Load]:
    """Every Load expression anywhere in ``body`` (conditions included)."""
    for s in walk_stmts(body):
        for root in s.exprs():
            yield from root.loads()


def all_stores(body: tuple[Stmt, ...]) -> Iterator[ArrayStore]:
    for s in walk_stmts(body):
        if isinstance(s, ArrayStore):
            yield s


def guard_of(body: tuple[Stmt, ...], target: Stmt) -> Optional[Expr]:
    """The innermost guard condition of ``target`` inside ``body``.

    Returns None when the statement executes unconditionally.  Nested
    guards are not combined here — callers that need the full predicate
    use the if-converter in the vectorizer, which builds conjunctions.
    """
    for s in body:
        if s is target:
            return None
        if isinstance(s, IfBlock):
            for sub, _polarity in (
                *((t, True) for t in s.then_body),
                *((t, False) for t in s.else_body),
            ):
                if sub is target:
                    return s.cond
                if isinstance(sub, IfBlock):
                    inner = guard_of((sub,), target)
                    if inner is not None:
                        return inner
    return None
