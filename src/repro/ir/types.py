"""Scalar and vector data types for the loop IR.

The IR is deliberately small: the cost-model study only needs the data
types that TSVC exercises (single/double floats plus 32/64-bit integers
for index and mask computation).  Types carry their byte size so the
memory model and the vectorizer (lanes = vector_bits / (8 * size)) can
derive everything else from them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DType(enum.Enum):
    """Element data type of IR values and array elements."""

    F32 = "f32"
    F64 = "f64"
    I32 = "i32"
    I64 = "i64"
    BOOL = "bool"

    @property
    def size(self) -> int:
        """Size of one element in bytes (mask bits are stored per lane)."""
        return _SIZES[self]

    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def is_int(self) -> bool:
        return self in (DType.I32, DType.I64)

    @property
    def is_bool(self) -> bool:
        return self is DType.BOOL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


_SIZES = {
    DType.F32: 4,
    DType.F64: 8,
    DType.I32: 4,
    DType.I64: 8,
    # Masks are modelled as one byte per lane (predicate registers /
    # byte masks are target details the IR does not care about).
    DType.BOOL: 1,
}


@dataclass(frozen=True)
class VecType:
    """A vector of ``lanes`` elements of ``elem`` type."""

    elem: DType
    lanes: int

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"vector lanes must be >= 1, got {self.lanes}")

    @property
    def bits(self) -> int:
        return self.elem.size * 8 * self.lanes

    @property
    def size(self) -> int:
        return self.elem.size * self.lanes

    def __str__(self) -> str:
        return f"<{self.lanes} x {self.elem.value}>"


def lanes_for(dtype: DType, vector_bits: int) -> int:
    """Number of lanes a full vector register of ``vector_bits`` holds."""
    if vector_bits % (dtype.size * 8) != 0:
        raise ValueError(
            f"{vector_bits}-bit vector cannot hold whole {dtype.value} lanes"
        )
    return vector_bits // (dtype.size * 8)


def common_type(a: DType, b: DType) -> DType:
    """The result type of a binary arithmetic op on ``a`` and ``b``.

    Mirrors C-style promotion restricted to the types the IR supports:
    float beats int, wider beats narrower.  Bool does not participate in
    arithmetic promotion and must be converted explicitly.
    """
    if a is b:
        return a
    if DType.BOOL in (a, b):
        raise TypeError("bool does not participate in arithmetic promotion")
    if a.is_float or b.is_float:
        floats = [t for t in (a, b) if t.is_float]
        return max(floats, key=lambda t: t.size)
    return max((a, b), key=lambda t: t.size)
