"""repro — reproduction of *Cost Modelling for Vectorization on ARM*
(Pohl, Cosenza, Juurlink, 2018).

The package is a vertical slice of an auto-vectorizing compiler plus
the measurement and modelling study built on top of it:

* :mod:`repro.ir` — a small loop IR with a Pythonic builder DSL;
* :mod:`repro.analysis` — dependence, access-pattern and reduction analyses;
* :mod:`repro.vectorize` — legality, an LLV-style loop vectorizer,
  an unroller, and an SLP-style vectorizer;
* :mod:`repro.codegen` — lowering to machine instruction streams for
  the modelled targets;
* :mod:`repro.targets` — ARMv8 NEON and x86 AVX2 machine models;
* :mod:`repro.sim` — functional execution (correctness oracle) and an
  analytical timing model (the "measurement" substrate);
* :mod:`repro.costmodel` / :mod:`repro.fitting` — the paper's cost
  models (static baseline, fitted cost, fitted speedup, rated) and the
  L2 / NNLS / SVR fitting backends;
* :mod:`repro.validation` — correlation/false-prediction metrics,
  LOOCV, decision-policy evaluation;
* :mod:`repro.tsvc` — all 151 TSVC kernels;
* :mod:`repro.experiments` — one driver per paper figure
  (``python -m repro.experiments all``).

Quickstart::

    from repro import (
        KernelBuilder, get_target, vectorize_loop, measure_kernel
    )

    k = KernelBuilder("saxpy")
    a, b = k.arrays("a", "b")
    alpha = k.param("alpha", value=2.0)
    i = k.loop(32000)
    a[i] = a[i] + alpha * b[i]
    kernel = k.build()

    sample = measure_kernel(kernel, get_target("arm"))
    print(sample)   # measured vectorization speedup on the NEON model
"""

from .ir import (
    DType,
    KernelBuilder,
    LoopKernel,
    cast,
    fabs,
    fexp,
    fmax,
    fmin,
    fsqrt,
    select,
)
from .targets import ARMV8_NEON, GENERIC_IR, Target, X86_AVX2, get_target
from .vectorize import (
    VectorizationFailure,
    VectorizationPlan,
    check_legality,
    natural_vf,
    slp_vectorize,
    unroll,
    vectorize_loop,
)
from .codegen import lower_scalar, lower_vector
from .sim import (
    MeasuredSample,
    analyze_stream,
    make_buffers,
    measure_kernel,
    measure_plan,
    run_scalar,
    run_vector,
)
from .costmodel import (
    LLVMLikeCostModel,
    LinearCostModel,
    RatedSpeedupModel,
    Sample,
    SpeedupModel,
    sample_from_measurement,
)
from .fitting import LeastSquares, LinearSVR, NonNegativeLeastSquares, make_regressor
from .validation import confusion, evaluate, loocv_predictions, pearson, spearman
from .tsvc import all_kernels, get_kernel, kernel_names, suite_size
from .experiments import build_dataset, run_all, run_experiment
from .pipeline import MeasurementCache, default_cache, measure_suite

__version__ = "1.0.0"

__all__ = [
    "DType",
    "KernelBuilder",
    "LoopKernel",
    "cast",
    "fabs",
    "fexp",
    "fmax",
    "fmin",
    "fsqrt",
    "select",
    "ARMV8_NEON",
    "GENERIC_IR",
    "Target",
    "X86_AVX2",
    "get_target",
    "VectorizationFailure",
    "VectorizationPlan",
    "check_legality",
    "natural_vf",
    "slp_vectorize",
    "unroll",
    "vectorize_loop",
    "lower_scalar",
    "lower_vector",
    "MeasuredSample",
    "analyze_stream",
    "make_buffers",
    "measure_kernel",
    "measure_plan",
    "run_scalar",
    "run_vector",
    "LLVMLikeCostModel",
    "LinearCostModel",
    "RatedSpeedupModel",
    "Sample",
    "SpeedupModel",
    "sample_from_measurement",
    "LeastSquares",
    "LinearSVR",
    "NonNegativeLeastSquares",
    "make_regressor",
    "confusion",
    "evaluate",
    "loocv_predictions",
    "pearson",
    "spearman",
    "all_kernels",
    "get_kernel",
    "kernel_names",
    "suite_size",
    "build_dataset",
    "run_all",
    "run_experiment",
    "MeasurementCache",
    "default_cache",
    "measure_suite",
    "__version__",
]
