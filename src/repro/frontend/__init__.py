"""C-like textual frontend for the loop IR."""

from .lexer import LexError, Token, TokenStream, tokenize
from .parser import ParseError, parse_kernel

__all__ = [
    "LexError",
    "Token",
    "TokenStream",
    "tokenize",
    "ParseError",
    "parse_kernel",
]
