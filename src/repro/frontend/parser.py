"""Recursive-descent parser: C-like kernel source → :class:`LoopKernel`.

Grammar (statements end with ``;``, blocks use braces)::

    kernel   := "kernel" IDENT "{" decl* loop "}"
    decl     := dtype IDENT ("[" INT "]")* ("=" number)? ";"
    loop     := "for" "(" IDENT "=" "0" ";" IDENT "<" INT ";" IDENT "++" ")"
                "{" (loop | stmt*) "}"
    stmt     := lvalue "=" expr ";"
              | "if" "(" expr ")" block ("else" block)?
    expr     := cmp; usual precedence (cmp < add < mul < unary < primary)
    primary  := number | IDENT | IDENT subscript+ | call | "(" expr ")"
    call     := ("min"|"max"|"abs"|"sqrt"|"exp"|"select") "(" args ")"

Array subscripts must be affine in the loop variables or a subscripted
integer array (indirect access); anything else is a parse error — the
same restriction the IR itself enforces.

Example::

    kernel saxpy {
        f32 a[1024], b[1024];
        f32 alpha = 2.0;
        for (i = 0; i < 1024; i++) {
            a[i] = a[i] + alpha * b[i];
        }
    }
"""

from __future__ import annotations

from typing import Optional

from ..ir.builder import (
    IndexHandle,
    KernelBuilder,
    ScalarHandle,
    fabs,
    fexp,
    fmax,
    fmin,
    fsqrt,
    select,
)
from ..ir.kernel import LoopKernel
from ..ir.types import DType
from ..ir.verify import verify_kernel
from .lexer import LexError, TokenStream, tokenize


class ParseError(Exception):
    pass


_DTYPES = {
    "f32": DType.F32,
    "f64": DType.F64,
    "i32": DType.I32,
    "i64": DType.I64,
}

_CALLS = {"min", "max", "abs", "sqrt", "exp", "select"}


def parse_kernel(source: str) -> LoopKernel:
    """Parse one ``kernel`` definition into a verified :class:`LoopKernel`."""
    from ..ir.builder import BuildError
    from ..ir.verify import VerificationError

    try:
        ts = TokenStream(tokenize(source))
        return _Parser(ts).parse()
    except (LexError, BuildError, VerificationError, TypeError) as exc:
        raise ParseError(str(exc)) from exc


class _Parser:
    def __init__(self, ts: TokenStream):
        self.ts = ts
        self.builder: Optional[KernelBuilder] = None
        self.arrays: dict[str, object] = {}
        self.scalars: dict[str, ScalarHandle] = {}
        self.loop_vars: dict[str, IndexHandle] = {}

    def _err(self, msg: str) -> ParseError:
        return ParseError(f"line {self.ts.current.line}: {msg}")

    # -- top level -----------------------------------------------------------

    def parse(self) -> LoopKernel:
        ts = self.ts
        ts.expect("kw", "kernel")
        name = ts.expect("ident").text
        self.builder = KernelBuilder(name)
        ts.expect("op", "{")
        while ts.current.kind == "kw" and ts.current.text in _DTYPES:
            self._parse_decl()
        self._parse_loop()
        ts.expect("op", "}")
        ts.expect("eof")
        kern = self.builder.build()
        out = LoopKernel(
            name=kern.name,
            loops=kern.loops,
            arrays=kern.arrays,
            scalars=kern.scalars,
            body=kern.body,
            category=kern.category,
            source="",
        )
        # The builder verified what it assembled; re-verify the kernel
        # actually handed to callers so the boundary invariant is on
        # the returned object, not a sibling of it.
        verify_kernel(out)
        return out

    def _parse_decl(self) -> None:
        ts = self.ts
        dtype = _DTYPES[ts.expect("kw").text]
        while True:
            name = ts.expect("ident").text
            extents = []
            while ts.accept("op", "["):
                extents.append(int(ts.expect("int").text))
                ts.expect("op", "]")
            if extents:
                assert self.builder is not None
                self.arrays[name] = self.builder.array(
                    name, dtype=dtype, extents=extents
                )
            else:
                init = 0.0
                if ts.accept("op", "="):
                    init = self._parse_number()
                assert self.builder is not None
                self.scalars[name] = self.builder.scalar(name, dtype, init=init)
            if not ts.accept("op", ","):
                break
        ts.expect("op", ";")

    def _parse_number(self) -> float:
        ts = self.ts
        sign = -1.0 if ts.accept("op", "-") else 1.0
        tok = ts.advance()
        if tok.kind not in ("int", "float"):
            raise self._err(f"expected a number, got {tok.text!r}")
        return sign * float(tok.text)

    # -- loops -----------------------------------------------------------------

    def _parse_loop(self) -> None:
        ts = self.ts
        ts.expect("kw", "for")
        ts.expect("op", "(")
        var = ts.expect("ident").text
        if ts.at("ident"):
            # an optional C-style induction type ("for (int i = ...")
            var = ts.expect("ident").text
        ts.expect("op", "=")
        if ts.expect("int").text != "0":
            raise self._err("loops must start at 0 (normalize the source)")
        ts.expect("op", ";")
        if ts.expect("ident").text != var:
            raise self._err("loop condition must test the loop variable")
        ts.expect("op", "<")
        trip = int(ts.expect("int").text)
        ts.expect("op", ";")
        if ts.expect("ident").text != var:
            raise self._err("loop increment must use the loop variable")
        ts.expect("op", "++")
        ts.expect("op", ")")
        assert self.builder is not None
        if var in self.loop_vars or var in self.arrays or var in self.scalars:
            raise self._err(f"duplicate name {var!r}")
        self.loop_vars[var] = self.builder.loop(trip)
        ts.expect("op", "{")
        if ts.at("kw", "for"):
            self._parse_loop()
        else:
            while not ts.at("op", "}"):
                self._parse_stmt()
        ts.expect("op", "}")

    # -- statements ---------------------------------------------------------------

    def _parse_block(self) -> None:
        ts = self.ts
        ts.expect("op", "{")
        while not ts.at("op", "}"):
            self._parse_stmt()
        ts.expect("op", "}")

    def _parse_stmt(self) -> None:
        ts = self.ts
        assert self.builder is not None
        if ts.at("kw", "if"):
            ts.advance()
            ts.expect("op", "(")
            cond = self._parse_expr()
            ts.expect("op", ")")
            with self.builder.if_(cond):
                self._parse_block()
            if ts.accept("kw", "else"):
                with self.builder.else_():
                    self._parse_block()
            return
        name = ts.expect("ident").text
        if ts.at("op", "["):
            if name not in self.arrays:
                raise self._err(f"undeclared array {name!r}")
            subscript = self._parse_subscript(name)
            ts.expect("op", "=")
            value = self._parse_expr()
            handle = self.arrays[name]
            handle[subscript] = value  # type: ignore[index]
        else:
            if name not in self.scalars:
                raise self._err(f"undeclared scalar {name!r}")
            ts.expect("op", "=")
            value = self._parse_expr()
            self.scalars[name].set(value)
        ts.expect("op", ";")

    def _parse_subscript(self, array_name: str):
        idxs = []
        while self.ts.accept("op", "["):
            idxs.append(self._parse_index_expr())
            self.ts.expect("op", "]")
        return tuple(idxs) if len(idxs) > 1 else idxs[0]

    # -- index (affine or indirect) -------------------------------------------------

    def _parse_index_expr(self):
        """An index: affine over loop vars, or an int-array element."""
        node = self._parse_index_add()
        return node

    def _parse_index_add(self):
        lhs = self._parse_index_mul()
        while True:
            if self.ts.accept("op", "+"):
                lhs = lhs + self._parse_index_mul()
            elif self.ts.accept("op", "-"):
                rhs = self._parse_index_mul()
                lhs = lhs - rhs
            else:
                return lhs

    def _parse_index_mul(self):
        lhs = self._parse_index_atom()
        while self.ts.accept("op", "*"):
            rhs = self._parse_index_atom()
            if isinstance(lhs, int):
                lhs, rhs = rhs, lhs
            if not isinstance(rhs, int):
                raise self._err("index expressions must stay affine")
            lhs = lhs * rhs
        return lhs

    def _parse_index_atom(self):
        ts = self.ts
        if ts.accept("op", "("):
            inner = self._parse_index_add()
            ts.expect("op", ")")
            return inner
        if ts.accept("op", "-"):
            atom = self._parse_index_atom()
            return -atom
        tok = ts.accept("int")
        if tok is not None:
            return int(tok.text)
        name = ts.expect("ident").text
        if name in self.loop_vars:
            return self.loop_vars[name]
        if name in self.arrays and ts.at("op", "["):
            sub = self._parse_subscript(name)
            return self.arrays[name][sub]  # an indirect index load
        raise self._err(f"{name!r} is not a loop variable or index array")

    # -- value expressions -----------------------------------------------------------

    def _parse_expr(self):
        return self._parse_cmp()

    def _parse_cmp(self):
        lhs = self._parse_add()
        for op in ("<=", ">=", "==", "!=", "<", ">"):
            if self.ts.accept("op", op):
                rhs = self._parse_add()
                return {
                    "<": lambda a, b: a < b,
                    "<=": lambda a, b: a <= b,
                    ">": lambda a, b: a > b,
                    ">=": lambda a, b: a >= b,
                    "==": lambda a, b: a == b,
                    "!=": lambda a, b: a != b,
                }[op](_as_value(lhs), _as_value(rhs))
        return lhs

    def _parse_add(self):
        lhs = self._parse_mul()
        while True:
            if self.ts.accept("op", "+"):
                lhs = _as_value(lhs) + _as_value(self._parse_mul())
            elif self.ts.accept("op", "-"):
                lhs = _as_value(lhs) - _as_value(self._parse_mul())
            else:
                return lhs

    def _parse_mul(self):
        lhs = self._parse_unary()
        while True:
            if self.ts.accept("op", "*"):
                lhs = _as_value(lhs) * _as_value(self._parse_unary())
            elif self.ts.accept("op", "/"):
                lhs = _as_value(lhs) / _as_value(self._parse_unary())
            else:
                return lhs

    def _parse_unary(self):
        if self.ts.accept("op", "-"):
            inner = self._parse_unary()
            if isinstance(inner, (int, float)):
                return -inner
            return -_as_value(inner)
        return self._parse_primary()

    def _parse_primary(self):
        ts = self.ts
        if ts.accept("op", "("):
            inner = self._parse_expr()
            ts.expect("op", ")")
            return inner
        tok = ts.accept("float")
        if tok is not None:
            return float(tok.text)
        tok = ts.accept("int")
        if tok is not None:
            return float(tok.text)
        name = ts.expect("ident").text
        if name in _CALLS:
            return self._parse_call(name)
        if name in self.arrays:
            if not ts.at("op", "["):
                raise self._err(f"array {name!r} used without a subscript")
            sub = self._parse_subscript(name)
            return self.arrays[name][sub]
        if name in self.scalars:
            return self.scalars[name].ref
        if name in self.loop_vars:
            return self.loop_vars[name].as_value()
        raise self._err(f"undeclared identifier {name!r}")

    def _parse_call(self, name: str):
        ts = self.ts
        ts.expect("op", "(")
        args = [self._parse_expr()]
        while ts.accept("op", ","):
            args.append(self._parse_expr())
        ts.expect("op", ")")
        try:
            if name == "min":
                return fmin(*args)
            if name == "max":
                return fmax(*args)
            if name == "abs":
                (x,) = args
                return fabs(_as_value(x))
            if name == "sqrt":
                (x,) = args
                return fsqrt(_as_value(x))
            if name == "exp":
                (x,) = args
                return fexp(_as_value(x))
            if name == "select":
                c, t, f = args
                return select(c, _as_value(t), _as_value(f))
        except (TypeError, ValueError) as exc:
            raise self._err(f"bad arguments for {name}(): {exc}") from exc
        raise self._err(f"unknown call {name!r}")


def _as_value(x):
    """Loop variables used in value context become integer values."""
    if isinstance(x, IndexHandle):
        return x.as_value()
    return x
