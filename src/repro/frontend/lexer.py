"""Tokenizer for the C-like kernel language.

The language covers what TSVC loops need: declarations, perfect
``for`` nests, assignments, ``if``/``else``, arithmetic with the usual
precedence, comparisons, and a few intrinsic calls.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = frozenset({"kernel", "for", "if", "else", "f32", "f64", "i32", "i64"})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|\+\+|&&|\|\||[-+*/%<>=!(){}\[\];,&|^])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "float" | "int" | "ident" | "kw" | "op" | "eof"
    text: str
    pos: int
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(Exception):
    pass


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise LexError(
                f"line {line}: unexpected character {source[pos]!r}"
            )
        text = m.group(0)
        kind = m.lastgroup
        if kind == "ws":
            line += text.count("\n")
        elif kind == "ident" and text in KEYWORDS:
            tokens.append(Token("kw", text, pos, line))
        else:
            assert kind is not None
            tokens.append(Token(kind, text, pos, line))
        pos = m.end()
    tokens.append(Token("eof", "", pos, line))
    return tokens


class TokenStream:
    """Cursor over a token list with expect/accept helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._idx = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._idx]

    def peek(self, ahead: int = 1) -> Token:
        j = min(self._idx + ahead, len(self._tokens) - 1)
        return self._tokens[j]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self._idx += 1
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.current
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise LexError(
                f"line {self.current.line}: expected {want!r}, "
                f"got {self.current.text!r}"
            )
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.current
        return tok.kind == kind and (text is None or tok.text == text)
