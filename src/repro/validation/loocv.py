"""Leave-one-out cross validation (paper slides 11 and 16).

Each kernel is predicted by a model fitted on all *other* kernels —
the honest estimate of how the fitted cost model generalizes to loops
it has never seen, which is how a compiler would actually use it.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..costmodel.base import FittedModel, Sample
from ..fitting.base import FitError

ModelFactory = Callable[[], FittedModel]


def loocv_predictions(
    factory: ModelFactory, samples: Sequence[Sample]
) -> np.ndarray:
    """Out-of-fold speedup prediction for every sample.

    A fold whose fit fails (degenerate feature matrix after removing
    the held-out kernel) predicts NaN; callers decide how to count it.
    """
    samples = list(samples)
    preds = np.full(len(samples), np.nan)
    for i, held_out in enumerate(samples):
        train = samples[:i] + samples[i + 1 :]
        model = factory()
        try:
            model.fit(train)
            preds[i] = model.predict_speedup(held_out)
        except (FitError, FloatingPointError):
            continue
    return preds


def kfold_predictions(
    factory: ModelFactory,
    samples: Sequence[Sample],
    k: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """k-fold variant; cheaper than LOOCV, same contract."""
    samples = list(samples)
    n = len(samples)
    if k < 2 or k > n:
        raise ValueError(f"k={k} invalid for {n} samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    preds = np.full(n, np.nan)
    folds = np.array_split(order, k)
    for fold in folds:
        hold = set(int(j) for j in fold)
        train = [s for j, s in enumerate(samples) if j not in hold]
        model = factory()
        try:
            model.fit(train)
        except (FitError, FloatingPointError):
            continue
        for j in hold:
            preds[j] = model.predict_speedup(samples[j])
    return preds
