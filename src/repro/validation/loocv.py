"""Leave-one-out cross validation (paper slides 11 and 16).

Each kernel is predicted by a model fitted on all *other* kernels —
the honest estimate of how the fitted cost model generalizes to loops
it has never seen, which is how a compiler would actually use it.

For the linear L2 (ridge) speedup models the N refits collapse to one
factorization through the hat-matrix identity

    ŷ₋ᵢ(xᵢ) = (ŷᵢ − hᵢᵢ yᵢ) / (1 − hᵢᵢ),

where ``h`` is the diagonal of the smoother X(XᵀX + λI)⁻¹Xᵀ.

NNLS folds get a cheaper loop of their own: each deleted-row problem is
warm-started from the full fit's active set (one restricted ``lstsq``
plus a KKT certificate, see :func:`repro.fitting.nnls.nnls_warm_start`)
and only the folds whose certificate fails pay for a cold Lawson–Hanson
solve.

SVR folds are warm-started from a polished full fit and certified via
strong convexity (see :func:`repro.fitting.svr.svr_warm_loocv`); folds
whose certificate fails are refit cold, so every prediction is still a
true per-fold optimum.

The refit loop remains the generic fallback for custom models and for
rows no fast path can certify.  For the built-in speedup-model family
it deletes rows from the shared cached feature matrix (one boolean
mask per fold) instead of rebuilding O(N²) sample sublists.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from ..costmodel.base import EPS, FittedModel, Sample
from ..costmodel.speedup import SpeedupModel
from ..fitting.base import FitError, check_Xy
from ..fitting.l2 import LeastSquares
from ..fitting.nnls import NonNegativeLeastSquares, nnls_warm_start
from ..fitting.svr import LinearSVR, svr_warm_loocv

ModelFactory = Callable[[], FittedModel]

#: Rows whose leverage is this close to 1 are refitted naively — the
#: identity divides by (1 − h) and the deleted design may drop rank.
LEVERAGE_TOL = 1e-8

_SVR_WARM_ENABLED = True


@contextmanager
def svr_warm_disabled() -> Iterator[None]:
    """Force SVR LOOCV through the cold refit loop (benches/tests)."""
    global _SVR_WARM_ENABLED
    prior = _SVR_WARM_ENABLED
    _SVR_WARM_ENABLED = False
    try:
        yield
    finally:
        _SVR_WARM_ENABLED = prior


def loocv_predictions(
    factory: ModelFactory,
    samples: Sequence[Sample],
    *,
    fast: bool = True,
    stats: Optional[dict] = None,
) -> np.ndarray:
    """Out-of-fold speedup prediction for every sample.

    A fold whose fit fails (degenerate feature matrix after removing
    the held-out kernel) predicts NaN; callers decide how to count it.
    ``fast=False`` forces the refit loop even for eligible models
    (used by the cross-check tests and benches).  When ``stats`` is a
    dict, fast-path accounting (e.g. the SVR certificate acceptance
    under ``"svr_warm"``) is recorded into it.
    """
    samples = list(samples)
    if fast and len(samples) >= 2:
        probe = factory()
        preds = None
        if fast_loocv_eligible(probe):
            preds = _fast_l2_predictions(probe, samples)
        elif warm_nnls_eligible(probe):
            preds = _warm_nnls_predictions(probe, samples)
        elif warm_svr_eligible(probe):
            preds = _warm_svr_predictions(probe, samples, stats)
        if preds is not None:
            bad = np.nonzero(~np.isfinite(preds))[0]
            if bad.size:
                refit = _refit_predictions(factory, samples, indices=bad)
                preds[bad] = refit[bad]
            return preds
    return _refit_predictions(factory, samples)


def fast_loocv_eligible(model: FittedModel) -> bool:
    """The hat-matrix path handles exactly the L2 speedup models."""
    return isinstance(model, SpeedupModel) and type(model.regressor) is LeastSquares


def warm_nnls_eligible(model: FittedModel) -> bool:
    """The warm-start path handles exactly the NNLS speedup models."""
    return (
        isinstance(model, SpeedupModel)
        and type(model.regressor) is NonNegativeLeastSquares
    )


def warm_svr_eligible(model: FittedModel) -> bool:
    """The SVR warm path: unbounded linear SVR speedup models."""
    return (
        _SVR_WARM_ENABLED
        and isinstance(model, SpeedupModel)
        and type(model.regressor) is LinearSVR
        and not model.regressor.nonneg
    )


def _clip_like_predict(
    model: SpeedupModel, raw: np.ndarray, samples: Sequence[Sample]
) -> np.ndarray:
    """Re-apply ``predict_speedup``'s clipping to finite entries so the
    fast paths agree with the refit loop exactly."""
    ok = np.isfinite(raw)
    if model.clip_to_vf:
        vf = np.array([float(smp.vf) for smp in samples])
        raw[ok] = np.clip(raw[ok], EPS, vf[ok])
    else:
        raw[ok] = np.maximum(raw[ok], EPS)
    return raw


def _refit_predictions(
    factory: ModelFactory,
    samples: list[Sample],
    indices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The fallback loop: refit once per held-out sample (or index).

    Built-in speedup models refit on row-masked views of the cached
    feature matrix; anything else gets the generic sample-list loop
    (still masked, so no O(N²) list concatenation either way).
    """
    preds = np.full(len(samples), np.nan)
    held = (
        np.arange(len(samples))
        if indices is None
        else np.asarray(indices, dtype=np.intp)
    )
    if len(samples) >= 2:
        probe = factory()
        if isinstance(probe, SpeedupModel):
            return _matrix_refit_predictions(factory, samples, held, preds)
    arr = np.empty(len(samples), dtype=object)
    arr[:] = samples
    mask = np.ones(len(samples), dtype=bool)
    for i in held:
        mask[i] = False
        train = list(arr[mask])
        mask[i] = True
        model = factory()
        try:
            model.fit(train)
            preds[i] = model.predict_speedup(samples[i])
        except (FitError, FloatingPointError):
            continue
    return preds


def _matrix_refit_predictions(
    factory: ModelFactory,
    samples: list[Sample],
    held: np.ndarray,
    preds: np.ndarray,
) -> np.ndarray:
    """Per-fold refits for speedup models, one row-mask per fold.

    The design matrix is materialized once (from the shared bundle for
    registered featurizers); each fold fits the regressor on ``X`` with
    the held-out row deleted — the same rows, values and clipping as
    ``model.fit(train); model.predict_speedup(samples[i])``.
    """
    probe = factory()
    X, y = probe.training_data(samples)
    mask = np.ones(len(samples), dtype=bool)
    for i in held:
        model = factory()
        mask[i] = False
        try:
            model.regressor.fit(X[mask], y[mask])
        except (FitError, FloatingPointError):
            continue
        finally:
            mask[i] = True
        raw = float(model.regressor.predict(X[i][None, :])[0])
        if model.clip_to_vf:
            preds[i] = float(np.clip(raw, EPS, float(samples[i].vf)))
        else:
            preds[i] = max(raw, EPS)
    return preds


def _fast_l2_predictions(
    model: SpeedupModel, samples: list[Sample]
) -> Optional[np.ndarray]:
    """All N out-of-fold predictions from a single SVD, or None.

    Matches ``numpy.linalg.lstsq(rcond=None)``'s singular-value cutoff
    for the λ=0 case so the fast path reproduces the refit loop's
    pseudo-inverse behavior; rows it cannot certify (leverage ≈ 1) are
    left NaN for the caller to refit naively.
    """
    try:
        X, y = check_Xy(*model.training_data(samples))
    except FitError:
        return None
    U, s, _ = np.linalg.svd(X, full_matrices=False)
    ridge = float(getattr(model.regressor, "ridge", 0.0))
    if ridge > 0.0:
        d = s**2 / (s**2 + ridge)
    else:
        tol = np.finfo(X.dtype).eps * max(X.shape) * (s[0] if s.size else 0.0)
        d = (s > tol).astype(np.float64)
    Ud = U * d
    yhat = Ud @ (U.T @ y)
    h = np.einsum("ij,ij->i", Ud, U)
    denom = 1.0 - h
    raw = np.full(len(samples), np.nan)
    ok = np.abs(denom) > LEVERAGE_TOL
    raw[ok] = (yhat[ok] - h[ok] * y[ok]) / denom[ok]
    raw[~ok] = np.nan
    return _clip_like_predict(model, raw, samples)


def _warm_nnls_predictions(
    model: SpeedupModel, samples: list[Sample]
) -> Optional[np.ndarray]:
    """Out-of-fold NNLS predictions warm-started from the full fit.

    One cold Lawson–Hanson solve fixes the active-set guess; every fold
    then costs a single restricted ``lstsq`` plus a KKT certificate.
    Folds whose certificate fails (the deleted row *did* change the
    active set) are left NaN for the caller's cold-refit fallback, so
    every prediction comes from a true per-fold NNLS optimum.  On
    rank-deficient designs the optimum need not be unique: warm and
    cold solvers can return different minimizers of identical residual
    norm, so equivalence checks must compare objectives, not weights.
    """
    try:
        X, y = check_Xy(*model.training_data(samples))
    except FitError:
        return None
    full = NonNegativeLeastSquares()
    try:
        full.fit(X, y)
    except FitError:
        return None
    support = full.support_
    n = len(samples)
    raw = np.full(n, np.nan)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        mask[i] = False
        w = nnls_warm_start(X[mask], y[mask], support, validate=False)
        mask[i] = True
        if w is not None:
            raw[i] = float(X[i] @ w)
    return _clip_like_predict(model, raw, samples)


def _warm_svr_predictions(
    model: SpeedupModel, samples: list[Sample], stats: Optional[dict] = None
) -> Optional[np.ndarray]:
    """Out-of-fold SVR predictions via warm-started fold solves.

    Thin wrapper over :func:`repro.fitting.svr.svr_warm_loocv`; folds
    the certificate rejects stay NaN for the caller's cold fallback.
    Certificate accounting lands in ``stats["svr_warm"]``.
    """
    try:
        X, y = check_Xy(*model.training_data(samples))
    except FitError:
        return None
    out = svr_warm_loocv(model.regressor, X, y)
    if out is None:
        return None
    raw, warm_stats = out
    if stats is not None:
        stats["svr_warm"] = warm_stats
    return _clip_like_predict(model, raw, samples)


def kfold_predictions(
    factory: ModelFactory,
    samples: Sequence[Sample],
    k: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """k-fold variant; cheaper than naive LOOCV, same contract."""
    samples = list(samples)
    n = len(samples)
    if k < 2 or k > n:
        raise ValueError(f"k={k} invalid for {n} samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    preds = np.full(n, np.nan)
    folds = np.array_split(order, k)
    probe = factory()
    if isinstance(probe, SpeedupModel):
        X, y = probe.training_data(samples)
        for fold in folds:
            model = factory()
            mask = np.ones(n, dtype=bool)
            mask[fold] = False
            try:
                model.regressor.fit(X[mask], y[mask])
            except (FitError, FloatingPointError):
                continue
            for j in fold:
                raw = float(model.regressor.predict(X[j][None, :])[0])
                if model.clip_to_vf:
                    preds[j] = float(np.clip(raw, EPS, float(samples[j].vf)))
                else:
                    preds[j] = max(raw, EPS)
        return preds
    arr = np.empty(n, dtype=object)
    arr[:] = samples
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        model = factory()
        try:
            model.fit(list(arr[mask]))
        except (FitError, FloatingPointError):
            continue
        for j in fold:
            preds[j] = model.predict_speedup(samples[j])
    return preds
