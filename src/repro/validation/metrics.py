"""Evaluation metrics for speedup predictions.

The paper reports three kinds of numbers: the correlation between
estimated and measured speedup (its headline metric), the count of
false vectorization decisions (false positives = vectorized though
slower, false negatives = skipped though faster), and the execution
time that results from following a model's decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.stats

#: Speedup threshold above which vectorization is the right decision.
BENEFIT_THRESHOLD = 1.0


def pearson(predicted: np.ndarray, measured: np.ndarray) -> float:
    """Pearson correlation coefficient between prediction and truth."""
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if len(predicted) < 2 or np.std(predicted) < 1e-12 or np.std(measured) < 1e-12:
        return 0.0
    return float(scipy.stats.pearsonr(predicted, measured).statistic)


def spearman(predicted: np.ndarray, measured: np.ndarray) -> float:
    """Rank correlation — robust to monotone miscalibration."""
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if len(predicted) < 2 or np.std(predicted) < 1e-12 or np.std(measured) < 1e-12:
        return 0.0
    return float(scipy.stats.spearmanr(predicted, measured).statistic)


def rmse(predicted: np.ndarray, measured: np.ndarray) -> float:
    d = np.asarray(predicted) - np.asarray(measured)
    return float(np.sqrt(np.mean(d * d)))


def mae(predicted: np.ndarray, measured: np.ndarray) -> float:
    return float(np.mean(np.abs(np.asarray(predicted) - np.asarray(measured))))


@dataclass(frozen=True)
class Confusion:
    """Vectorize/don't-vectorize decision quality.

    A *false positive* predicts benefit where measurement shows none
    (code runs slower after vectorization); a *false negative* predicts
    no benefit and forgoes real speedup.
    """

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def false_predictions(self) -> int:
        return self.fp + self.fn

    def __str__(self) -> str:
        return (
            f"TP={self.tp} FP={self.fp} TN={self.tn} FN={self.fn} "
            f"(accuracy {self.accuracy:.1%})"
        )


def confusion(
    predicted: np.ndarray,
    measured: np.ndarray,
    threshold: float = BENEFIT_THRESHOLD,
) -> Confusion:
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    pred_pos = predicted > threshold
    meas_pos = measured > threshold
    return Confusion(
        tp=int(np.sum(pred_pos & meas_pos)),
        fp=int(np.sum(pred_pos & ~meas_pos)),
        tn=int(np.sum(~pred_pos & ~meas_pos)),
        fn=int(np.sum(~pred_pos & meas_pos)),
    )


@dataclass(frozen=True)
class EvalReport:
    """All headline metrics for one model on one sample set."""

    model: str
    pearson: float
    spearman: float
    rmse: float
    mae: float
    confusion: Confusion

    def row(self) -> dict:
        return {
            "model": self.model,
            "pearson": round(self.pearson, 3),
            "spearman": round(self.spearman, 3),
            "rmse": round(self.rmse, 3),
            "FP": self.confusion.fp,
            "FN": self.confusion.fn,
            "accuracy": round(self.confusion.accuracy, 3),
        }


def evaluate(model_name: str, predicted, measured) -> EvalReport:
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    return EvalReport(
        model=model_name,
        pearson=pearson(predicted, measured),
        spearman=spearman(predicted, measured),
        rmse=rmse(predicted, measured),
        mae=mae(predicted, measured),
        confusion=confusion(predicted, measured),
    )
