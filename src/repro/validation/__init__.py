"""Validation: metrics, LOOCV/k-fold, and decision-policy evaluation."""

from .metrics import (
    BENEFIT_THRESHOLD,
    Confusion,
    EvalReport,
    confusion,
    evaluate,
    mae,
    pearson,
    rmse,
    spearman,
)
from .loocv import (
    fast_loocv_eligible,
    kfold_predictions,
    loocv_predictions,
    warm_nnls_eligible,
)
from .decisions import (
    PolicyOutcome,
    always_cycles,
    never_cycles,
    oracle_cycles,
    policy_cycles,
)

__all__ = [
    "BENEFIT_THRESHOLD",
    "Confusion",
    "EvalReport",
    "confusion",
    "evaluate",
    "mae",
    "pearson",
    "rmse",
    "spearman",
    "kfold_predictions",
    "loocv_predictions",
    "fast_loocv_eligible",
    "warm_nnls_eligible",
    "PolicyOutcome",
    "always_cycles",
    "never_cycles",
    "oracle_cycles",
    "policy_cycles",
]
