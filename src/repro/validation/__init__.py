"""Validation: metrics, LOOCV/k-fold, and decision-policy evaluation."""

from .metrics import (
    BENEFIT_THRESHOLD,
    Confusion,
    EvalReport,
    confusion,
    evaluate,
    mae,
    pearson,
    rmse,
    spearman,
)
from .loocv import (
    fast_loocv_eligible,
    kfold_predictions,
    loocv_predictions,
    svr_warm_disabled,
    warm_nnls_eligible,
    warm_svr_eligible,
)
from .decisions import (
    PolicyOutcome,
    always_cycles,
    never_cycles,
    oracle_cycles,
    policy_cycles,
)

__all__ = [
    "BENEFIT_THRESHOLD",
    "Confusion",
    "EvalReport",
    "confusion",
    "evaluate",
    "mae",
    "pearson",
    "rmse",
    "spearman",
    "kfold_predictions",
    "loocv_predictions",
    "fast_loocv_eligible",
    "warm_nnls_eligible",
    "warm_svr_eligible",
    "svr_warm_disabled",
    "PolicyOutcome",
    "always_cycles",
    "never_cycles",
    "oracle_cycles",
    "policy_cycles",
]
