"""Execution-time impact of cost-model-guided decisions.

The paper's conclusion claims its refined model "lowers execution
times": the compiler vectorizes exactly the loops the model predicts
beneficial, so total runtime over the suite is the sum of each loop's
chosen version.  This module evaluates that policy against the
reference policies (oracle, always-vectorize, never-vectorize).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..costmodel import matrix
from ..costmodel.base import Sample
from .metrics import BENEFIT_THRESHOLD


def _totals(samples: Sequence[Sample]) -> tuple[np.ndarray, np.ndarray]:
    """Per-kernel total scalar and vector cycles (per element basis).

    Samples carry per-iteration cycles; scalar iterations retire one
    element and vector iterations VF elements, so per-element cycles
    are directly comparable.  The cycle arrays come from the shared
    dataset bundle instead of a fresh per-call sample walk.
    """
    if not samples:
        return np.array([]), np.array([])
    b = matrix.get_bundle(samples)
    return b.scalar_cpi, b.vector_cpi / b.vf


@dataclass(frozen=True)
class PolicyOutcome:
    name: str
    cycles: float
    vectorized: int
    total: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.cycles:.1f} cycles/elem-suite "
            f"({self.vectorized}/{self.total} loops vectorized)"
        )


def policy_cycles(
    samples: Sequence[Sample],
    predictions: np.ndarray,
    threshold: float = BENEFIT_THRESHOLD,
    name: str = "model",
) -> PolicyOutcome:
    """Total cycles when vectorizing iff the model predicts benefit.

    NaN predictions (failed LOOCV folds) fall back to not vectorizing.
    """
    scalar, vector = _totals(samples)
    predictions = np.asarray(predictions, dtype=np.float64)
    take_vec = np.nan_to_num(predictions, nan=0.0) > threshold
    cycles = float(np.where(take_vec, vector, scalar).sum())
    return PolicyOutcome(name, cycles, int(take_vec.sum()), len(samples))


def oracle_cycles(samples: Sequence[Sample]) -> PolicyOutcome:
    scalar, vector = _totals(samples)
    best = np.minimum(scalar, vector)
    return PolicyOutcome(
        "oracle", float(best.sum()), int(np.sum(vector < scalar)), len(samples)
    )


def always_cycles(samples: Sequence[Sample]) -> PolicyOutcome:
    scalar, vector = _totals(samples)
    return PolicyOutcome("always-vectorize", float(vector.sum()), len(samples), len(samples))


def never_cycles(samples: Sequence[Sample]) -> PolicyOutcome:
    scalar, _ = _totals(samples)
    return PolicyOutcome("never-vectorize", float(scalar.sum()), 0, len(samples))
