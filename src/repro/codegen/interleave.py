"""Interleaving as a stream transform.

LLVM's loop vectorizer can *interleave* a vectorized loop: advance
``ic`` vector iterations per loop iteration, each with its own
register set, so independent chains overlap and a loop-carried
reduction splits into ``ic`` private accumulators combined once at
the end.  The measurement pipeline models that here as a pure
:class:`~repro.codegen.minstr.MStream` transform — no IR rewriting —
so both the machine-level and the IR-level (feature) views of a plan
point can be interleaved identically:

* the steady-state body is replicated ``ic`` times with fresh ids;
* an intra-copy edge stays intra-copy;
* a *self*-carried edge (an instruction depending on itself at
  distance 1 — the reduction-accumulator shape) stays self-carried in
  every copy: each copy owns a private accumulator, which is exactly
  the reassociation interleaving performs, and is what divides the
  recurrence bound by ``ic``;
* any other carried edge with distance ``d`` (cross-instruction
  memory or value recurrences, *not* reassociable) is remapped
  exactly: the consumer in copy ``c`` reads the producer of original
  iteration ``c - d``, which lands in copy ``(c - d) mod ic`` either
  intra-iteration (``c - d >= 0``) or carried at the ceiling-divided
  distance — a serial chain therefore stays serial through the
  copies and gains nothing, as on hardware;
* prologue/epilogue are replicated per copy (per-copy accumulator
  setup and horizontal combine), amortized over the reduced
  iteration count as usual;
* affine access strides scale by ``ic`` so the group-aware traffic
  accounting charges the ``ic``-wide window one new iteration sweeps.

``iters`` must be divisible by ``ic`` (the enumeration in
:mod:`repro.vectorize.plan` guarantees it), so the transform is exact:
no interleave remainder is ever silently dropped.
"""

from __future__ import annotations

from dataclasses import replace

from .minstr import MInstr, MStream


def _remap_edges(ins: MInstr, c: int, ic: int, stride: int) -> MInstr:
    """Edges of copy ``c`` of ``ins`` (ids already offset by c*stride)."""
    srcs = tuple(s + c * stride for s in ins.srcs)
    extra_srcs: list[int] = []
    carried: list[tuple[int, int]] = []
    for producer, dist in ins.carried:
        if producer == ins.id and dist == 1:
            # Reduction-accumulator shape: private per-copy chain.
            carried.append((producer + c * stride, 1))
            continue
        src_iter = c - dist  # original-iteration index of the producer
        q, src_copy = divmod(src_iter, ic)
        if q == 0:
            extra_srcs.append(producer + src_copy * stride)
        else:
            carried.append((producer + src_copy * stride, -q))
    return replace(
        ins,
        id=ins.id + c * stride,
        srcs=srcs + tuple(extra_srcs),
        carried=tuple(carried),
        mem_stride=(
            ins.mem_stride * ic if ins.mem_stride not in (None, 0) else ins.mem_stride
        ),
    )


def interleave_stream(stream: MStream, ic: int) -> MStream:
    """``stream`` with ``ic`` interleaved copies of its body.

    Returns a new stream retiring ``ic * elems_per_iter`` elements per
    iteration over ``iters // ic`` iterations; the input is untouched.
    """
    if ic < 1:
        raise ValueError(f"interleave count must be >= 1, got {ic}")
    if ic == 1:
        return stream
    if stream.iters % ic:
        raise ValueError(
            f"interleave {ic} does not divide {stream.iters} iterations "
            f"of {stream.name!r}"
        )
    stride = max((i.id for i in stream.all_instrs()), default=-1) + 1
    out = MStream(
        name=f"{stream.name}.ic{ic}",
        iters=stream.iters // ic,
        elems_per_iter=stream.elems_per_iter * ic,
        remainder=stream.remainder,
        working_set_bytes=stream.working_set_bytes,
    )
    for c in range(ic):
        out.body.extend(_remap_edges(ins, c, ic, stride) for ins in stream.body)
        out.prologue.extend(
            replace(ins, id=ins.id + c * stride) for ins in stream.prologue
        )
        out.epilogue.extend(
            replace(ins, id=ins.id + c * stride) for ins in stream.epilogue
        )
    return out
