"""Machine-level instruction streams.

Codegen lowers a kernel (scalar) or a vectorization plan (vector) into
an :class:`MStream`: the steady-state loop body plus amortized
prologue/epilogue instructions.  Streams carry just enough structure
for the timing model — instruction class, element type, lane count,
intra-iteration data dependences, loop-carried dependences with their
distances, memory traffic, and an execution weight for branchy scalar
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ir.types import DType
from ..targets.classes import IClass, MEMORY_CLASSES


@dataclass
class MInstr:
    """One machine instruction in a stream.

    ``srcs`` are producer instruction ids within the same iteration;
    ``carried`` are ``(producer_id, distance)`` edges from previous
    iterations.  ``weight`` is the expected executions per loop
    iteration (< 1 for instructions under a scalar branch).  ``traffic``
    is the bytes this instruction moves to/from memory per execution.
    """

    id: int
    iclass: IClass
    dtype: DType
    lanes: int
    srcs: tuple[int, ...] = ()
    carried: tuple[tuple[int, int], ...] = ()
    weight: float = 1.0
    traffic: int = 0
    note: str = ""
    #: affine accesses set these for group-aware traffic accounting:
    #: the array name and the access stride in *elements per stream
    #: iteration*.  Accesses sharing (array, direction, stride) form an
    #: access group whose cache-line footprint is charged jointly, so
    #: e.g. unrolled copies covering consecutive offsets are not each
    #: billed a full line.
    mem_array: str = ""
    mem_stride: Optional[int] = None

    @property
    def is_vector(self) -> bool:
        return self.lanes > 1

    @property
    def is_memory(self) -> bool:
        return self.iclass in MEMORY_CLASSES

    def __str__(self) -> str:
        form = f"v{self.lanes}" if self.lanes > 1 else "s"
        deps = ",".join(map(str, self.srcs))
        carried = " ".join(f"^{p}@{d}" for p, d in self.carried)
        parts = [f"%{self.id} = {self.iclass.value}.{form}.{self.dtype.value}"]
        if deps:
            parts.append(f"({deps})")
        if carried:
            parts.append(carried)
        if self.weight != 1.0:
            parts.append(f"w={self.weight:.2f}")
        if self.note:
            parts.append(f"; {self.note}")
        return " ".join(parts)


@dataclass
class MStream:
    """A lowered loop: prologue + steady-state body + epilogue.

    ``iters`` is how many times the body executes; ``elems_per_iter``
    how many elements of the *original* loop each body execution
    retires (1 for scalar code, VF for vector code).  ``remainder``
    counts original-loop iterations left to a scalar tail (vectorized
    streams with trip % VF != 0).
    """

    name: str
    body: list[MInstr] = field(default_factory=list)
    prologue: list[MInstr] = field(default_factory=list)
    epilogue: list[MInstr] = field(default_factory=list)
    iters: int = 1
    elems_per_iter: int = 1
    remainder: int = 0
    working_set_bytes: int = 0

    def all_instrs(self) -> Iterable[MInstr]:
        yield from self.prologue
        yield from self.body
        yield from self.epilogue

    def counts(self, include_overhead: bool = True) -> dict[IClass, float]:
        """Weighted instruction counts per class for one body iteration.

        Prologue/epilogue instructions are amortized over ``iters`` when
        ``include_overhead`` (they contribute fractionally — exactly the
        way the paper's block equations count one-off reduction and
        broadcast costs).
        """
        out: dict[IClass, float] = {}
        for ins in self.body:
            out[ins.iclass] = out.get(ins.iclass, 0.0) + ins.weight
        if include_overhead and self.iters > 0:
            for ins in (*self.prologue, *self.epilogue):
                out[ins.iclass] = out.get(ins.iclass, 0.0) + ins.weight / self.iters
        return out

    def bytes_per_iter(self) -> float:
        """Expected memory traffic of one body iteration.

        Affine accesses are charged per *access group*: all accesses of
        one array with the same stride and direction (loads and stores
        separately) jointly sweep a ``|stride| * elem``-byte window per
        iteration, and a group of ``m`` accesses can touch at most
        ``m`` cache lines — so the group's footprint is
        ``min(|stride|*elem, m*64)``.  Non-groupable accesses (indirect,
        broadcasts) carry their own per-instruction ``traffic``.
        """
        from .lowering import CACHE_LINE  # local import avoids a cycle

        total = 0.0
        groups: dict[tuple, list[MInstr]] = {}
        for ins in self.body:
            if ins.mem_stride is not None and ins.mem_stride != 0:
                key = (
                    ins.mem_array,
                    ins.iclass in (IClass.STORE, IClass.MASKSTORE, IClass.SCATTER),
                    ins.mem_stride,
                )
                groups.setdefault(key, []).append(ins)
            else:
                total += ins.traffic * ins.weight
        for (_, _, stride), members in groups.items():
            m = sum(ins.weight for ins in members)
            elem = members[0].dtype.size
            total += min(abs(stride) * elem, m * CACHE_LINE)
        return total

    def size(self) -> int:
        return len(self.body)

    def dump(self) -> str:
        lines = [f"stream {self.name}: {self.iters} iters x "
                 f"{self.elems_per_iter} elem(s), remainder {self.remainder}"]
        for label, seq in (
            ("prologue", self.prologue),
            ("body", self.body),
            ("epilogue", self.epilogue),
        ):
            if seq:
                lines.append(f"  {label}:")
                lines.extend(f"    {ins}" for ins in seq)
        return "\n".join(lines)


class StreamBuilder:
    """Appends instructions with automatic id assignment."""

    def __init__(self, name: str):
        self.stream = MStream(name)
        self._next_id = 0
        self._section = self.stream.body

    def in_prologue(self) -> "StreamBuilder":
        self._section = self.stream.prologue
        return self

    def in_body(self) -> "StreamBuilder":
        self._section = self.stream.body
        return self

    def in_epilogue(self) -> "StreamBuilder":
        self._section = self.stream.epilogue
        return self

    def emit(
        self,
        iclass: IClass,
        dtype: DType,
        lanes: int = 1,
        srcs: tuple[int, ...] = (),
        carried: tuple[tuple[int, int], ...] = (),
        weight: float = 1.0,
        traffic: int = 0,
        note: str = "",
        mem_array: str = "",
        mem_stride: Optional[int] = None,
    ) -> int:
        ins = MInstr(
            id=self._next_id,
            iclass=iclass,
            dtype=dtype,
            lanes=lanes,
            srcs=tuple(s for s in srcs if s is not None),
            carried=carried,
            weight=weight,
            traffic=traffic,
            note=note,
            mem_array=mem_array,
            mem_stride=mem_stride,
        )
        self._next_id += 1
        self._section.append(ins)
        return ins.id

    def find(self, instr_id: int) -> Optional[MInstr]:
        for ins in self.stream.all_instrs():
            if ins.id == instr_id:
                return ins
        return None

    def add_carried(self, consumer_id: int, producer_id: int, distance: int) -> None:
        ins = self.find(consumer_id)
        assert ins is not None
        ins.carried = ins.carried + ((producer_id, distance),)
