"""Lowering of SLP plans: packed statements vectorize, the rest stay
scalar × factor.

The stream models the unroll-then-pack output: one stream iteration
retires ``factor`` original iterations; packed statements lower exactly
like loop-vectorized code at VF = factor, while unpacked statements
appear as ``factor`` scalar copies (subscripts shifted per copy by the
unroll normalization).
"""

from __future__ import annotations

from ..ir.stmt import IfBlock, Stmt
from ..targets.base import Target
from ..vectorize.plan import VectorizationPlan
from ..vectorize.unroll import _rewrite_stmt
from ..sim.measure import estimate_guard_probs
from .minstr import MStream, StreamBuilder
from .scalar_gen import DEFAULT_GUARD_PROB, ScalarLowerer
from .vector_gen import VectorLowerer


def _count_guards(stmt: Stmt) -> int:
    return sum(1 for s in stmt.walk() if isinstance(s, IfBlock))


def _expanded_guard_probs(
    kernel, packed: frozenset[int], factor: int, original: dict[int, float]
) -> dict[int, float]:
    """Map guard indices of the unrolled scalar side to original probs.

    The scalar lowerer numbers IfBlocks in encounter order; each copy
    of an unpacked statement replays that statement's original guard
    range, so the expanded index sequence is reconstructible here.
    """
    expanded: dict[int, float] = {}
    orig_start = 0
    seq = 0
    for idx, stmt in enumerate(kernel.body):
        gc = _count_guards(stmt)
        if idx not in packed:
            for _u in range(factor):
                for j in range(gc):
                    expanded[seq] = original.get(
                        orig_start + j, DEFAULT_GUARD_PROB
                    )
                    seq += 1
        orig_start += gc
    return expanded


def lower_slp(plan: VectorizationPlan, target: Target) -> MStream:
    kernel = plan.kernel
    factor = plan.vf
    builder = StreamBuilder(f"{kernel.name}.slp.f{factor}")

    has_guards = any(isinstance(s, IfBlock) for s in kernel.stmts())
    original_probs = estimate_guard_probs(kernel) if has_guards else {}
    vec = VectorLowerer(plan, target, builder)
    # The scalar side shares the builder so ids stay globally unique,
    # but keeps its own CSE/producer state (packed and scalar copies do
    # not forward values to each other in this model).
    scal = ScalarLowerer(
        kernel,
        target,
        builder,
        guard_probs=_expanded_guard_probs(
            kernel, plan.packed_stmts, factor, original_probs
        ),
    )
    inner = kernel.inner_level

    for idx, stmt in enumerate(kernel.body):
        if idx in plan.packed_stmts:
            vec.lower_stmt(stmt)
        else:
            for u in range(factor):
                scal.lower_stmt(_rewrite_stmt(stmt, inner, factor, u, lambda n: n))
    vec.resolve_carried_scalars()
    scal.resolve_carried_scalars()
    vec.attach_memory_recurrences()
    scal.attach_memory_recurrences()
    vec.finish_reductions()

    stream = builder.stream
    inner_iters = kernel.inner.trip // factor
    outer = kernel.total_iterations // kernel.inner.trip
    stream.iters = inner_iters * outer
    stream.elems_per_iter = factor
    stream.remainder = (kernel.inner.trip % factor) * outer
    stream.working_set_bytes = kernel.working_set_bytes()
    return stream
