"""Vector code generation.

Lowers a :class:`VectorizationPlan` to the target's vector instruction
stream.  This is where target capabilities shape the instruction mix
the cost models see:

* unit-stride accesses become packed loads/stores;
* reversed accesses add a lane-reverse shuffle;
* small constant strides become interleaved load/store groups
  (``stride`` packed ops + ``stride`` shuffles — the ld2/ld3 idiom);
* large strides and indirect accesses become hardware gathers where
  the target has them, otherwise per-lane scalar memory ops threaded
  through INSERT/EXTRACT (expensive on NEON, whose GPR↔SIMD moves are
  slow);
* guarded stores become masked stores on AVX2 and load+blend+store on
  NEON;
* reductions get an identity-splat prologue, a vector accumulator with
  a loop-carried self-dependence, and a horizontal REDUCE epilogue;
* EXP (transcendental calls) is scalarized lane by lane on hardware
  targets; the IR-level pseudo-target keeps it as one vector intrinsic.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.access import linearize
from ..analysis.reduction import ScalarClass
from ..ir.expr import Affine, Expr, Indirect, Load, UnOp, UnOpKind
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign, Stmt
from ..targets.base import Target
from ..targets.classes import IClass
from ..vectorize.plan import VectorizationPlan
from .lowering import BaseLowerer, LowerError, access_traffic
from .minstr import MStream, StreamBuilder


class VectorLowerer(BaseLowerer):
    def __init__(self, plan: VectorizationPlan, target: Target, builder: StreamBuilder):
        super().__init__(plan.kernel, target, builder, lanes=plan.vf)
        self.plan = plan
        self.vf = plan.vf
        #: active guard mask instruction id (None = unguarded)
        self.mask: Optional[int] = None
        self._stores: dict[str, list[tuple[Affine, int]]] = {}
        self._loads: dict[str, list[tuple[Affine, int]]] = {}
        self._reduction_producers: dict[str, int] = {}

    # -- memory: loads ------------------------------------------------------

    def lower_load(self, load: Load, weight: float) -> Optional[int]:
        decl = self.kernel.arrays[load.array]
        lin = linearize(decl, load.subscript, self.kernel.depth)
        if lin is None:
            return self._lower_gather(load, decl, weight)
        stride = lin.coeff(self.kernel.inner_level)
        out = self._lower_affine_load(load, decl, stride, weight)
        self._loads.setdefault(load.array, []).append((lin, out))
        return out

    def _lower_affine_load(self, load, decl, stride: int, weight: float) -> int:
        elem = decl.dtype.size
        if stride == 0:
            return self._lower_invariant_load(load, decl, weight)
        if stride == 1:
            return self.b.emit(
                IClass.LOAD,
                decl.dtype,
                lanes=self.vf,
                weight=weight,
                traffic=self.vf * elem,
                note=f"{load}",
                mem_array=load.array,
                mem_stride=self.vf,
            )
        if stride == -1:
            ld = self.b.emit(
                IClass.LOAD,
                decl.dtype,
                lanes=self.vf,
                weight=weight,
                traffic=self.vf * elem,
                note=f"{load} (reversed)",
                mem_array=load.array,
                mem_stride=-self.vf,
            )
            return self.b.emit(
                IClass.SHUFFLE,
                decl.dtype,
                lanes=self.vf,
                srcs=(ld,),
                weight=weight,
                note="lane reverse",
            )
        s = abs(stride)
        if s <= self.target.max_interleave_stride:
            # Interleaved access group: |s| packed loads + |s| shuffles
            # deinterleave s*VF contiguous elements.
            loads = tuple(
                self.b.emit(
                    IClass.LOAD,
                    decl.dtype,
                    lanes=self.vf,
                    weight=weight,
                    traffic=self.vf * elem,
                    note=f"{load} (interleave {s}, part {p})",
                    mem_array=load.array,
                    mem_stride=s * self.vf,
                )
                for p in range(s)
            )
            out = loads[0]
            for p in range(s):
                out = self.b.emit(
                    IClass.SHUFFLE,
                    decl.dtype,
                    lanes=self.vf,
                    srcs=loads if p == 0 else (out,),
                    weight=weight,
                    note="deinterleave",
                )
            return out
        # Wide stride: gather on hardware that has it, otherwise
        # scalarize through lane inserts.
        if self.target.has_gather:
            return self.b.emit(
                IClass.GATHER,
                decl.dtype,
                lanes=self.vf,
                weight=weight,
                traffic=self.vf * access_traffic(elem, stride),
                note=f"{load} (strided gather)",
            )
        return self._scalarized_load(
            decl, weight, note=f"{load} (scalarized)", array=load.array, stride=stride
        )

    def _lower_invariant_load(self, load, decl, weight: float) -> int:
        hoistable = (
            self.mask is None
            and weight >= 1.0
            and load.array not in self.kernel.arrays_written()
        )
        if hoistable and self.kernel.depth == 1:
            section = self.b._section
            self.b.in_prologue()
            out = self.b.emit(
                IClass.BROADCAST,
                decl.dtype,
                lanes=self.vf,
                traffic=decl.dtype.size,
                note=f"{load} (hoisted splat)",
            )
            self.b._section = section
            return out
        # Inner-invariant in a 2-D nest: re-splat once per outer
        # iteration; amortize over the inner vector iterations.
        eff = weight
        if hoistable and self.kernel.depth > 1:
            eff = weight / max(1, self.kernel.inner.trip // self.vf)
        return self.b.emit(
            IClass.BROADCAST,
            decl.dtype,
            lanes=self.vf,
            weight=eff,
            traffic=decl.dtype.size,
            note=f"{load} (splat)",
        )

    def _lower_gather(self, load, decl, weight: float) -> Optional[int]:
        # Load the index vector first.
        idx_srcs = []
        for ix in load.subscript:
            if isinstance(ix, Indirect):
                idx_load = Load(
                    ix.array,
                    (ix.index.at_depth(self.kernel.depth),),
                    self.kernel.arrays[ix.array].dtype,
                )
                rid = self.lower_expr(idx_load, weight)
                if isinstance(rid, int) and rid >= 0:
                    idx_srcs.append(rid)
        if self.target.has_gather:
            return self.b.emit(
                IClass.GATHER,
                decl.dtype,
                lanes=self.vf,
                srcs=tuple(idx_srcs),
                weight=weight,
                traffic=self.vf * access_traffic(decl.dtype.size, None),
                note=f"{load} (gather)",
            )
        # No hardware gather: extract each index, scalar-load, insert.
        for _ in range(self.vf):
            self.b.emit(
                IClass.EXTRACT,
                decl.dtype,
                lanes=self.vf,
                srcs=tuple(idx_srcs),
                weight=weight,
                note="extract index",
            )
        return self._scalarized_load(decl, weight, note=f"{load} (scalarized gather)")

    def _scalarized_load(
        self, decl, weight: float, note: str, array: str = "", stride=None
    ) -> int:
        out = 0
        for lane in range(self.vf):
            ld = self.b.emit(
                IClass.LOAD,
                decl.dtype,
                lanes=1,
                weight=weight,
                traffic=access_traffic(decl.dtype.size, None),
                note=f"{note} lane {lane}",
                mem_array=array if stride is not None else "",
                mem_stride=stride * self.vf if stride is not None else None,
            )
            out = self.b.emit(
                IClass.INSERT,
                decl.dtype,
                lanes=self.vf,
                srcs=(ld,) if lane == 0 else (ld, out),
                weight=weight,
                note="insert lane",
            )
        return out

    # -- memory: stores -----------------------------------------------------

    def lower_store(self, stmt: ArrayStore, weight: float) -> None:
        decl = self.kernel.arrays[stmt.array]
        val = self.lower_expr(stmt.value, weight)
        val_srcs = (val,) if isinstance(val, int) and val >= 0 else ()
        lin = linearize(decl, stmt.subscript, self.kernel.depth)
        elem = decl.dtype.size

        if lin is None:
            self._lower_scatter(stmt, decl, val_srcs, weight)
            self.invalidate_array(stmt.array)
            return

        stride = lin.coeff(self.kernel.inner_level)
        out: Optional[int] = None
        if stride in (1, -1):
            srcs = val_srcs
            if stride == -1:
                srcs = (
                    self.b.emit(
                        IClass.SHUFFLE,
                        decl.dtype,
                        lanes=self.vf,
                        srcs=val_srcs,
                        weight=weight,
                        note="lane reverse",
                    ),
                )
            if self.mask is None:
                out = self.b.emit(
                    IClass.STORE,
                    decl.dtype,
                    lanes=self.vf,
                    srcs=srcs,
                    weight=weight,
                    traffic=self.vf * elem,
                    note=f"{stmt.array}[..] =",
                    mem_array=stmt.array,
                    mem_stride=stride * self.vf,
                )
            elif self.target.has_masked_mem:
                out = self.b.emit(
                    IClass.MASKSTORE,
                    decl.dtype,
                    lanes=self.vf,
                    srcs=srcs + (self.mask,),
                    weight=weight,
                    traffic=self.vf * elem,
                    note=f"{stmt.array}[..] = (masked)",
                    mem_array=stmt.array,
                    mem_stride=stride * self.vf,
                )
            else:
                # NEON-style masked store: load old, blend, store full.
                old = self.b.emit(
                    IClass.LOAD,
                    decl.dtype,
                    lanes=self.vf,
                    weight=weight,
                    traffic=self.vf * elem,
                    note="masked-store reload",
                    mem_array=stmt.array,
                    mem_stride=stride * self.vf,
                )
                blended = self.b.emit(
                    IClass.BLEND,
                    decl.dtype,
                    lanes=self.vf,
                    srcs=srcs + (old, self.mask),
                    weight=weight,
                    note="masked-store blend",
                )
                out = self.b.emit(
                    IClass.STORE,
                    decl.dtype,
                    lanes=self.vf,
                    srcs=(blended,),
                    weight=weight,
                    traffic=self.vf * elem,
                    note=f"{stmt.array}[..] = (blend-store)",
                    mem_array=stmt.array,
                    mem_stride=stride * self.vf,
                )
        elif (
            self.mask is None
            and abs(stride) <= self.target.max_interleave_stride
        ):
            s = abs(stride)
            # Interleaved store group: shuffle into s parts, store each.
            for p in range(s):
                sh = self.b.emit(
                    IClass.SHUFFLE,
                    decl.dtype,
                    lanes=self.vf,
                    srcs=val_srcs,
                    weight=weight,
                    note=f"interleave part {p}",
                )
                out = self.b.emit(
                    IClass.STORE,
                    decl.dtype,
                    lanes=self.vf,
                    srcs=(sh,),
                    weight=weight,
                    traffic=self.vf * elem,
                    note=f"{stmt.array}[..] = (interleave {s})",
                    mem_array=stmt.array,
                    mem_stride=s * self.vf,
                )
        elif self.target.has_scatter and (
            self.mask is None or self.target.has_masked_mem
        ):
            # Wide strided store as a single (possibly masked) scatter.
            out = self.b.emit(
                IClass.SCATTER,
                decl.dtype,
                lanes=self.vf,
                srcs=val_srcs + ((self.mask,) if self.mask is not None else ()),
                weight=weight,
                traffic=self.vf * access_traffic(elem, stride),
                note=f"{stmt.array}[..] = (strided scatter)",
            )
        else:
            self._scalarized_store(decl, val_srcs, weight, masked=self.mask is not None)
        if out is not None and lin is not None:
            self._stores.setdefault(stmt.array, []).append((lin, out))
        self.invalidate_array(stmt.array)

    def _lower_scatter(self, stmt, decl, val_srcs, weight: float) -> None:
        idx_srcs = []
        for ix in stmt.subscript:
            if isinstance(ix, Indirect):
                idx_load = Load(
                    ix.array,
                    (ix.index.at_depth(self.kernel.depth),),
                    self.kernel.arrays[ix.array].dtype,
                )
                rid = self.lower_expr(idx_load, weight)
                if isinstance(rid, int) and rid >= 0:
                    idx_srcs.append(rid)
        if self.target.has_scatter and (
            self.mask is None or self.target.has_masked_mem
        ):
            mask_src = (self.mask,) if self.mask is not None else ()
            self.b.emit(
                IClass.SCATTER,
                decl.dtype,
                lanes=self.vf,
                srcs=tuple(val_srcs) + tuple(idx_srcs) + mask_src,
                weight=weight,
                traffic=self.vf * access_traffic(decl.dtype.size, None),
                note=f"{stmt.array}[ind] = (scatter)",
            )
            return
        for _ in range(self.vf):
            self.b.emit(
                IClass.EXTRACT,
                decl.dtype,
                lanes=self.vf,
                srcs=tuple(idx_srcs),
                weight=weight,
                note="extract index",
            )
        self._scalarized_store(decl, val_srcs, weight, masked=self.mask is not None)

    def _scalarized_store(self, decl, val_srcs, weight: float, masked: bool) -> None:
        # Per-lane extract + scalar store; masked lanes branch, so each
        # store executes with the guard's probability folded into the
        # vector-code weight (we keep weight=1: if-converted code pays
        # for the extracts regardless and we charge the store lanes too,
        # matching LLVM's conservative scalarization cost).
        for lane in range(self.vf):
            ex = self.b.emit(
                IClass.EXTRACT,
                decl.dtype,
                lanes=self.vf,
                srcs=tuple(val_srcs),
                weight=weight,
                note=f"extract lane {lane}",
            )
            self.b.emit(
                IClass.STORE,
                decl.dtype,
                lanes=1,
                srcs=(ex,),
                weight=weight,
                traffic=access_traffic(decl.dtype.size, None),
                note=f"scalarized store lane {lane}",
            )

    def attach_memory_recurrences(self) -> None:
        """Post-pass: carried store→load edges, in vector iterations."""
        for array, loads in self._loads.items():
            for lin, load_id in loads:
                c_inner = lin.coeff(self.kernel.inner_level)
                if c_inner == 0:
                    continue
                for store_lin, store_id in self._stores.get(array, []):
                    if store_lin.coeffs != lin.coeffs:
                        continue
                    delta = store_lin.offset - lin.offset
                    if delta % c_inner != 0:
                        continue
                    d = delta // c_inner
                    if d >= 1:
                        self.b.add_carried(
                            load_id, store_id, max(1, d // self.vf)
                        )

    # -- statements ----------------------------------------------------------

    def lower_stmt(self, stmt: Stmt, weight: float = 1.0) -> None:
        if isinstance(stmt, ArrayStore):
            self.lower_store(stmt, weight)
        elif isinstance(stmt, ScalarAssign):
            self._lower_scalar_assign(stmt, weight)
        elif isinstance(stmt, IfBlock):
            self._lower_if(stmt, weight)
        else:
            raise LowerError(f"unknown statement {type(stmt).__name__}")

    def _lower_scalar_assign(self, stmt: ScalarAssign, weight: float) -> None:
        decl = self.kernel.scalars[stmt.name]
        rid = self.lower_expr(stmt.value, weight)
        out = rid if isinstance(rid, int) and rid >= 0 else None
        if self.mask is not None:
            # If-converted assignment: blend with the previous value.
            srcs = [self.mask]
            if out is not None:
                srcs.append(out)
            prev = self.scalar_producer.get(stmt.name)
            carried_pending = False
            if prev is not None:
                srcs.append(prev)
            elif stmt.name not in self.scalar_producer:
                carried_pending = True  # previous value is last iteration's
            out = self.b.emit(
                IClass.BLEND,
                decl.dtype,
                lanes=self.vf,
                srcs=tuple(srcs),
                weight=weight,
                note=f"{stmt.name} = (if-converted)",
            )
            if carried_pending:
                self.pending_carried.append((out, stmt.name))
        self.scalar_producer[stmt.name] = out
        info = self.plan.scalar_info.get(stmt.name)
        if info is not None and info.klass is ScalarClass.REDUCTION and out is not None:
            self._reduction_producers[stmt.name] = out

    def _lower_if(self, stmt: IfBlock, weight: float) -> None:
        cond_id = self.lower_expr(stmt.cond, weight)
        outer = self.mask
        then_mask = cond_id
        if outer is not None and cond_id is not None:
            then_mask = self.b.emit(
                IClass.LOGIC,
                stmt.cond.dtype,
                lanes=self.vf,
                srcs=(outer, cond_id),
                weight=weight,
                note="nested mask and",
            )
        snapshot = dict(self.available)
        self.mask = then_mask
        for s in stmt.then_body:
            self.lower_stmt(s, weight)
        self.available = snapshot
        if stmt.else_body:
            neg = self.b.emit(
                IClass.LOGIC,
                stmt.cond.dtype,
                lanes=self.vf,
                srcs=(cond_id,) if cond_id is not None else (),
                weight=weight,
                note="mask not",
            )
            if outer is not None:
                neg = self.b.emit(
                    IClass.LOGIC,
                    stmt.cond.dtype,
                    lanes=self.vf,
                    srcs=(outer, neg),
                    weight=weight,
                    note="nested mask and",
                )
            self.mask = neg
            for s in stmt.else_body:
                self.lower_stmt(s, weight)
            self.available = snapshot
        self.mask = outer

    # -- EXP scalarization (no vector transcendentals) ------------------------

    def _lower_uncached(self, expr: Expr, weight: float):
        if (
            isinstance(expr, UnOp)
            and expr.op is UnOpKind.EXP
            and self.target.scalarize_calls
        ):
            src = self.lower_expr(expr.operand, weight)
            out = src if isinstance(src, int) and src >= 0 else None
            last = None
            for lane in range(self.vf):
                ex = self.b.emit(
                    IClass.EXTRACT,
                    expr.dtype,
                    lanes=self.vf,
                    srcs=(out,) if out is not None else (),
                    weight=weight,
                    note=f"exp lane {lane}",
                )
                call = self.b.emit(
                    IClass.EXP, expr.dtype, lanes=1, srcs=(ex,), weight=weight
                )
                last = self.b.emit(
                    IClass.INSERT,
                    expr.dtype,
                    lanes=self.vf,
                    srcs=(call,) if last is None else (call, last),
                    weight=weight,
                )
            return last
        return super()._lower_uncached(expr, weight)

    # -- reductions ---------------------------------------------------------------

    def finish_reductions(self) -> None:
        for name, producer in self._reduction_producers.items():
            decl = self.kernel.scalars[name]
            self.b.in_prologue()
            self.b.emit(
                IClass.BROADCAST,
                decl.dtype,
                lanes=self.vf,
                note=f"{name} identity splat",
            )
            self.b.in_epilogue()
            self.b.emit(
                IClass.REDUCE,
                decl.dtype,
                lanes=self.vf,
                srcs=(producer,),
                note=f"horizontal {name}",
            )
            self.b.in_body()


def lower_vector(plan: VectorizationPlan, target: Target) -> MStream:
    """Lower an LLV plan to the target vector instruction stream."""
    kernel = plan.kernel
    builder = StreamBuilder(f"{kernel.name}.vector.vf{plan.vf}")
    low = VectorLowerer(plan, target, builder)
    for stmt in kernel.body:
        low.lower_stmt(stmt)
    low.resolve_carried_scalars()
    low.attach_memory_recurrences()
    low.finish_reductions()
    stream = builder.stream
    inner_vec_iters = kernel.inner.trip // plan.vf
    outer = kernel.total_iterations // kernel.inner.trip
    stream.iters = inner_vec_iters * outer
    stream.elems_per_iter = plan.vf
    stream.remainder = (kernel.inner.trip % plan.vf) * outer
    stream.working_set_bytes = kernel.working_set_bytes()
    return stream
