"""Shared expression-lowering machinery for scalar and vector codegen.

Both generators walk the same expression trees; they differ in how
memory accesses, lane movement, and guards are lowered.  The shared
base handles operator mapping, FMA contraction, implicit conversions,
value numbering (CSE) with store invalidation, and loop-carried scalar
dependences.
"""

from __future__ import annotations

from typing import Optional

from ..ir.expr import (
    BinOp,
    BinOpKind,
    Compare,
    Const,
    Convert,
    Expr,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
    UnOpKind,
)
from ..ir.kernel import LoopKernel
from ..ir.types import DType
from ..targets.base import Target
from ..targets.classes import IClass
from .minstr import StreamBuilder

BINOP_CLASS = {
    BinOpKind.ADD: IClass.ADD,
    BinOpKind.SUB: IClass.ADD,
    BinOpKind.MUL: IClass.MUL,
    BinOpKind.DIV: IClass.DIV,
    BinOpKind.MIN: IClass.MINMAX,
    BinOpKind.MAX: IClass.MINMAX,
    BinOpKind.AND: IClass.LOGIC,
    BinOpKind.OR: IClass.LOGIC,
    BinOpKind.XOR: IClass.LOGIC,
    BinOpKind.SHL: IClass.SHIFT,
    BinOpKind.SHR: IClass.SHIFT,
}

UNOP_CLASS = {
    UnOpKind.NEG: IClass.ADD,
    UnOpKind.ABS: IClass.ABS,
    UnOpKind.SQRT: IClass.SQRT,
    UnOpKind.EXP: IClass.EXP,
    UnOpKind.NOT: IClass.LOGIC,
}

#: Bytes of one cache line; drives the traffic cost of sparse accesses.
CACHE_LINE = 64


def access_traffic(elem_size: int, stride: Optional[int]) -> int:
    """Memory traffic one element of an access costs, in bytes.

    Contiguous accesses use every byte they pull in.  Strided accesses
    drag whole cache lines for a few useful elements; indirect accesses
    (stride None) are charged half a line, crediting some locality.
    """
    if stride is None:
        return CACHE_LINE // 4
    s = abs(stride)
    if s <= 1:
        return elem_size
    return min(s * elem_size, CACHE_LINE)


class LowerError(Exception):
    """Kernel contains a construct this generator cannot lower."""


class BaseLowerer:
    """Common expression-to-instruction lowering.

    Subclasses implement :meth:`lower_load` and lane handling; the base
    provides arithmetic lowering with CSE, FMA contraction and implicit
    integer→float conversions.
    """

    def __init__(
        self,
        kernel: LoopKernel,
        target: Target,
        builder: StreamBuilder,
        *,
        lanes: int = 1,
        fuse_fma: bool = True,
    ):
        self.kernel = kernel
        self.target = target
        self.b = builder
        self.lanes = lanes
        self.fuse_fma = fuse_fma
        #: value numbering: expr -> instr id (or None for free values)
        self.available: dict[Expr, Optional[int]] = {}
        #: producer instr of each scalar assigned earlier this iteration
        self.scalar_producer: dict[str, Optional[int]] = {}
        #: (consumer instr id, scalar name) waiting for a carried edge
        self.pending_carried: list[tuple[int, str]] = []
        self._assigned = kernel.assigned_scalars()

    # -- subclass hooks ---------------------------------------------------

    def lower_load(self, load: Load, weight: float) -> Optional[int]:
        raise NotImplementedError

    def lower_scalar_ref(self, ref: ScalarRef, weight: float) -> Optional[int]:
        """Resolve a scalar reference to its producer (or a carried edge)."""
        if ref.name in self.scalar_producer:
            return self.scalar_producer[ref.name]
        if ref.name in self._assigned:
            # Assigned later in the body: the value is last iteration's.
            # Returning a sentinel would lose type info; instead the
            # consumer registers a pending carried edge.
            return _CARRIED_SENTINEL
        return None  # loop-invariant parameter, lives in a register

    def lower_const(self, const: Const, weight: float) -> Optional[int]:
        return None  # immediates are free in both forms

    def lower_iter_value(self, iv: IterValue, weight: float) -> Optional[int]:
        return None  # the induction variable is a live register

    # -- main dispatcher -----------------------------------------------------

    def lower_expr(self, expr: Expr, weight: float = 1.0) -> Optional[int]:
        if expr in self.available:
            return self.available[expr]
        result = self._lower_uncached(expr, weight)
        if result is not _CARRIED_SENTINEL:
            self.available[expr] = result
        return result

    def _lower_uncached(self, expr: Expr, weight: float) -> Optional[int]:
        if isinstance(expr, Const):
            return self.lower_const(expr, weight)
        if isinstance(expr, ScalarRef):
            return self.lower_scalar_ref(expr, weight)
        if isinstance(expr, IterValue):
            return self.lower_iter_value(expr, weight)
        if isinstance(expr, Load):
            return self.lower_load(expr, weight)
        if isinstance(expr, BinOp):
            return self._lower_binop(expr, weight)
        if isinstance(expr, UnOp):
            return self._emit_op(
                UNOP_CLASS[expr.op], expr.dtype, (expr.operand,), expr, weight
            )
        if isinstance(expr, Compare):
            return self._emit_op(
                IClass.CMP, expr.lhs.dtype, (expr.lhs, expr.rhs), expr, weight
            )
        if isinstance(expr, Select):
            return self._emit_op(
                IClass.BLEND,
                expr.dtype,
                (expr.cond, expr.if_true, expr.if_false),
                expr,
                weight,
            )
        if isinstance(expr, Convert):
            return self._emit_op(IClass.CVT, expr.dtype, (expr.operand,), expr, weight)
        raise LowerError(f"cannot lower expression {type(expr).__name__}")

    def _lower_binop(self, expr: BinOp, weight: float) -> Optional[int]:
        # FMA contraction: (x*y) + z, z + (x*y), (x*y) - z.
        if (
            self.fuse_fma
            and expr.op in (BinOpKind.ADD, BinOpKind.SUB)
            and expr.dtype.is_float
        ):
            mul = None
            other = None
            if isinstance(expr.lhs, BinOp) and expr.lhs.op is BinOpKind.MUL:
                mul, other = expr.lhs, expr.rhs
            elif (
                expr.op is BinOpKind.ADD
                and isinstance(expr.rhs, BinOp)
                and expr.rhs.op is BinOpKind.MUL
            ):
                mul, other = expr.rhs, expr.lhs
            if mul is not None:
                return self._emit_op(
                    IClass.FMA,
                    expr.dtype,
                    (mul.lhs, mul.rhs, other),
                    expr,
                    weight,
                )
        return self._emit_op(
            BINOP_CLASS[expr.op], expr.dtype, (expr.lhs, expr.rhs), expr, weight
        )

    def _emit_op(
        self,
        iclass: IClass,
        dtype: DType,
        operands: tuple[Expr, ...],
        expr: Expr,
        weight: float,
    ) -> int:
        srcs: list[int] = []
        carried_names: list[str] = []
        for op in operands:
            rid = self.lower_expr(op, weight)
            if rid is _CARRIED_SENTINEL:
                assert isinstance(op, ScalarRef)
                carried_names.append(op.name)
            elif rid is not None:
                srcs.append(rid)
            # Implicit conversion when an operand's type differs in kind.
            if (
                op.dtype is not dtype
                and not op.dtype.is_bool
                and not dtype.is_bool
                and op.dtype.is_float != dtype.is_float
            ):
                cid = self.b.emit(
                    IClass.CVT,
                    dtype,
                    lanes=self.lanes,
                    srcs=(rid,) if isinstance(rid, int) else (),
                    weight=weight,
                    note=f"implicit {op.dtype.value}->{dtype.value}",
                )
                if isinstance(rid, int) and rid in srcs:
                    srcs[srcs.index(rid)] = cid
                else:
                    srcs.append(cid)
        out = self.b.emit(
            iclass, dtype, lanes=self.lanes, srcs=tuple(srcs), weight=weight
        )
        for name in carried_names:
            self.pending_carried.append((out, name))
        return out

    # -- post-pass ---------------------------------------------------------------

    def resolve_carried_scalars(self) -> None:
        """Patch carried edges for scalars read before their assignment."""
        for consumer_id, name in self.pending_carried:
            producer = self.scalar_producer.get(name)
            if producer is not None:
                self.b.add_carried(consumer_id, producer, 1)
        self.pending_carried.clear()

    def invalidate_array(self, array: str) -> None:
        """Drop CSE entries that load from ``array`` (after a store)."""
        stale = [
            e
            for e in self.available
            if any(isinstance(n, Load) and n.array == array for n in e.walk())
        ]
        for e in stale:
            del self.available[e]


#: Sentinel distinguishing "value from previous iteration" from "free value".
_CARRIED_SENTINEL = -1
