"""Scalar code generation: the baseline against which speedup is defined.

Lowers a kernel body to one scalar iteration's instruction stream,
modelling what -O3-without-vectorization would emit: FMA contraction,
CSE/load-forwarding, LICM hoisting of inner-loop-invariant loads, and
branchy control flow weighted by measured (or assumed) branch
probabilities.  Loop-carried memory and scalar dependences become
carried edges so the timing model prices serial recurrence chains.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.access import linearize
from ..ir.expr import Affine, Indirect, Load
from ..ir.kernel import LoopKernel
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign, Stmt
from ..targets.base import Target
from ..targets.classes import IClass
from .lowering import BaseLowerer, LowerError, access_traffic
from .minstr import MStream, StreamBuilder

#: Branch probability assumed when no measurement is supplied.
DEFAULT_GUARD_PROB = 0.5


class ScalarLowerer(BaseLowerer):
    def __init__(
        self,
        kernel: LoopKernel,
        target: Target,
        builder: StreamBuilder,
        guard_probs: Optional[dict[int, float]] = None,
        fuse_fma: bool = True,
    ):
        super().__init__(kernel, target, builder, lanes=1, fuse_fma=fuse_fma)
        self.guard_probs = guard_probs or {}
        #: stores seen this iteration: array -> [(linearized affine, id)]
        self._stores: dict[str, list[tuple[Affine, int]]] = {}
        #: affine loads of this iteration: array -> [(affine, id)]
        self._loads: dict[str, list[tuple[Affine, int]]] = {}
        self._guard_seq = 0

    # -- memory ----------------------------------------------------------------

    def lower_load(self, load: Load, weight: float) -> Optional[int]:
        decl = self.kernel.arrays[load.array]
        srcs: list[int] = []
        lin = linearize(decl, load.subscript, self.kernel.depth)
        stride: Optional[int]
        if lin is None:
            # Indirect: the index array is loaded first.
            for ix in load.subscript:
                if isinstance(ix, Indirect):
                    idx_load = Load(
                        ix.array,
                        (ix.index.at_depth(self.kernel.depth),),
                        self.kernel.arrays[ix.array].dtype,
                    )
                    rid = self.lower_expr(idx_load, weight)
                    if isinstance(rid, int) and rid >= 0:
                        srcs.append(rid)
            stride = None
        else:
            stride = lin.coeff(self.kernel.inner_level)

        hoisted = (
            lin is not None
            and stride == 0
            and weight >= 1.0
            and load.array not in self.kernel.arrays_written()
            and self.kernel.depth > 1
        )
        # LICM: an unconditionally-executed inner-invariant load of a
        # read-only array executes once per outer iteration.
        eff_weight = weight / self.kernel.inner.trip if hoisted else weight

        out = self.b.emit(
            IClass.LOAD,
            decl.dtype,
            lanes=1,
            srcs=tuple(srcs),
            weight=eff_weight,
            traffic=access_traffic(decl.dtype.size, stride),
            note=f"{load}",
            mem_array=load.array if lin is not None else "",
            mem_stride=stride if (lin is not None and stride) else None,
        )
        if lin is not None:
            self._loads.setdefault(load.array, []).append((lin, out))
        return out

    def attach_memory_recurrences(self) -> None:
        """Post-pass: loop-carried store→load edges through memory.

        Runs after the whole body is lowered so a statement like
        ``a[i] = a[i-1] + b[i]`` — whose load precedes its own store —
        still gets its distance-1 cycle.
        """
        for array, loads in self._loads.items():
            for lin, load_id in loads:
                c_inner = lin.coeff(self.kernel.inner_level)
                if c_inner == 0:
                    continue
                for store_lin, store_id in self._stores.get(array, []):
                    if store_lin.coeffs != lin.coeffs:
                        continue
                    delta = store_lin.offset - lin.offset
                    if delta % c_inner != 0:
                        continue
                    d = delta // c_inner
                    if d >= 1:
                        self.b.add_carried(load_id, store_id, d)

    def lower_store(self, stmt: ArrayStore, weight: float) -> int:
        decl = self.kernel.arrays[stmt.array]
        val = self.lower_expr(stmt.value, weight)
        srcs = [val] if isinstance(val, int) and val >= 0 else []
        lin = linearize(decl, stmt.subscript, self.kernel.depth)
        stride = lin.coeff(self.kernel.inner_level) if lin is not None else None
        if lin is None:
            for ix in stmt.subscript:
                if isinstance(ix, Indirect):
                    idx_load = Load(
                        ix.array,
                        (ix.index.at_depth(self.kernel.depth),),
                        self.kernel.arrays[ix.array].dtype,
                    )
                    rid = self.lower_expr(idx_load, weight)
                    if isinstance(rid, int) and rid >= 0:
                        srcs.append(rid)
        out = self.b.emit(
            IClass.STORE,
            decl.dtype,
            lanes=1,
            srcs=tuple(srcs),
            weight=weight,
            traffic=access_traffic(decl.dtype.size, stride),
            note=f"{stmt.array}[..] =",
            mem_array=stmt.array if lin is not None else "",
            mem_stride=stride if (lin is not None and stride) else None,
        )
        if lin is not None:
            self._stores.setdefault(stmt.array, []).append((lin, out))
        self.invalidate_array(stmt.array)
        return out

    # -- statements -------------------------------------------------------------

    def lower_stmt(self, stmt: Stmt, weight: float = 1.0) -> None:
        if isinstance(stmt, ArrayStore):
            self.lower_store(stmt, weight)
        elif isinstance(stmt, ScalarAssign):
            rid = self.lower_expr(stmt.value, weight)
            self.scalar_producer[stmt.name] = rid if isinstance(rid, int) and rid >= 0 else None
        elif isinstance(stmt, IfBlock):
            self._guard_seq += 1
            prob = self.guard_probs.get(self._guard_seq - 1, DEFAULT_GUARD_PROB)
            # The comparison feeding the branch executes unconditionally.
            self.lower_expr(stmt.cond, weight)
            snapshot = dict(self.available)
            for s in stmt.then_body:
                self.lower_stmt(s, weight * prob)
            self.available = snapshot
            for s in stmt.else_body:
                self.lower_stmt(s, weight * (1.0 - prob))
            self.available = snapshot
        else:
            raise LowerError(f"unknown statement {type(stmt).__name__}")


def lower_scalar(
    kernel: LoopKernel,
    target: Target,
    guard_probs: Optional[dict[int, float]] = None,
    fuse_fma: bool = True,
) -> MStream:
    """Lower ``kernel`` to its scalar per-iteration instruction stream.

    ``guard_probs`` maps the n-th IfBlock (pre-order) to its measured
    taken probability; unmeasured guards assume 50%.
    """
    builder = StreamBuilder(f"{kernel.name}.scalar")
    low = ScalarLowerer(kernel, target, builder, guard_probs, fuse_fma)
    for stmt in kernel.body:
        low.lower_stmt(stmt)
    low.resolve_carried_scalars()
    low.attach_memory_recurrences()
    stream = builder.stream
    stream.iters = kernel.total_iterations
    stream.elems_per_iter = 1
    stream.working_set_bytes = kernel.working_set_bytes()
    return stream
