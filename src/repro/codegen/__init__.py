"""Code generation: kernels and plans → machine instruction streams."""

from .minstr import MInstr, MStream, StreamBuilder
from .lowering import BINOP_CLASS, UNOP_CLASS, BaseLowerer, LowerError, access_traffic
from .scalar_gen import DEFAULT_GUARD_PROB, ScalarLowerer, lower_scalar
from .vector_gen import VectorLowerer, lower_vector

__all__ = [
    "MInstr",
    "MStream",
    "StreamBuilder",
    "BINOP_CLASS",
    "UNOP_CLASS",
    "BaseLowerer",
    "LowerError",
    "access_traffic",
    "DEFAULT_GUARD_PROB",
    "ScalarLowerer",
    "lower_scalar",
    "VectorLowerer",
    "lower_vector",
]
