"""Simulation: functional execution (correctness) and analytical timing."""

from .executor import (
    ExecResult,
    eval_expr,
    initial_scalars,
    make_buffers,
    run_scalar,
    run_vector,
)
from .timing import (
    CycleBreakdown,
    analyze_stream,
    memory_bound,
    overhead_cycles,
    recurrence_bound,
    resource_bound,
)
from .measure import (
    GUARD_SAMPLE_ITERS,
    MeasuredSample,
    apply_jitter,
    clear_guard_prob_memo,
    estimate_guard_probs,
    measure_kernel,
    measure_plan,
)

__all__ = [
    "ExecResult",
    "eval_expr",
    "initial_scalars",
    "make_buffers",
    "run_scalar",
    "run_vector",
    "CycleBreakdown",
    "analyze_stream",
    "memory_bound",
    "overhead_cycles",
    "recurrence_bound",
    "resource_bound",
    "GUARD_SAMPLE_ITERS",
    "MeasuredSample",
    "apply_jitter",
    "clear_guard_prob_memo",
    "estimate_guard_probs",
    "measure_kernel",
    "measure_plan",
]
