"""Measurement harness: produce "measured" speedups for kernels.

For a kernel and target this module runs the full pipeline —
branch-probability estimation (functional scalar run on a truncated
trip), scalar lowering + timing, vectorization, vector lowering +
timing, remainder accounting — and reports the measured speedup with
optional deterministic measurement jitter.

It stands in for the paper's hardware runs: TSVC compiled twice (with
and without the vectorizer) and timed on the ARMv8 / x86 machines.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..codegen.minstr import MStream
from ..codegen.scalar_gen import lower_scalar
from ..codegen.vector_gen import lower_vector
from ..ir.kernel import LoopKernel
from ..ir.stmt import IfBlock
from ..targets.base import Target
from ..targets.generic_ir import GENERIC_IR
from ..vectorize.llv import vectorize_loop
from ..vectorize.plan import VectorizationFailure, VectorizationPlan
from .executor import make_buffers, run_scalar
from .timing import CycleBreakdown, analyze_stream

#: Inner iterations sampled when estimating branch probabilities.
GUARD_SAMPLE_ITERS = 512


@dataclass(frozen=True)
class MeasuredSample:
    """One kernel's measured scalar/vector timing on one target."""

    kernel: LoopKernel
    target: Target
    plan: VectorizationPlan
    scalar_stream: MStream
    vector_stream: MStream
    #: IR-level (pre-lowering) view of the vector block — what the
    #: cost models featurize, mirroring where LLVM's cost model runs.
    ir_vector_stream: MStream
    scalar_cycles: float
    vector_cycles: float
    scalar_breakdown: CycleBreakdown
    vector_breakdown: CycleBreakdown
    guard_probs: dict[int, float]

    @property
    def speedup(self) -> float:
        return self.scalar_cycles / self.vector_cycles

    @property
    def vf(self) -> int:
        return self.plan.vf

    def __str__(self) -> str:
        return (
            f"{self.kernel.name} on {self.target.name}: "
            f"{self.scalar_cycles:.0f} -> {self.vector_cycles:.0f} cycles "
            f"(speedup {self.speedup:.2f}, VF {self.vf}, "
            f"vector {self.vector_breakdown.bound}-bound)"
        )


#: Memo of guard-probability runs, keyed by (id(kernel), seed).  The
#: run is deterministic given those two, and several measurements of
#: one kernel (scalar vs vector lowering, LLV vs SLP plans, jitter
#: sweeps) would otherwise each repeat the functional run — the most
#: expensive stage of a measurement.  The kernel object is stored in
#: the value to pin its id while the entry is alive.
_GUARD_MEMO: "OrderedDict[tuple[int, int], tuple[LoopKernel, dict[int, float]]]" = (
    OrderedDict()
)
_GUARD_MEMO_MAX = 512


def clear_guard_prob_memo() -> None:
    _GUARD_MEMO.clear()


def estimate_guard_probs(kernel: LoopKernel, seed: int = 0) -> dict[int, float]:
    """Branch-taken probabilities from a truncated functional run.

    Memoized per (kernel object, seed); returns a fresh dict either
    way so callers can never alias each other's copy.
    """
    if not any(isinstance(s, IfBlock) for s in kernel.stmts()):
        return {}
    key = (id(kernel), seed)
    hit = _GUARD_MEMO.get(key)
    if hit is not None and hit[0] is kernel:
        _GUARD_MEMO.move_to_end(key)
        return dict(hit[1])
    bufs = make_buffers(kernel, seed=seed)
    result = run_scalar(kernel, bufs, max_inner_iters=GUARD_SAMPLE_ITERS)
    _GUARD_MEMO[key] = (kernel, result.guard_probs)
    while len(_GUARD_MEMO) > _GUARD_MEMO_MAX:
        _GUARD_MEMO.popitem(last=False)
    return dict(result.guard_probs)


def apply_jitter(value: float, rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative measurement noise, clipped to ±3σ."""
    if sigma <= 0:
        return value
    eps = float(np.clip(rng.normal(0.0, sigma), -3 * sigma, 3 * sigma))
    return value * (1.0 + eps)


def measure_kernel(
    kernel: LoopKernel,
    target: Target,
    vf: Optional[int] = None,
    *,
    vectorizer: str = "llv",
    jitter: float = 0.0,
    seed: int = 0,
    guard_probs: Optional[dict[int, float]] = None,
) -> Union[MeasuredSample, VectorizationFailure]:
    """Measure the vectorization speedup of ``kernel`` on ``target``.

    Returns a :class:`VectorizationFailure` when the kernel cannot be
    vectorized (the paper's study excludes those loops too).
    """
    if vectorizer == "llv":
        result = vectorize_loop(kernel, target, vf)
    elif vectorizer == "slp":
        from ..vectorize.slp import slp_vectorize

        result = slp_vectorize(kernel, target, vf)
    else:
        raise ValueError(f"unknown vectorizer {vectorizer!r}")
    if isinstance(result, VectorizationFailure):
        return result
    return measure_plan(
        result, target, jitter=jitter, seed=seed, guard_probs=guard_probs
    )


def measure_plan(
    plan: VectorizationPlan,
    target: Target,
    *,
    jitter: float = 0.0,
    seed: int = 0,
    guard_probs: Optional[dict[int, float]] = None,
) -> MeasuredSample:
    """Measure an existing plan (scalar baseline vs vector execution)."""
    kernel = plan.kernel
    if guard_probs is None:
        guard_probs = estimate_guard_probs(kernel, seed=seed)

    scalar_stream = lower_scalar(kernel, target, guard_probs=guard_probs)
    if plan.kind == "slp":
        from ..codegen.slp_gen import lower_slp

        vector_stream = lower_slp(plan, target)
        ir_vector_stream = lower_slp(plan, GENERIC_IR)
    else:
        vector_stream = lower_vector(plan, target)
        ir_vector_stream = lower_vector(plan, GENERIC_IR)

    sb = analyze_stream(scalar_stream, target)
    vb = analyze_stream(vector_stream, target)
    scalar_cycles = sb.total
    # The vector loop pays its own cycles plus a scalar tail for the
    # remainder iterations.
    vector_cycles = vb.total + vector_stream.remainder * sb.per_iter

    # zlib.crc32 is stable across processes (unlike hash(), which is
    # salted per interpreter) — measurements must be reproducible.
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, zlib.crc32(kernel.name.encode())])
    )
    scalar_cycles = apply_jitter(scalar_cycles, rng, jitter)
    vector_cycles = apply_jitter(vector_cycles, rng, jitter)

    return MeasuredSample(
        kernel=kernel,
        target=target,
        plan=plan,
        scalar_stream=scalar_stream,
        vector_stream=vector_stream,
        ir_vector_stream=ir_vector_stream,
        scalar_cycles=scalar_cycles,
        vector_cycles=vector_cycles,
        scalar_breakdown=sb,
        vector_breakdown=vb,
        guard_probs=guard_probs,
    )
