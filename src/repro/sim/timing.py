"""Analytical timing model (the "measurement" substrate).

Steady-state cycles-per-iteration of a stream is the max of three
bounds, the same structure LLVM-MCA-style throughput analysis uses:

* **resource bound** — per-port occupancy divided by port count, and
  total instructions over the issue width;
* **recurrence bound** — for every loop-carried dependence cycle, the
  latency of its intra-iteration path divided by its distance (serial
  chains such as scalar reductions and `a[i] = f(a[i-1])` recurrences
  are priced here);
* **memory bound** — bytes moved per iteration over the sustainable
  bandwidth of the cache level the working set lands in (this is what
  caps the vector speedup of low-arithmetic-intensity kernels, the
  effect the paper's *rated* feature set exists to capture).

Prologue and epilogue instructions are charged serially once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.minstr import MInstr, MStream
from ..targets.base import Target


@dataclass(frozen=True)
class CycleBreakdown:
    """Per-iteration cycle estimate and which bound is binding."""

    resource: float
    recurrence: float
    memory: float
    overhead: float  # one-off prologue+epilogue cycles
    iters: int

    @property
    def per_iter(self) -> float:
        return max(self.resource, self.recurrence, self.memory)

    @property
    def bound(self) -> str:
        best = self.per_iter
        if best == self.memory and self.memory >= self.resource:
            return "memory"
        if best == self.recurrence and self.recurrence > self.resource:
            return "recurrence"
        return "compute"

    @property
    def total(self) -> float:
        return self.overhead + self.iters * self.per_iter


def resource_bound(body: list[MInstr], target: Target) -> float:
    """Throughput limit from execution-port and issue-width pressure."""
    port_busy: dict[str, float] = {}
    issue_slots = 0.0
    for ins in body:
        t = target.timing(ins.iclass, ins.dtype, ins.lanes)
        port_busy[t.port] = port_busy.get(t.port, 0.0) + t.occupancy * ins.weight
        issue_slots += ins.weight
    bounds = [issue_slots / target.issue_width]
    bounds.extend(
        busy / target.port_count(port) for port, busy in port_busy.items()
    )
    return max(bounds) if bounds else 0.0


def recurrence_bound(body: list[MInstr], target: Target) -> float:
    """Max over carried-dependence cycles of path latency / distance."""
    lat = {
        ins.id: target.timing(ins.iclass, ins.dtype, ins.lanes).latency
        for ins in body
    }
    ids = {ins.id for ins in body}
    best = 0.0
    for ins in body:
        for producer, distance in ins.carried:
            if producer not in ids or distance <= 0:
                continue
            # The cycle closes when the consumer's value flows back to
            # the producer within an iteration: consumer → … → producer.
            path = _longest_path(body, ins.id, producer, lat)
            if path is not None:
                best = max(best, path / distance)
    return best


def _longest_path(
    body: list[MInstr], src: int, dst: int, lat: dict[int, float]
):
    """Longest latency path src → dst through intra-iteration edges.

    Node latencies count once each, including both endpoints.  Returns
    None when dst is unreachable from src (carried edge with no
    intra-iteration return path — no cycle, no bound).  Instruction ids
    are in topological order by construction.
    """
    dp: dict[int, float] = {src: lat[src]}
    if src == dst:
        return lat[src]
    for ins in body:
        if ins.id <= src:
            continue
        reach = [dp[s] for s in ins.srcs if s in dp]
        if reach:
            dp[ins.id] = max(reach) + lat[ins.id]
        if ins.id == dst:
            return dp.get(dst)
    return dp.get(dst)


def memory_bound(stream: MStream, target: Target) -> float:
    """Bandwidth limit from the cache level the working set lives in."""
    bpc = target.cache.bandwidth_for(stream.working_set_bytes)
    return stream.bytes_per_iter() / bpc


def overhead_cycles(stream: MStream, target: Target) -> float:
    """Serial one-off cost of prologue + epilogue instructions."""
    total = 0.0
    for ins in (*stream.prologue, *stream.epilogue):
        t = target.timing(ins.iclass, ins.dtype, ins.lanes)
        total += t.latency * ins.weight
    return total


def analyze_stream(stream: MStream, target: Target) -> CycleBreakdown:
    """Full cycle breakdown of a lowered stream on ``target``."""
    return CycleBreakdown(
        resource=resource_bound(stream.body, target),
        recurrence=recurrence_bound(stream.body, target),
        memory=memory_bound(stream, target),
        overhead=overhead_cycles(stream, target),
        iters=stream.iters,
    )
