"""The one table of numpy ufuncs behind every IR operator.

Both executors — the tree-walking interpreter in :mod:`.executor` and
the kernel compiler in :mod:`.compile` — evaluate IR operators through
the tables below.  Keeping a single table is what makes the suite-wide
bit-identity property testable at all: there is no second copy of the
operator semantics that could drift.

``SQRT`` deserves its note: C's ``sqrtf`` on a negative input returns
NaN, which would poison every downstream comparison and reduction in a
functional run over random test data.  The IR therefore defines SQRT as
``sqrt(|x|)`` — a *domain guard*, not an approximation of C.  The guard
used to be silent; it now counts how often it actually rewrites negative
inputs (per process, see :func:`sqrt_guard_fires`) so the measurement
layer can emit a diagnostics remark for kernels whose data depends on
the guarded semantics.
"""

from __future__ import annotations

import numpy as np

from ..ir.expr import BinOpKind, CmpKind, UnOpKind
from ..ir.types import DType

NP_DTYPE = {
    DType.F32: np.float32,
    DType.F64: np.float64,
    DType.I32: np.int32,
    DType.I64: np.int64,
    DType.BOOL: np.bool_,
}

#: Process-wide count of sqrt evaluations whose input contained at
#: least one negative element (scalar runs count per evaluation, array
#: runs per whole-array application).
_SQRT_GUARD_FIRES = 0


def guarded_sqrt(x):
    """``sqrt(|x|)`` — the IR's total version of C's partial ``sqrt``.

    Counts applications that actually hit the guard (a negative input)
    so callers can surface the rewrite instead of silently changing the
    kernel's arithmetic.
    """
    global _SQRT_GUARD_FIRES
    if np.any(np.less(x, 0)):
        _SQRT_GUARD_FIRES += 1
    return np.sqrt(np.abs(x))


def sqrt_guard_fires() -> int:
    return _SQRT_GUARD_FIRES


def reset_sqrt_guard_fires() -> None:
    global _SQRT_GUARD_FIRES
    _SQRT_GUARD_FIRES = 0


def add_sqrt_guard_fires(n: int) -> None:
    """Fold fires counted outside this table into the process counter.

    The native tier (:mod:`.native`) counts guard hits inside compiled
    C code and reports them back here, so the executor's remark logic
    stays tier-independent.
    """
    global _SQRT_GUARD_FIRES
    _SQRT_GUARD_FIRES += int(n)


def cast_value(x, target):
    """Cast ``x`` to the numpy ``target`` type with C conversion rules.

    The single cast primitive both executors share: scalars stay
    scalars, arrays stay arrays, and a value already of ``target`` type
    passes through untouched (bit-identical).
    """
    arr = np.asarray(x)
    if arr.dtype == target:
        return x
    out = arr.astype(target)
    return out if out.shape else out[()]


BINOPS = {
    BinOpKind.ADD: np.add,
    BinOpKind.SUB: np.subtract,
    BinOpKind.MUL: np.multiply,
    BinOpKind.DIV: np.divide,
    BinOpKind.MIN: np.minimum,
    BinOpKind.MAX: np.maximum,
    BinOpKind.AND: np.bitwise_and,
    BinOpKind.OR: np.bitwise_or,
    BinOpKind.XOR: np.bitwise_xor,
    BinOpKind.SHL: np.left_shift,
    BinOpKind.SHR: np.right_shift,
}

UNOPS = {
    UnOpKind.NEG: np.negative,
    UnOpKind.ABS: np.abs,
    UnOpKind.SQRT: guarded_sqrt,
    UnOpKind.EXP: np.exp,
    UnOpKind.NOT: np.logical_not,
}

CMPS = {
    CmpKind.LT: np.less,
    CmpKind.LE: np.less_equal,
    CmpKind.GT: np.greater,
    CmpKind.GE: np.greater_equal,
    CmpKind.EQ: np.equal,
    CmpKind.NE: np.not_equal,
}

#: Sequential in-dtype accumulators for the reduction fold.  The
#: ``accumulate`` form is defined element-by-element (r[k] = r[k-1] ⊕
#: x[k]) — unlike ``reduce``, which numpy may evaluate pairwise — so a
#: fold through it reproduces the scalar loop's rounding exactly.
ACCUMULATORS = {
    BinOpKind.ADD: np.add.accumulate,
    BinOpKind.MUL: np.multiply.accumulate,
    BinOpKind.MIN: np.minimum.accumulate,
    BinOpKind.MAX: np.maximum.accumulate,
}
