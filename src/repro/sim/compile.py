"""Kernel compilation: ``LoopKernel`` IR → specialized Python functions.

The tree-walking interpreter in :mod:`.executor` is the semantic ground
truth, but it pays a full tree walk per statement per iteration — the
single most expensive stage of every measurement.  This module builds,
once per (kernel fingerprint, mode) and caches, a specialized function
with no per-node ``isinstance`` dispatch at all:

* **vector mode** — a whole-loop NumPy closure for kernels the analysis
  framework proves free of unsafe loop-carried dependences: every
  statement evaluates all inner iterations as one array expression,
  guards become ``np.where``/mask if-conversion (with vectorized
  guard-probability counting), and recognized reductions fold through
  the sequential ``ufunc.accumulate`` tables so the scalar loop's
  rounding is reproduced exactly;
* **scalar mode** — codegen'd straight-line Python source (via
  ``compile()``/``exec``) that preserves statement order and C scalar
  semantics for loop-carried / indirect kernels.

Eligibility for vector mode is decided from the cached analysis passes
(``deps``, ``scalars``) plus a static bounds check, and every compiled
function is *self-checked* against the interpreter on a short run at
build time — a mismatch demotes vector → scalar → interpreter rather
than ever returning unverified results.  Both generated paths evaluate
operators through the shared tables in :mod:`.ufuncs`, so they cannot
drift from the interpreter's arithmetic.

``run_scalar`` routes here by default; ``REPRO_COMPILE=0`` opts out.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..analysis.dependence import DepStatus
from ..analysis.reduction import (
    REDUCTION_IDENTITY,
    ScalarClass,
    ScalarInfo,
    _match_select_minmax,
)
from ..ir.expr import (
    Affine,
    BinOp,
    BinOpKind,
    Compare,
    Const,
    Convert,
    Expr,
    Indirect,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
)
from ..ir.kernel import LoopKernel
from ..ir.printer import kernel_to_source
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign
from ..ir.types import DType
from .executor import (
    ExecResult,
    initial_scalars,
    make_buffers,
    run_scalar_interpreted,
)
from .ufuncs import ACCUMULATORS, BINOPS, CMPS, NP_DTYPE, UNOPS, cast_value

__all__ = [
    "CompileError",
    "CompiledKernel",
    "bit_identical",
    "clear_compile_cache",
    "compile_enabled",
    "compile_stats",
    "compile_summary",
    "get_compiled",
    "kernel_fingerprint",
    "reset_compile_stats",
    "run_scalar_compiled",
]


class CompileError(Exception):
    """The kernel cannot (or must not) be compiled; interpret instead."""


@dataclass
class CompiledKernel:
    """A built kernel function plus the metadata that justified it.

    ``fn(bufs, env, inner_trip, outer_trip)`` returns
    ``(scalars_out, guard_payload, iterations)``.  ``mode`` is
    ``"vector"``, ``"scalar"``, or ``"interpret"`` (a cached negative
    result whose ``fn`` is None).
    """

    fingerprint: str
    mode: str
    fn: Optional[Callable]
    source: str = ""
    reason: str = ""


@dataclass
class CompileStats:
    native: int = 0          # kernels resolved to the native (.so) tier
    vector: int = 0          # kernels resolved to the whole-loop closure
    scalar: int = 0          # kernels resolved to straight-line codegen
    demoted: int = 0         # vector builds rejected by the self-check
    native_demoted: int = 0  # native builds rejected by the self-check
    refused: int = 0         # kernels pinned to the interpreter
    cache_hits: int = 0
    cache_misses: int = 0
    runs_compiled: int = 0   # executions served by a compiled fn
    runs_vector: int = 0     # ... of which used the vector closure
    runs_native: int = 0     # ... of which used the native entry point
    runs_native_vector: int = 0  # run_vector block loops served natively
    native_build_s: float = 0.0  # cumulative wall time compiling C


_STATS = CompileStats()

#: (fingerprint, mode) -> CompiledKernel.  Keyed by content fingerprint,
#: not object identity: mutating (rebuilding) a kernel invalidates its
#: compiled function automatically.
_CACHE: dict[tuple[str, str], CompiledKernel] = {}
#: fingerprint -> mode chosen by auto-resolution.
_AUTO: dict[str, str] = {}
#: id(kernel) -> (kernel, fingerprint) — pins the kernel object so a
#: recycled id can never alias a stale digest.
_FP_MEMO: "OrderedDict[int, tuple[LoopKernel, str]]" = OrderedDict()
_FP_MEMO_MAX = 1024

#: Inner iterations of the build-time interpreter-vs-compiled check.
_SELF_CHECK_ITERS = 16


def compile_enabled() -> bool:
    return os.environ.get("REPRO_COMPILE", "1") != "0"


def kernel_fingerprint(kernel: LoopKernel) -> str:
    """Content digest of a kernel (name + printed source), memoized."""
    key = id(kernel)
    hit = _FP_MEMO.get(key)
    if hit is not None and hit[0] is kernel:
        _FP_MEMO.move_to_end(key)
        return hit[1]
    digest = hashlib.sha256(
        (kernel.name + "\n" + kernel_to_source(kernel)).encode()
    ).hexdigest()
    _FP_MEMO[key] = (kernel, digest)
    while len(_FP_MEMO) > _FP_MEMO_MAX:
        _FP_MEMO.popitem(last=False)
    return digest


def _cache_fp(kernel: LoopKernel) -> str:
    """Cache key for compiled artifacts: content digest plus the
    range-analysis consumer switch.

    Generated code differs when ``REPRO_RANGES=0`` (no guard folding,
    no check elision), and parity tests flip the switch in-process —
    so the switch state must be part of the key, or a toggle would be
    served a stale function.  The native tier builds its artifact
    fingerprints from this string, so on-disk ``.so`` caching keys
    correctly too.
    """
    fp = kernel_fingerprint(kernel)
    from ..analysis.framework.ranges import ranges_enabled

    return fp if ranges_enabled() else fp + ":ranges-off"


def compile_stats() -> CompileStats:
    return _STATS


def reset_compile_stats() -> None:
    global _STATS
    _STATS = CompileStats()


def clear_compile_cache() -> None:
    _CACHE.clear()
    _AUTO.clear()
    _FP_MEMO.clear()
    from . import native

    native.clear_attached()


def compile_summary() -> dict:
    """Counters for experiment reports and the perf smoke."""
    from . import native
    from .toolchain import resolved_toolchain

    s = _STATS
    tc = resolved_toolchain()
    return {
        "enabled": compile_enabled(),
        "kernels_native": s.native,
        "kernels_vector": s.vector,
        "kernels_scalar": s.scalar,
        "kernels_demoted": s.demoted,
        "kernels_native_demoted": s.native_demoted,
        "kernels_refused": s.refused,
        "cache_hits": s.cache_hits,
        "cache_misses": s.cache_misses,
        "runs_compiled": s.runs_compiled,
        "runs_vector": s.runs_vector,
        "runs_native": s.runs_native,
        "runs_native_vector": s.runs_native_vector,
        "native_build_s": round(s.native_build_s, 4),
        "native_enabled": native.native_enabled(),
        "toolchain": tc.version if tc is not None else None,
        "cached_fns": len(_CACHE),
    }


# ---------------------------------------------------------------------------
# Vector-mode eligibility
# ---------------------------------------------------------------------------


@dataclass
class _VectorPlan:
    scalar_info: dict[str, ScalarInfo]
    #: id(update stmt) -> contribution exprs, innermost-spine-first.
    contribs: dict[int, list[Expr]]
    #: reduction scalar names; list index = fold slot.
    red_order: list[str]


def _reads_scalar(expr: Expr, name: str) -> bool:
    return any(
        isinstance(n, ScalarRef) and n.name == name for n in expr.walk()
    )


def _update_contribs(
    stmt: ScalarAssign, info: ScalarInfo, decl
) -> Optional[list[Expr]]:
    """Contribution exprs of a reduction update, in evaluation order.

    Walks the operator *spine* (``s = (...((s ⊕ c₁) ⊕ c₂) ...)`` in any
    association) collecting the non-``s`` side at each node.  The fold
    then applies contributions innermost-first, which only commutes
    operands per node — bitwise-safe for IEEE add/mul/min/max — and
    never reassociates.  Every spine node must already be in the
    accumulator dtype, or per-iteration rounding would differ.
    """
    op = info.op
    v = stmt.value
    if isinstance(v, BinOp) and v.op is op:
        node: Expr = v
        contribs: list[Expr] = []
        while isinstance(node, BinOp) and node.op is op:
            if node.dtype is not decl.dtype:
                return None
            on_l = _reads_scalar(node.lhs, stmt.name)
            on_r = _reads_scalar(node.rhs, stmt.name)
            if on_l == on_r:
                return None
            if on_l:
                contribs.append(node.rhs)
                node = node.lhs
            else:
                contribs.append(node.lhs)
                node = node.rhs
        if not (isinstance(node, ScalarRef) and node.name == stmt.name):
            return None
        contribs.reverse()
        return contribs
    if isinstance(v, Select):
        if _match_select_minmax(stmt) is not op or v.dtype is not decl.dtype:
            return None
        keeps_s = isinstance(v.if_false, ScalarRef) and v.if_false.name == stmt.name
        return [v.if_true if keeps_s else v.if_false]
    return None


def _affine_bounds_violation(kernel: LoopKernel) -> Optional[str]:
    """Static check that no affine subscript ever leaves ``[0, extent)``.

    Two reasons vector mode needs this.  Whole-array evaluation runs
    guarded accesses on *all* lanes, so an index past the extent would
    raise where the scalar loop never executes it.  And a *negative*
    index, though it wraps identically in both paths, aliases the top
    of the array — which the affine dependence analysis (no-wrap
    arithmetic) cannot see, so its distances are only trustworthy when
    nothing wraps.

    The range facts come from :class:`BoundsCheckPass` (one source of
    truth with lint, ``analyze --ranges``, and the native tier); every
    affine verdict — including the index-array read feeding each
    gather/scatter — must be proven inside ``[0, extent)``.  Gather
    *contents* are runtime data and stay unchecked here: a bad index
    faults identically in scalar and vector mode.  This is tier
    *eligibility*, not elision, so it is never gated on REPRO_RANGES.
    """
    from ..analysis.framework.passmanager import default_manager
    from ..analysis.framework.ranges import BoundsCheckPass

    for stmt in kernel.stmts():
        subs = [(load.array, load.subscript) for root in stmt.exprs()
                for load in root.loads()]
        if isinstance(stmt, ArrayStore):
            subs.append((stmt.array, stmt.subscript))
        for array, sub in subs:
            if len(sub) != len(kernel.arrays[array].extents):
                return f"partial subscript on {array!r}"
            for ix in sub:
                if isinstance(ix, Indirect):
                    if len(kernel.arrays[ix.array].extents) != 1:
                        return f"indirect through multi-dim array {ix.array!r}"

    bounds = default_manager().get(BoundsCheckPass, kernel)
    for acc in bounds.accesses:
        if acc.kind != "affine":
            continue
        if not acc.proven:
            return (
                f"subscript {acc.dim} of {acc.array!r} spans "
                f"[{int(acc.lo)}, {int(acc.hi)}] vs extent {acc.extent}"
            )
    return None


def _vector_plan(kernel: LoopKernel) -> tuple[Optional[_VectorPlan], str]:
    """Prove the kernel safe for statement-at-a-time whole-array execution.

    Safe dependences are exactly the ones in-order whole-array execution
    honors: none, intra-iteration (distance 0, statement order is kept),
    or forward-carried (all source lanes complete before the sink
    statement runs).  Backward or unknown-distance dependences — and any
    scalar recurrence — force scalar mode.
    """
    from ..analysis.framework.passmanager import default_manager

    am = default_manager()
    deps = am.get("deps", kernel)
    for dep in deps.dependences:
        if dep.status is DepStatus.NONE:
            continue
        if dep.status is DepStatus.CARRIED and (
            dep.distance == 0 or dep.forward
        ):
            continue
        return None, str(dep)
    why = _affine_bounds_violation(kernel)
    if why:
        return None, why
    infos = am.get("scalars", kernel)
    for name, info in infos.items():
        if info.klass is ScalarClass.RECURRENCE:
            return None, f"scalar recurrence on {name!r}"
    red = [n for n, i in infos.items() if i.klass is ScalarClass.REDUCTION]
    for stmt in kernel.stmts():
        if isinstance(stmt, IfBlock):
            for n in red:
                if _reads_scalar(stmt.cond, n):
                    # Whole-array guard evaluation would see the final
                    # accumulator value, not the running one.
                    return None, f"guard condition reads reduction {n!r}"
    contribs: dict[int, list[Expr]] = {}
    for stmt in kernel.stmts():
        if isinstance(stmt, ScalarAssign) and stmt.name in red:
            cs = _update_contribs(
                stmt, infos[stmt.name], kernel.scalars[stmt.name]
            )
            if cs is None:
                return None, f"unsupported reduction update of {stmt.name!r}"
            contribs[id(stmt)] = cs
    return _VectorPlan(infos, contribs, red), ""


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _lane_last(v):
    """Live-out value of a lane-expanded private scalar (last iteration)."""
    return v[-1] if isinstance(v, np.ndarray) and v.ndim else v


class _Emitter:
    """Emits Python source for one kernel, pooling constants and ufuncs.

    Everything the generated code calls lives in its exec namespace as a
    pre-bound object (the shared :mod:`.ufuncs` tables, numpy dtypes,
    typed constants) — the generated source contains no attribute
    lookups and no interpreter dispatch.
    """

    def __init__(self, kernel: LoopKernel, vector: bool, plan=None, folds=None):
        self.kernel = kernel
        self.vector = vector
        self.plan = plan
        #: GuardRangeInfo with the fold-safe constant guards, or None
        #: when range-driven folding is disabled (REPRO_RANGES=0).
        self.folds = folds
        self.lines: list[str] = []
        self.indent = 1
        self.pool: dict[str, object] = {"np": np}
        self._consts: dict = {}
        self._ntmp = 0
        self._nguard = 0
        self.inner = kernel.inner_level
        self.depth = kernel.depth

    # -- namespace helpers -------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def tmp(self) -> str:
        self._ntmp += 1
        return f"_t{self._ntmp}"

    def use(self, name: str, obj) -> str:
        self.pool[name] = obj
        return name

    def dt(self, dtype: DType) -> str:
        return self.use("_" + dtype.name.lower(), NP_DTYPE[dtype])

    def const(self, value, dtype: DType) -> str:
        key = (dtype, repr(value))
        name = self._consts.get(key)
        if name is None:
            name = f"_k{len(self._consts)}"
            self._consts[key] = name
            self.pool[name] = NP_DTYPE[dtype](value)
        return name

    def cast(self, code: str, src: DType, dst: DType) -> str:
        if src is dst:
            return code
        return f"{self.use('_ct', cast_value)}({code}, {self.dt(dst)})"

    # -- expressions -------------------------------------------------------

    def loopvar(self, level: int) -> str:
        if self.depth == 1:
            return "_i"
        return "_o" if level == 0 else "_i"

    def affine(self, ix: Affine) -> str:
        parts = []
        for lvl, c in enumerate(ix.coeffs):
            if lvl >= self.depth or c == 0:
                continue
            if self.vector and lvl == self.inner:
                parts.append("_lanes" if c == 1 else f"{c} * _lanes")
            else:
                v = self.loopvar(lvl)
                parts.append(v if c == 1 else f"{c} * {v}")
        if ix.offset or not parts:
            parts.append(repr(ix.offset))
        return "(" + " + ".join(parts) + ")"

    def index(self, ix) -> str:
        if isinstance(ix, Affine):
            return self.affine(ix)
        assert isinstance(ix, Indirect)
        inner = self.affine(ix.index)
        return (
            f"_b_{ix.array}[{inner}].astype({self.dt(DType.I64)}, copy=False)"
        )

    def store_index(self, ix) -> str:
        code = self.index(ix)
        if not self.vector and isinstance(ix, Indirect):
            code = f"int({code})"
        return code

    def expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            return self.const(e.value, e.dtype)
        if isinstance(e, ScalarRef):
            return f"_s_{e.name}"
        if isinstance(e, IterValue):
            if self.vector and e.level == self.inner:
                return "_lanes32"
            return f"{self.dt(DType.I32)}({self.loopvar(e.level)})"
        if isinstance(e, Load):
            sub = ", ".join(self.index(ix) for ix in e.subscript)
            return f"_b_{e.array}[{sub}]"
        if isinstance(e, Convert):
            return self.cast(self.expr(e.operand), e.operand.dtype, e.dtype)
        if isinstance(e, UnOp):
            fn = self.use("_u" + e.op.name.lower(), UNOPS[e.op])
            return f"{fn}({self.expr(e.operand)})"
        if isinstance(e, BinOp):
            a, b = self.expr(e.lhs), self.expr(e.rhs)
            if e.op not in (BinOpKind.SHL, BinOpKind.SHR):
                a = self.cast(a, e.lhs.dtype, e.dtype)
                b = self.cast(b, e.rhs.dtype, e.dtype)
            fn = self.use("_" + e.op.name.lower(), BINOPS[e.op])
            code = f"{fn}({a}, {b})"
            # The only ufuncs whose result dtype can differ from the IR
            # dtype: int division (→ f64) and shifts (uncast operands).
            if e.op in (BinOpKind.SHL, BinOpKind.SHR) or (
                e.op is BinOpKind.DIV and e.dtype.is_int
            ):
                code = f"{self.use('_ct', cast_value)}({code}, {self.dt(e.dtype)})"
            return code
        if isinstance(e, Compare):
            fn = self.use("_c" + e.op.name.lower(), CMPS[e.op])
            return f"{fn}({self.expr(e.lhs)}, {self.expr(e.rhs)})"
        if isinstance(e, Select):
            c = self.expr(e.cond)
            t = self.cast(self.expr(e.if_true), e.if_true.dtype, e.dtype)
            f = self.cast(self.expr(e.if_false), e.if_false.dtype, e.dtype)
            code = f"{self.use('_where', np.where)}({c}, {t}, {f})"
            return code if self.vector else f"{code}[()]"
        raise CompileError(f"cannot compile {type(e).__name__}")

    # -- statements: scalar mode -------------------------------------------

    def stmt_scalar(self, stmt) -> None:
        if isinstance(stmt, ArrayStore):
            decl = self.kernel.arrays[stmt.array]
            val = self.cast(self.expr(stmt.value), stmt.value.dtype, decl.dtype)
            sub = ", ".join(self.store_index(ix) for ix in stmt.subscript)
            self.emit(f"_b_{stmt.array}[{sub}] = {val}")
        elif isinstance(stmt, ScalarAssign):
            decl = self.kernel.scalars[stmt.name]
            val = self.cast(self.expr(stmt.value), stmt.value.dtype, decl.dtype)
            self.emit(f"_s_{stmt.name} = {val}")
        elif isinstance(stmt, IfBlock):
            k = self._nguard
            self._nguard += 1
            fold = self.folds.fold_of(stmt) if self.folds is not None else None
            self.emit(f"if not _gseen[{k}]:")
            self.emit(f"    _gorder.append({k})")
            self.emit(f"_gseen[{k}] += 1")
            # A proven-constant, side-effect-free condition folds to a
            # literal; all guard bookkeeping stays (parity with the
            # interpreter's counters), only the evaluation is dropped.
            cond = repr(fold) if fold is not None else self.expr(stmt.cond)
            self.emit(f"if {cond}:")
            self.indent += 1
            self.emit(f"_gtaken[{k}] += 1")
            for s in stmt.then_body:
                self.stmt_scalar(s)
            self.indent -= 1
            if stmt.else_body:
                self.emit("else:")
                self.indent += 1
                for s in stmt.else_body:
                    self.stmt_scalar(s)
                self.indent -= 1
        else:
            raise CompileError(f"cannot compile {type(stmt).__name__}")

    # -- statements: vector mode -------------------------------------------

    def stmt_vector(self, stmt, mask: Optional[str]) -> None:
        if isinstance(stmt, ArrayStore):
            decl = self.kernel.arrays[stmt.array]
            val = self.cast(self.expr(stmt.value), stmt.value.dtype, decl.dtype)
            v = self.tmp()
            # RHS lands in a temp before the store so same-statement
            # anti-dependences read pre-store values, like the scalar loop.
            self.emit(f"{v} = _bc({val})")
            idxs = [f"_bc({self.index(ix)})" for ix in stmt.subscript]
            if mask is None:
                self.emit(f"_b_{stmt.array}[{', '.join(idxs)}] = {v}")
            else:
                sel = ", ".join(f"{ix}[{mask}]" for ix in idxs)
                self.emit(f"_b_{stmt.array}[{sel}] = {v}[{mask}]")
        elif isinstance(stmt, ScalarAssign):
            decl = self.kernel.scalars[stmt.name]
            info = self.plan.scalar_info.get(stmt.name)
            if info is not None and info.klass is ScalarClass.REDUCTION:
                ri = self.plan.red_order.index(stmt.name)
                for contrib in self.plan.contribs[id(stmt)]:
                    code = self.cast(
                        self.expr(contrib), contrib.dtype, decl.dtype
                    )
                    c = self.tmp()
                    self.emit(f"{c} = _bc({code})")
                    if mask is not None:
                        ident = self.const(
                            REDUCTION_IDENTITY[info.op], decl.dtype
                        )
                        w = self.use("_where", np.where)
                        self.emit(f"{c} = {w}({mask}, {c}, {ident})")
                    self.emit(f"_rc_{ri}.append({c})")
            else:
                code = self.cast(
                    self.expr(stmt.value), stmt.value.dtype, decl.dtype
                )
                if mask is None:
                    self.emit(f"_s_{stmt.name} = {code}")
                else:
                    w = self.use("_where", np.where)
                    self.emit(
                        f"_s_{stmt.name} = {w}({mask}, {code}, _s_{stmt.name})"
                    )
        elif isinstance(stmt, IfBlock):
            k = self._nguard
            self._nguard += 1
            c = f"_gc{k}"
            m = f"_gm{k}"
            fold = self.folds.fold_of(stmt) if self.folds is not None else None
            cond = (
                self.const(fold, DType.BOOL)
                if fold is not None
                else self.expr(stmt.cond)
            )
            self.emit(f"{c} = _bc({cond})")
            if mask is None:
                self.emit(f"_gseen[{k}] += _n")
                self.emit(f"if _gfirst[{k}] is None:")
                self.emit(f"    _gfirst[{k}] = (_o, 0)")
                self.emit(f"{m} = {c}")
            else:
                pc = f"_gpc{k}"
                am = self.use("_argmax", np.argmax)
                self.emit(f"{pc} = int({mask}.sum())")
                self.emit(f"_gseen[{k}] += {pc}")
                self.emit(f"if _gfirst[{k}] is None and {pc}:")
                self.emit(f"    _gfirst[{k}] = (_o, int({am}({mask})))")
                self.emit(f"{m} = {c} & {mask}")
            self.emit(f"_gtaken[{k}] += int({m}.sum())")
            for s in stmt.then_body:
                self.stmt_vector(s, m)
            if stmt.else_body:
                me = f"_gme{k}"
                inv = f"~{c}" if mask is None else f"~{c} & {mask}"
                self.emit(f"{me} = {inv}")
                for s in stmt.else_body:
                    self.stmt_vector(s, me)
        else:
            raise CompileError(f"cannot compile {type(stmt).__name__}")


def _guard_count(kernel: LoopKernel) -> int:
    return sum(1 for s in kernel.stmts() if isinstance(s, IfBlock))


def _guard_folds(kernel: LoopKernel):
    """Fold-safe constant-guard info, or None when ``REPRO_RANGES=0``.

    Only the *pure* verdicts of :class:`GuardRangePass` land here —
    true for any caller-supplied scalars, with side-effect-free
    conditions — so folding can never change an observable result.
    """
    from ..analysis.framework.passmanager import default_manager
    from ..analysis.framework.ranges import GuardRangePass, ranges_enabled

    if not ranges_enabled():
        return None
    return default_manager().get(GuardRangePass, kernel)


def _gen_scalar(kernel: LoopKernel) -> tuple[str, dict]:
    em = _Emitter(kernel, vector=False, folds=_guard_folds(kernel))
    em.lines.append("def __kernel(_bufs, _env, _inner_trip, _outer_trip):")
    for name in kernel.arrays:
        em.emit(f"_b_{name} = _bufs[{name!r}]")
    for name in kernel.scalars:
        em.emit(f"_s_{name} = _env[{name!r}]")
    ng = _guard_count(kernel)
    em.emit(f"_gseen = [0] * {ng}")
    em.emit(f"_gtaken = [0] * {ng}")
    em.emit("_gorder = []")
    em.emit("for _o in range(_outer_trip):")
    em.indent += 1
    em.emit("for _i in range(_inner_trip):")
    em.indent += 1
    if kernel.body:
        for s in kernel.body:
            em.stmt_scalar(s)
    else:
        em.emit("pass")
    em.indent -= 2
    env_items = ", ".join(f"{n!r}: _s_{n}" for n in kernel.scalars)
    em.emit(
        f"return {{{env_items}}}, (_gorder, _gseen, _gtaken), "
        "_outer_trip * _inner_trip"
    )
    return "\n".join(em.lines), em.pool


def _gen_vector(kernel: LoopKernel, plan: _VectorPlan) -> tuple[str, dict]:
    em = _Emitter(kernel, vector=True, plan=plan, folds=_guard_folds(kernel))
    em.dt(DType.I32)  # _lanes32 below
    em.lines.append("def __kernel(_bufs, _env, _inner_trip, _outer_trip):")
    em.emit("_n = _inner_trip")
    em.emit("_lanes = np.arange(_n)")
    em.emit("_lanes32 = _lanes.astype(_i32)")
    em.emit("_bc = lambda _v: np.broadcast_to(np.asarray(_v), (_n,))")
    for name in kernel.arrays:
        em.emit(f"_b_{name} = _bufs[{name!r}]")
    for name in kernel.scalars:
        em.emit(f"_s_{name} = _env[{name!r}]")
    ng = _guard_count(kernel)
    em.emit(f"_gseen = [0] * {ng}")
    em.emit(f"_gtaken = [0] * {ng}")
    em.emit(f"_gfirst = [None] * {ng}")
    em.emit("for _o in range(_outer_trip):")
    em.indent += 1
    for ri in range(len(plan.red_order)):
        em.emit(f"_rc_{ri} = []")
    if kernel.body:
        for s in kernel.body:
            em.stmt_vector(s, None)
    else:
        em.emit("pass")
    # Reduction folds: accumulator-seeded sequential accumulate, columns
    # interleaved iteration-major so the fold order equals the scalar
    # loop's contribution order.
    for ri, name in enumerate(plan.red_order):
        decl = kernel.scalars[name]
        info = plan.scalar_info[name]
        acc = em.use("_acc_" + info.op.name.lower(), ACCUMULATORS[info.op])
        dt = em.dt(decl.dtype)
        em.emit(
            f"_fi = _rc_{ri}[0] if len(_rc_{ri}) == 1 "
            f"else np.stack(_rc_{ri}, axis=1).ravel()"
        )
        em.emit(f"_fb = np.empty(_fi.size + 1, dtype={dt})")
        em.emit(f"_fb[0] = _s_{name}")
        em.emit("_fb[1:] = _fi")
        em.emit(f"_s_{name} = {acc}(_fb)[-1]")
    em.indent -= 1
    env_items = []
    for name in kernel.scalars:
        info = plan.scalar_info.get(name)
        if info is not None and info.klass is ScalarClass.PRIVATE:
            ll = em.use("_lane_last", _lane_last)
            env_items.append(f"{name!r}: {ll}(_s_{name})")
        else:
            env_items.append(f"{name!r}: _s_{name}")
    em.emit(
        f"return {{{', '.join(env_items)}}}, (_gseen, _gtaken, _gfirst), "
        "_outer_trip * _n"
    )
    return "\n".join(em.lines), em.pool


# ---------------------------------------------------------------------------
# Build, cache, self-check
# ---------------------------------------------------------------------------


def _build(
    kernel: LoopKernel,
    fp: str,
    mode: str,
    plan: Optional[_VectorPlan] = None,
    reason: str = "",
) -> CompiledKernel:
    if mode == "native":
        from . import native as native_mod

        ck = native_mod.native_compiled(kernel, fp, forced=True)
        assert ck is not None  # forced mode raises instead
        return ck
    try:
        if mode == "vector":
            if plan is None:
                plan, why = _vector_plan(kernel)
                if plan is None:
                    raise CompileError(f"vector-ineligible: {why}")
            src, pool = _gen_vector(kernel, plan)
        elif mode == "scalar":
            src, pool = _gen_scalar(kernel)
        else:
            raise CompileError(f"unknown mode {mode!r}")
        code = compile(src, f"<repro.sim.compile:{kernel.name}:{mode}>", "exec")
        exec(code, pool)
        fn = pool["__kernel"]
    except CompileError:
        raise
    except Exception as exc:
        raise CompileError(f"{mode} codegen failed: {exc!r}") from exc
    return CompiledKernel(fp, mode, fn, source=src, reason=reason)


def _trips(kernel: LoopKernel, max_inner_iters: Optional[int]) -> tuple[int, int]:
    # Mirrors run_scalar_interpreted's truncation exactly.
    inner_trip = kernel.inner.trip
    if max_inner_iters is not None:
        inner_trip = min(inner_trip, max_inner_iters)
    outer_trip = 1 if kernel.depth == 1 else kernel.loops[0].trip
    if kernel.depth > 1 and max_inner_iters is not None:
        outer_trip = min(outer_trip, max(1, max_inner_iters // 4))
    return inner_trip, outer_trip


def _order_probs(order, seen, taken) -> dict[int, float]:
    return {dyn: taken[k] / seen[k] for dyn, k in enumerate(order)}


def _vector_probs(seen, taken, first) -> dict[int, float]:
    # Replicate the interpreter's dynamic first-encounter numbering:
    # guards sorted by (outer iteration, first-true lane, program order).
    ks = sorted(
        (k for k in range(len(first)) if first[k] is not None),
        key=lambda k: (first[k][0], first[k][1], k),
    )
    return {dyn: taken[k] / seen[k] for dyn, k in enumerate(ks)}


def _execute(
    ck: CompiledKernel,
    kernel: LoopKernel,
    bufs: dict[str, np.ndarray],
    scalars: Optional[dict],
    max_inner_iters: Optional[int],
) -> ExecResult:
    env = dict(scalars) if scalars is not None else initial_scalars(kernel)
    inner_trip, outer_trip = _trips(kernel, max_inner_iters)
    with np.errstate(all="ignore"):
        env_out, guards, iterations = ck.fn(bufs, env, inner_trip, outer_trip)
    env.update(env_out)
    if ck.mode == "vector":
        probs = _vector_probs(*guards)
    else:
        probs = _order_probs(*guards)
    return ExecResult(scalars=env, guard_probs=probs, iterations=iterations)


def bit_identical(
    a: ExecResult,
    a_bufs: dict[str, np.ndarray],
    b: ExecResult,
    b_bufs: dict[str, np.ndarray],
) -> bool:
    """Bitwise equality of two executions: buffers, scalars, guards."""
    if set(a_bufs) != set(b_bufs) or set(a.scalars) != set(b.scalars):
        return False
    for k in a_bufs:
        x, y = a_bufs[k], b_bufs[k]
        if x.dtype != y.dtype or x.shape != y.shape or x.tobytes() != y.tobytes():
            return False
    for n in a.scalars:
        x, y = np.asarray(a.scalars[n]), np.asarray(b.scalars[n])
        if x.dtype != y.dtype or x.tobytes() != y.tobytes():
            return False
    return a.guard_probs == b.guard_probs and a.iterations == b.iterations


def _self_check(kernel: LoopKernel, ck: CompiledKernel) -> bool:
    """Run interpreter vs compiled fn on short deterministic data."""
    try:
        ref_bufs = make_buffers(kernel, seed=0)
        got_bufs = {k: v.copy() for k, v in ref_bufs.items()}
        ref = run_scalar_interpreted(kernel, ref_bufs, None, _SELF_CHECK_ITERS)
        got = _execute(ck, kernel, got_bufs, None, _SELF_CHECK_ITERS)
    except Exception:
        return False
    return bit_identical(ref, ref_bufs, got, got_bufs)


def _diag(kernel: LoopKernel, message: str, warning: bool = False) -> None:
    from ..analysis.framework.passmanager import default_manager

    diags = default_manager().diagnostics
    (diags.warning if warning else diags.remark)(
        "compile", kernel.name, message
    )


def _compile_auto(kernel: LoopKernel, fp: str) -> CompiledKernel:
    _STATS.cache_misses += 1
    from . import native as native_mod

    ck = native_mod.native_compiled(kernel, fp)
    if ck is not None:
        _CACHE[(fp, "native")] = ck
        _AUTO[fp] = "native"
        _STATS.native += 1
        return ck
    plan, reason = _vector_plan(kernel)
    if plan is not None:
        try:
            ck = _build(kernel, fp, "vector", plan=plan, reason="vector-eligible")
        except CompileError as exc:
            ck, reason = None, f"vector codegen failed: {exc}"
        if ck is not None:
            if _self_check(kernel, ck):
                _CACHE[(fp, "vector")] = ck
                _AUTO[fp] = "vector"
                _STATS.vector += 1
                return ck
            reason = "vector self-check mismatch vs interpreter"
            _STATS.demoted += 1
            _diag(
                kernel,
                "whole-loop closure demoted to scalar codegen "
                "(self-check mismatch vs interpreter)",
                warning=True,
            )
    try:
        ck = _build(kernel, fp, "scalar", reason=reason)
        if not _self_check(kernel, ck):
            raise CompileError("scalar self-check mismatch vs interpreter")
    except CompileError as exc:
        sentinel = CompiledKernel(fp, "interpret", None, reason=str(exc))
        _CACHE[(fp, "interpret")] = sentinel
        _AUTO[fp] = "interpret"
        _STATS.refused += 1
        raise
    _CACHE[(fp, "scalar")] = ck
    _AUTO[fp] = "scalar"
    _STATS.scalar += 1
    if plan is None and reason:
        _diag(kernel, f"whole-loop closure ineligible: {reason}")
    return ck


def get_compiled(kernel: LoopKernel, mode: str = "auto") -> CompiledKernel:
    """Fetch (building on first use) the compiled form of ``kernel``.

    ``mode="auto"`` picks the vector closure when the kernel is proven
    eligible *and* passes the build-time self-check, else straight-line
    scalar codegen, else raises :class:`CompileError` (interpreter
    fallback).  Forcing ``"vector"``/``"scalar"`` skips auto-resolution
    (used by tests); forcing an ineligible vector build raises.
    """
    fp = _cache_fp(kernel)
    if mode == "auto":
        resolved = _AUTO.get(fp)
        if resolved == "native":
            # Re-resolve when native became unavailable in-process
            # (tests flip REPRO_NATIVE / REPRO_CC mid-run).
            from . import native as native_mod

            if not native_mod.native_available():
                resolved = None
                _AUTO.pop(fp, None)
        if resolved is None:
            return _compile_auto(kernel, fp)
        ck = _CACHE.get((fp, resolved))
        if ck is None:  # cache cleared underneath the auto map
            _AUTO.pop(fp, None)
            return _compile_auto(kernel, fp)
        if ck.fn is None:
            raise CompileError(ck.reason or "kernel pinned to interpreter")
        _STATS.cache_hits += 1
        return ck
    ck = _CACHE.get((fp, mode))
    if ck is not None:
        if ck.fn is None:
            raise CompileError(ck.reason or "kernel pinned to interpreter")
        _STATS.cache_hits += 1
        return ck
    _STATS.cache_misses += 1
    ck = _build(kernel, fp, mode)
    _CACHE[(fp, mode)] = ck
    return ck


def run_scalar_compiled(
    kernel: LoopKernel,
    bufs: dict[str, np.ndarray],
    scalars: Optional[dict] = None,
    max_inner_iters: Optional[int] = None,
) -> ExecResult:
    """Compiled-path equivalent of ``run_scalar_interpreted``.

    Raises :class:`CompileError` when the kernel is pinned to the
    interpreter; callers (``executor.run_scalar``) fall back.
    """
    ck = get_compiled(kernel)
    _STATS.runs_compiled += 1
    if ck.mode == "vector":
        _STATS.runs_vector += 1
    elif ck.mode == "native":
        _STATS.runs_native += 1
    return _execute(ck, kernel, bufs, scalars, max_inner_iters)
