"""Functional execution of kernels — the correctness oracle.

Two entry points:

* :func:`run_scalar` interprets the kernel with C scalar semantics,
  one iteration at a time, and records branch statistics (used both to
  weight branchy scalar code in the timing model and as ground truth in
  equivalence tests);
* :func:`run_vector` emulates the *vectorized* execution of a plan:
  blocks of VF lanes, statement-at-a-time, if-converted masks, masked
  stores, lane-parallel reduction accumulators with a horizontal
  combine, and a scalar remainder loop.

The central invariant of the whole system — tested property-style over
the TSVC suite — is that for every legal plan both executions produce
the same buffers and live-out scalars (up to float reassociation).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.reduction import REDUCTION_IDENTITY, ScalarClass
from ..ir.expr import (
    Affine,
    BinOp,
    BinOpKind,
    Compare,
    Const,
    Convert,
    Expr,
    Indirect,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
)
from ..ir.kernel import LoopKernel
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign
from ..ir.types import DType
from ..vectorize.plan import VectorizationPlan
from . import ufuncs
from .ufuncs import BINOPS, CMPS, NP_DTYPE, UNOPS, cast_value


def make_buffers(kernel: LoopKernel, seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic test data for a kernel.

    Float arrays get values in (-1, 1) (so sign guards split), integer
    arrays get a permutation folded into the smallest array extent so
    indirect subscripts stay in bounds.
    """
    rng = np.random.default_rng(seed)
    if not kernel.arrays:
        return {}
    min_len = min(int(np.prod(d.extents)) for d in kernel.arrays.values())
    bufs: dict[str, np.ndarray] = {}
    for name, decl in kernel.arrays.items():
        n = int(np.prod(decl.extents))
        if decl.dtype.is_int:
            vals = (rng.permutation(n) % min_len).astype(NP_DTYPE[decl.dtype])
        else:
            vals = rng.uniform(-1.0, 1.0, size=n).astype(NP_DTYPE[decl.dtype])
        bufs[name] = vals.reshape(decl.extents)
    return bufs


def initial_scalars(kernel: LoopKernel) -> dict[str, np.generic]:
    return {
        name: NP_DTYPE[decl.dtype](decl.init)
        for name, decl in kernel.scalars.items()
    }


@dataclass
class ExecResult:
    scalars: dict[str, float]
    #: pre-order IfBlock index -> fraction of evaluations that took the
    #: then-branch (scalar runs only).
    guard_probs: dict[int, float] = field(default_factory=dict)
    iterations: int = 0


class _Ctx:
    """Evaluation context shared by the scalar and vector interpreters."""

    __slots__ = ("bufs", "scalars", "ivals")

    def __init__(self, bufs, scalars, ivals):
        self.bufs = bufs
        self.scalars = scalars
        self.ivals = ivals  # per loop level: int or int ndarray (lanes)


def _eval_index(ix, ctx: _Ctx):
    if isinstance(ix, Affine):
        val = ix.offset
        for lvl, c in enumerate(ix.coeffs):
            if c:
                val = val + c * ctx.ivals[lvl]
        return val
    assert isinstance(ix, Indirect)
    inner = _eval_index(ix.index, ctx)
    return ctx.bufs[ix.array][inner].astype(np.int64, copy=False)


def eval_expr(expr: Expr, ctx: _Ctx):
    """Evaluate an expression; works lane-parallel when indices are arrays."""
    if isinstance(expr, Const):
        return NP_DTYPE[expr.dtype](expr.value)
    if isinstance(expr, ScalarRef):
        return ctx.scalars[expr.name]
    if isinstance(expr, IterValue):
        v = ctx.ivals[expr.level]
        return np.asarray(v, dtype=np.int32) if isinstance(v, np.ndarray) else np.int32(v)
    if isinstance(expr, Load):
        idxs = tuple(_eval_index(ix, ctx) for ix in expr.subscript)
        return ctx.bufs[expr.array][idxs]
    if isinstance(expr, Convert):
        return _cast(eval_expr(expr.operand, ctx), expr.dtype)
    if isinstance(expr, UnOp):
        x = eval_expr(expr.operand, ctx)
        return _UNOPS[expr.op](x)
    if isinstance(expr, BinOp):
        a = eval_expr(expr.lhs, ctx)
        b = eval_expr(expr.rhs, ctx)
        if expr.op not in (BinOpKind.SHL, BinOpKind.SHR):
            a = _cast(a, expr.dtype)
            b = _cast(b, expr.dtype)
        return _cast(_BINOPS[expr.op](a, b), expr.dtype)
    if isinstance(expr, Compare):
        a = eval_expr(expr.lhs, ctx)
        b = eval_expr(expr.rhs, ctx)
        return _CMPS[expr.op](a, b)
    if isinstance(expr, Select):
        c = eval_expr(expr.cond, ctx)
        t = _cast(eval_expr(expr.if_true, ctx), expr.dtype)
        f = _cast(eval_expr(expr.if_false, ctx), expr.dtype)
        out = np.where(c, t, f)
        return out if out.shape else out[()]
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def _cast(x, dtype: DType):
    return cast_value(x, NP_DTYPE[dtype])


# One shared operator table (see repro.sim.ufuncs): the interpreter and
# the kernel compiler must agree bit-for-bit, so neither owns a copy.
_BINOPS = BINOPS
_UNOPS = UNOPS
_CMPS = CMPS


# ---------------------------------------------------------------------------
# Scalar interpretation
# ---------------------------------------------------------------------------


class _GuardStats:
    def __init__(self):
        self.taken: dict[int, int] = {}
        self.seen: dict[int, int] = {}
        self._order: dict[int, int] = {}  # id(stmt) -> pre-order index
        self._next = 0

    def index_of(self, stmt: IfBlock) -> int:
        key = id(stmt)
        if key not in self._order:
            self._order[key] = self._next
            self._next += 1
        return self._order[key]

    def record(self, idx: int, taken: bool) -> None:
        self.seen[idx] = self.seen.get(idx, 0) + 1
        self.taken[idx] = self.taken.get(idx, 0) + (1 if taken else 0)

    def probs(self) -> dict[int, float]:
        return {
            idx: self.taken.get(idx, 0) / n
            for idx, n in self.seen.items()
            if n > 0
        }


def run_scalar(
    kernel: LoopKernel,
    bufs: dict[str, np.ndarray],
    scalars: Optional[dict] = None,
    max_inner_iters: Optional[int] = None,
) -> ExecResult:
    """Execute the kernel with C scalar semantics, mutating ``bufs``.

    The hot-path entry point: routes through the kernel compiler
    (:mod:`.compile`) unless ``REPRO_COMPILE=0``, falling back to the
    tree-walking interpreter — the correctness oracle, pinned to the
    compiled path by the suite-wide bit-identity tests — when
    compilation is disabled or refuses the kernel.  ``max_inner_iters``
    truncates the inner trip count (used for cheap branch-probability
    estimation).
    """
    fires_before = ufuncs.sqrt_guard_fires()
    result = None
    if os.environ.get("REPRO_COMPILE", "1") != "0":
        from .compile import CompileError, run_scalar_compiled

        try:
            result = run_scalar_compiled(kernel, bufs, scalars, max_inner_iters)
        except CompileError as exc:
            _remark(
                kernel,
                f"kernel not compilable ({exc}); interpreting",
                warning=True,
            )
    if result is None:
        result = run_scalar_interpreted(kernel, bufs, scalars, max_inner_iters)
    if ufuncs.sqrt_guard_fires() > fires_before:
        _remark(
            kernel,
            "sqrt domain guard fired: negative input evaluated as sqrt(|x|)",
        )
    return result


def _remark(kernel: LoopKernel, message: str, warning: bool = False) -> None:
    from ..analysis.framework.passmanager import default_manager

    diags = default_manager().diagnostics
    (diags.warning if warning else diags.remark)("executor", kernel.name, message)


def run_scalar_interpreted(
    kernel: LoopKernel,
    bufs: dict[str, np.ndarray],
    scalars: Optional[dict] = None,
    max_inner_iters: Optional[int] = None,
) -> ExecResult:
    """Interpret the kernel with scalar semantics, mutating ``bufs``.

    One iteration at a time, one tree walk per statement — slow, simple,
    and the semantic ground truth the compiled paths are tested against.
    """
    env = dict(scalars) if scalars is not None else initial_scalars(kernel)
    stats = _GuardStats()
    inner_trip = kernel.inner.trip
    if max_inner_iters is not None:
        inner_trip = min(inner_trip, max_inner_iters)
    outer_trip = 1 if kernel.depth == 1 else kernel.loops[0].trip
    if kernel.depth > 1 and max_inner_iters is not None:
        outer_trip = min(outer_trip, max(1, max_inner_iters // 4))
    total = 0
    with np.errstate(all="ignore"):
        for outer in range(outer_trip):
            for inner in range(inner_trip):
                ivals = (inner,) if kernel.depth == 1 else (outer, inner)
                ctx = _Ctx(bufs, env, ivals)
                _exec_stmts_scalar(kernel, kernel.body, ctx, stats)
                total += 1
    return ExecResult(scalars=env, guard_probs=stats.probs(), iterations=total)


def _exec_stmts_scalar(kernel, stmts, ctx: _Ctx, stats: _GuardStats) -> None:
    for stmt in stmts:
        if isinstance(stmt, ArrayStore):
            val = eval_expr(stmt.value, ctx)
            decl = kernel.arrays[stmt.array]
            idxs = tuple(int(_eval_index(ix, ctx)) for ix in stmt.subscript)
            ctx.bufs[stmt.array][idxs] = _cast(val, decl.dtype)
        elif isinstance(stmt, ScalarAssign):
            decl = kernel.scalars[stmt.name]
            ctx.scalars[stmt.name] = _cast(eval_expr(stmt.value, ctx), decl.dtype)
        elif isinstance(stmt, IfBlock):
            idx = stats.index_of(stmt)
            taken = bool(eval_expr(stmt.cond, ctx))
            stats.record(idx, taken)
            body = stmt.then_body if taken else stmt.else_body
            _exec_stmts_scalar(kernel, body, ctx, stats)
        else:
            raise TypeError(f"cannot execute {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# Vectorized interpretation
# ---------------------------------------------------------------------------


def make_lane_env(
    kernel: LoopKernel,
    scalar_info: dict,
    env_in: dict,
    vf: int,
) -> tuple[dict, dict]:
    """Lane-expand the written scalars for a VF-lane execution.

    Reductions become identity-filled accumulators seeded in lane 0,
    privates are broadcast, parameters pass through unexpanded.
    Returns ``(lane_env, red_ops)``.
    """
    lane_env: dict = {}
    red_ops: dict[str, BinOpKind] = {}
    for name, decl in kernel.scalars.items():
        info = scalar_info.get(name)
        npdt = NP_DTYPE[decl.dtype]
        if info is not None and info.klass is ScalarClass.REDUCTION:
            assert info.op is not None
            ident = REDUCTION_IDENTITY[info.op]
            acc = np.full(vf, ident, dtype=npdt)
            acc[0] = env_in[name]
            lane_env[name] = acc
            red_ops[name] = info.op
        elif info is not None and info.klass is ScalarClass.PRIVATE:
            lane_env[name] = np.full(vf, env_in[name], dtype=npdt)
        else:
            lane_env[name] = env_in[name]  # parameter
    return lane_env, red_ops


def run_vector(
    plan: VectorizationPlan,
    bufs: dict[str, np.ndarray],
    scalars: Optional[dict] = None,
    *,
    sanitize: Optional[bool] = None,
) -> ExecResult:
    """Emulate the vectorized execution of ``plan``, mutating ``bufs``.

    Faithful to the lowering semantics: VF-lane blocks, in-order
    statements, if-conversion with masks, ordered masked scatter
    stores, lane-parallel reduction accumulators combined horizontally
    at the end, and a scalar tail for the remainder iterations.

    ``sanitize=True`` (or ``REPRO_SANITIZE=1`` in the environment) runs
    the vector-safety sanitizer first: the plan's claimed dependence
    distances are cross-checked against the dynamically evaluated
    addresses and a :class:`~repro.analysis.framework.sanitizer.SanitizerError`
    is raised on any disagreement, before any buffer is mutated.
    """
    if sanitize is None:
        sanitize = os.environ.get("REPRO_SANITIZE", "") == "1"
    if sanitize:
        from ..analysis.framework.sanitizer import check_plan

        check_plan(plan, bufs)
    kernel = plan.kernel
    vf = plan.vf
    env_in = dict(scalars) if scalars is not None else initial_scalars(kernel)
    lane_env, red_ops = make_lane_env(kernel, plan.scalar_info, env_in, vf)

    inner_trip = kernel.inner.trip
    vec_trip = inner_trip - inner_trip % vf
    outer_trip = 1 if kernel.depth == 1 else kernel.loops[0].trip

    # Native fast path for the full lane blocks (depth ≤ 2; the scalar
    # tail below stays in Python either way).  One native call per
    # outer-loop instance, so the tail of row N runs before the blocks
    # of row N+1 (cross-row dependences require it).  Any refusal —
    # disabled tier, no toolchain, no verified vector entry — returns
    # False without touching a buffer, and is final: the attempt is not
    # repeated on later outer iterations.
    native_candidate = (
        kernel.depth <= 2
        and bool(vec_trip)
        and os.environ.get("REPRO_COMPILE", "1") != "0"
    )
    if native_candidate:
        from .native import try_run_vector_blocks

    tail_env = _TailEnv(lane_env, set(red_ops))
    tail_stats = _GuardStats()
    total = 0
    with np.errstate(all="ignore"):
        for outer in range(outer_trip):
            ran_native = native_candidate and try_run_vector_blocks(
                plan, bufs, lane_env, vf, vec_trip, outer=outer
            )
            if native_candidate and not ran_native:
                native_candidate = False
            if ran_native:
                total += vec_trip // vf
            else:
                for start in range(0, vec_trip, vf):
                    lanes = np.arange(start, start + vf)
                    ivals = (lanes,) if kernel.depth == 1 else (outer, lanes)
                    ctx = _Ctx(bufs, lane_env, ivals)
                    _exec_stmts_vector(kernel, kernel.body, ctx, None, vf)
                    total += 1
            # Scalar tail of this inner-loop instance, before the next
            # outer iteration (cross-row dependences require it).
            for inner in range(vec_trip, inner_trip):
                ivals = (inner,) if kernel.depth == 1 else (outer, inner)
                ctx = _Ctx(bufs, tail_env, ivals)
                _exec_stmts_scalar(kernel, kernel.body, ctx, tail_stats)

    # Horizontal combines.
    env_out = dict(env_in)
    _H_COMBINE = {
        BinOpKind.ADD: np.sum,
        BinOpKind.MUL: np.prod,
        BinOpKind.MIN: np.min,
        BinOpKind.MAX: np.max,
    }
    for name, op in red_ops.items():
        decl = kernel.scalars[name]
        env_out[name] = _cast(_H_COMBINE[op](lane_env[name]), decl.dtype)
    for name, decl in kernel.scalars.items():
        info = plan.scalar_info.get(name)
        if info is not None and info.klass is ScalarClass.PRIVATE:
            env_out[name] = _cast(tail_env[name], decl.dtype)
    return ExecResult(scalars=env_out, iterations=total)


class _TailEnv:
    """Scalar-env view for the remainder loop.

    Reduction scalars alias lane 0 of the vector accumulator (a valid
    reassociation), private scalars live in a plain overlay, parameters
    read through to the lane environment.
    """

    def __init__(self, lane_env: dict, reductions: set[str]):
        self._lanes = lane_env
        self._reds = reductions
        self._overlay: dict = {}

    def __getitem__(self, name: str):
        if name in self._reds:
            return self._lanes[name][0]
        if name in self._overlay:
            return self._overlay[name]
        val = self._lanes[name]
        return val[-1] if isinstance(val, np.ndarray) and val.ndim else val

    def __setitem__(self, name: str, value) -> None:
        if name in self._reds:
            self._lanes[name][0] = value
        else:
            self._overlay[name] = value


def _exec_stmts_vector(kernel, stmts, ctx: _Ctx, mask, vf: int) -> None:
    for stmt in stmts:
        if isinstance(stmt, ArrayStore):
            decl = kernel.arrays[stmt.array]
            val = np.broadcast_to(
                _cast(np.asarray(eval_expr(stmt.value, ctx)), decl.dtype), (vf,)
            )
            idxs = [
                np.broadcast_to(np.asarray(_eval_index(ix, ctx)), (vf,))
                for ix in stmt.subscript
            ]
            if mask is None:
                ctx.bufs[stmt.array][tuple(idxs)] = val
            else:
                sel = tuple(ix[mask] for ix in idxs)
                ctx.bufs[stmt.array][sel] = val[mask]
        elif isinstance(stmt, ScalarAssign):
            decl = kernel.scalars[stmt.name]
            new = np.broadcast_to(
                _cast(np.asarray(eval_expr(stmt.value, ctx)), decl.dtype), (vf,)
            )
            if mask is None:
                ctx.scalars[stmt.name] = new.copy()
            else:
                old = np.broadcast_to(
                    np.asarray(ctx.scalars[stmt.name]), (vf,)
                )
                ctx.scalars[stmt.name] = np.where(mask, new, old).astype(
                    NP_DTYPE[decl.dtype]
                )
        elif isinstance(stmt, IfBlock):
            cond = np.broadcast_to(np.asarray(eval_expr(stmt.cond, ctx)), (vf,))
            then_mask = cond if mask is None else (cond & mask)
            _exec_stmts_vector(kernel, stmt.then_body, ctx, then_mask, vf)
            if stmt.else_body:
                else_mask = ~cond if mask is None else (~cond & mask)
                _exec_stmts_vector(kernel, stmt.else_body, ctx, else_mask, vf)
        else:
            raise TypeError(f"cannot execute {type(stmt).__name__}")
