"""Host C toolchain discovery and shared-library builds for the native tier.

The native kernel tier (:mod:`.native`) needs exactly one capability
from the host: compile a C translation unit into a loadable shared
object.  This module finds a working compiler once per process —
``REPRO_CC`` if set, else the first of ``cc``/``gcc``/``clang`` on
``PATH`` — and *probe-compiles* a trivial library before trusting it,
so a broken toolchain degrades at discovery time with one structured
diagnostic instead of failing per kernel.

The flag set is part of the semantic contract, not a tuning choice:

* ``-fwrapv``          — signed integer overflow wraps, matching numpy's
  two's-complement arithmetic;
* ``-ffp-contract=off``— no FMA contraction, so float expression trees
  round exactly like numpy's one-operation-at-a-time evaluation;
* ``-O2 -fPIC -shared``— a plain optimized shared object.

A :class:`Toolchain`'s ``identity`` digest (path + version + flags)
keys the on-disk artifact cache: upgrading the compiler or changing a
flag invalidates every cached ``.so``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CFLAGS",
    "EXTRA_CFLAGS",
    "LDFLAGS",
    "Toolchain",
    "ToolchainError",
    "compile_shared",
    "find_toolchain",
    "reset_toolchain_memo",
    "resolved_toolchain",
    "toolchain_failure",
]

#: Compile flags every native artifact is built with (see module doc).
CFLAGS = ("-O2", "-fPIC", "-shared", "-fwrapv", "-ffp-contract=off")
#: Probed extras, dropped when the compiler rejects them.  Artifacts
#: are compiled for — and cached on — the host they run on, so
#: targeting the host ISA is safe and lets the functions the codegen
#: marks hot (contract scans, unguarded fast bodies) actually
#: vectorize.  Neither flag changes FP semantics: ``-ffp-contract=off``
#: still forbids FMA contraction.
EXTRA_CFLAGS = ("-march=native",)
#: Trailing link flags (libm for sqrt/exp).
LDFLAGS = ("-lm",)

#: Candidate compiler names probed, in order, when ``REPRO_CC`` is unset.
CANDIDATES = ("cc", "gcc", "clang")

_PROBE_SOURCE = """\
#include <stdint.h>
#include <math.h>
int64_t repro_probe(int64_t x) { return x * 2 + (int64_t)sqrt(0.0); }
"""


class ToolchainError(Exception):
    """A compile invocation failed; carries the structured diagnostics."""

    def __init__(self, message: str, *, cmd=None, stdout: str = "", stderr: str = ""):
        super().__init__(message)
        self.cmd = list(cmd) if cmd else []
        self.stdout = stdout
        self.stderr = stderr

    def detail(self, limit: int = 400) -> str:
        text = str(self)
        if self.stderr:
            text += ": " + " ".join(self.stderr.split())[:limit]
        return text


@dataclass(frozen=True)
class Toolchain:
    """A probed, working host C compiler."""

    path: str
    version: str
    flags: tuple = CFLAGS

    @property
    def identity(self) -> str:
        """Digest keying cached artifacts: compiler + version + flags."""
        blob = "|".join((self.path, self.version, " ".join(self.flags)))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


#: Memoized discovery result: unset, or (toolchain-or-None, failure-reason).
_RESOLVED: Optional[tuple[Optional[Toolchain], str]] = None


def reset_toolchain_memo() -> None:
    """Forget the discovery result (tests flip ``REPRO_CC`` mid-process)."""
    global _RESOLVED
    _RESOLVED = None


def toolchain_failure() -> str:
    """Why discovery failed ('' while unresolved or when it succeeded)."""
    return _RESOLVED[1] if _RESOLVED is not None else ""


def resolved_toolchain() -> Optional[Toolchain]:
    """The memoized toolchain without triggering a probe (None if the
    probe has not run yet or discovery failed)."""
    return _RESOLVED[0] if _RESOLVED is not None else None


def find_toolchain() -> Optional[Toolchain]:
    """The host toolchain, probed once per process.

    ``REPRO_CC`` names the compiler exactly (no search, no fallback —
    this is also the deterministic "no toolchain" switch: point it at a
    nonexistent path).  Otherwise the first ``cc``/``gcc``/``clang``
    on ``PATH`` that passes the probe compile wins.  Returns ``None``
    with :func:`toolchain_failure` set when nothing works.
    """
    global _RESOLVED
    if _RESOLVED is not None:
        return _RESOLVED[0]
    override = os.environ.get("REPRO_CC", "").strip()
    if override:
        candidates = [override]
    else:
        candidates = [
            path
            for name in CANDIDATES
            if (path := shutil.which(name)) is not None
        ]
        if not candidates:
            _RESOLVED = (None, "no C compiler on PATH (tried cc, gcc, clang)")
            return None
    reasons = []
    for cand in candidates:
        try:
            tc = _probe(cand)
        except ToolchainError as exc:
            reasons.append(f"{cand}: {exc.detail()}")
            continue
        _RESOLVED = (tc, "")
        return tc
    _RESOLVED = (None, "; ".join(reasons))
    return None


def _probe(compiler: str) -> Toolchain:
    """Compile, load, and call a trivial shared object with ``compiler``.

    The first flag set tried is ``CFLAGS + EXTRA_CFLAGS``; a compiler
    that rejects an extra (cross toolchains, odd hosts) falls back to
    the plain baseline before discovery is declared failed.
    """
    version = _version_of(compiler)
    with tempfile.TemporaryDirectory(prefix="repro-toolchain-") as tmp:
        src = os.path.join(tmp, "probe.c")
        with open(src, "w") as fh:
            fh.write(_PROBE_SOURCE)
        last_exc: Optional[ToolchainError] = None
        for n, flags in enumerate((CFLAGS + EXTRA_CFLAGS, CFLAGS)):
            out = os.path.join(tmp, f"probe{n}.so")
            tc = Toolchain(path=compiler, version=version, flags=flags)
            try:
                compile_shared(tc, src, out)
                lib = ctypes.CDLL(out)
                lib.repro_probe.restype = ctypes.c_int64
                lib.repro_probe.argtypes = [ctypes.c_int64]
                if lib.repro_probe(21) != 42:
                    raise ToolchainError("probe library returned wrong result")
            except ToolchainError as exc:
                last_exc = exc
                continue
            except OSError as exc:
                last_exc = ToolchainError(
                    f"probe library failed to load: {exc}"
                )
                continue
            return tc
    raise last_exc if last_exc is not None else ToolchainError("probe failed")


def _version_of(compiler: str) -> str:
    try:
        proc = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ToolchainError(
            f"cannot run {compiler!r}: {exc}", cmd=[compiler, "--version"]
        ) from exc
    if proc.returncode != 0:
        raise ToolchainError(
            f"{compiler!r} --version failed (exit {proc.returncode})",
            cmd=[compiler, "--version"],
            stdout=proc.stdout,
            stderr=proc.stderr,
        )
    first = proc.stdout.splitlines()[0].strip() if proc.stdout else ""
    return first or "unknown"


def compile_shared(tc: Toolchain, source_path: str, out_path: str) -> None:
    """Compile one C file into a shared object, or raise ToolchainError."""
    cmd = [tc.path, *tc.flags, source_path, "-o", out_path, *LDFLAGS]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ToolchainError(f"compiler invocation failed: {exc}", cmd=cmd) from exc
    if proc.returncode != 0 or not os.path.exists(out_path):
        raise ToolchainError(
            f"compile failed (exit {proc.returncode})",
            cmd=cmd,
            stdout=proc.stdout,
            stderr=proc.stderr,
        )
